//! Property-based tests of the data substrate.

use dpx_data::binning::{bin_numeric, BinStrategy};
use dpx_data::contingency::{ClusteredCounts, ContingencyTable};
use dpx_data::csv::{read_csv, write_csv};
use dpx_data::dataset::Dataset;
use dpx_data::histogram::Histogram;
use dpx_data::schema::{Attribute, Domain, Schema};
use dpx_data::stats::{chi_square, cramers_v, entropy};
use proptest::prelude::*;

/// Strategy: a random schema (1–4 attributes, domains of size 1–6) plus rows.
fn schema_and_rows() -> impl Strategy<Value = (Schema, Vec<Vec<u32>>)> {
    prop::collection::vec(1usize..=6, 1..=4).prop_flat_map(|domains| {
        let schema = Schema::new(
            domains
                .iter()
                .enumerate()
                .map(|(i, &d)| Attribute::new(format!("a{i}"), Domain::indexed(d)).unwrap())
                .collect(),
        )
        .unwrap();
        let row_strategy: Vec<_> = domains.iter().map(|&d| 0u32..(d as u32)).collect();
        let rows = prop::collection::vec(row_strategy, 0..60);
        (Just(schema), rows)
    })
}

proptest! {
    #[test]
    fn dataset_roundtrips_rows((schema, rows) in schema_and_rows()) {
        let data = Dataset::from_rows(schema, &rows).unwrap();
        prop_assert_eq!(data.n_rows(), rows.len());
        for (i, row) in rows.iter().enumerate() {
            prop_assert_eq!(&data.row(i), row);
        }
    }

    #[test]
    fn histogram_total_equals_row_count((schema, rows) in schema_and_rows()) {
        let data = Dataset::from_rows(schema, &rows).unwrap();
        for a in 0..data.schema().arity() {
            prop_assert_eq!(data.histogram(a).total() as usize, rows.len());
        }
    }

    #[test]
    fn tvd_is_a_bounded_metric(
        x in prop::collection::vec(0u64..100, 1..10),
        y in prop::collection::vec(0u64..100, 1..10),
        z in prop::collection::vec(0u64..100, 1..10),
    ) {
        let n = x.len().min(y.len()).min(z.len());
        let a = Histogram::from_counts(x[..n].to_vec());
        let b = Histogram::from_counts(y[..n].to_vec());
        let c = Histogram::from_counts(z[..n].to_vec());
        let dab = a.tvd(&b);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&dab));
        prop_assert!((dab - b.tvd(&a)).abs() < 1e-12);
        prop_assert!(a.tvd(&a) < 1e-12);
        // Triangle inequality holds for TVD.
        prop_assert!(dab <= a.tvd(&c) + c.tvd(&b) + 1e-9);
    }

    #[test]
    fn js_distance_is_bounded_symmetric(
        x in prop::collection::vec(0u64..100, 1..10),
        y in prop::collection::vec(0u64..100, 1..10),
    ) {
        let n = x.len().min(y.len());
        let a = Histogram::from_counts(x[..n].to_vec());
        let b = Histogram::from_counts(y[..n].to_vec());
        let d = a.js_distance(&b);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&d), "d = {d}");
        prop_assert!((d - b.js_distance(&a)).abs() < 1e-12);
    }

    #[test]
    fn histogram_add_sub_inverse(
        x in prop::collection::vec(0u64..1000, 1..12),
        y in prop::collection::vec(0u64..1000, 1..12),
    ) {
        let n = x.len().min(y.len());
        let a = Histogram::from_counts(x[..n].to_vec());
        let b = Histogram::from_counts(y[..n].to_vec());
        // (a + b) − b == a bin-wise (no clamping kicks in).
        prop_assert_eq!(a.add(&b).saturating_sub(&b), a);
    }

    #[test]
    fn binning_codes_in_domain_and_monotone(
        values in prop::collection::vec(-1e6f64..1e6, 1..200),
        bins in 1usize..12,
    ) {
        for strat in [BinStrategy::EqualWidth(bins), BinStrategy::Quantile(bins)] {
            let b = bin_numeric(&values, strat);
            prop_assert_eq!(b.codes.len(), values.len());
            prop_assert!(b.codes.iter().all(|&c| (c as usize) < b.domain.size()));
            // Order-preservation: a smaller value never gets a larger code.
            for i in 0..values.len() {
                for j in 0..values.len() {
                    if values[i] < values[j] {
                        prop_assert!(b.codes[i] <= b.codes[j]);
                    }
                }
            }
            // Edges strictly increase.
            prop_assert!(b.edges.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn contingency_marginal_is_cluster_sum(
        (schema, rows) in schema_and_rows(),
        label_seed in prop::collection::vec(0usize..3, 0..60),
    ) {
        let data = Dataset::from_rows(schema, &rows).unwrap();
        let labels: Vec<usize> = (0..data.n_rows()).map(|i| label_seed.get(i).copied().unwrap_or(0)).collect();
        let cc = ClusteredCounts::build(&data, &labels, 3);
        for a in 0..data.schema().arity() {
            let t = cc.table(a);
            for v in 0..t.domain_size() as u32 {
                let sum: u64 = (0..3).map(|c| t.cluster_count(c, v)).sum();
                prop_assert_eq!(sum, t.marginal_count(v));
            }
            prop_assert_eq!(t.total() as usize, data.n_rows());
        }
    }

    #[test]
    fn parallel_build_matches_serial(
        (schema, rows) in schema_and_rows(),
        label_seed in prop::collection::vec(0usize..4, 0..60),
        n_clusters in 1usize..=4,
    ) {
        let data = Dataset::from_rows(schema, &rows).unwrap();
        // Biasing through `% n_clusters` leaves high clusters empty whenever
        // the drawn labels are small — empty clusters are part of the space.
        let labels: Vec<usize> = (0..data.n_rows())
            .map(|i| label_seed.get(i).copied().unwrap_or(0) % n_clusters)
            .collect();
        let serial = ClusteredCounts::build(&data, &labels, n_clusters);
        // threads > n_rows forces single-row (and empty-range) chunks. The
        // forced variant takes the thread count literally, exercising the
        // pairwise merge tree at every width (odd counts leave a carried
        // tail); `build_parallel` additionally applies the sizing policy.
        for threads in [1usize, 2, 7, data.n_rows() + 3] {
            for parallel in [
                ClusteredCounts::build_parallel(&data, &labels, n_clusters, threads),
                ClusteredCounts::build_parallel_forced(&data, &labels, n_clusters, threads),
            ] {
                prop_assert_eq!(parallel.n_rows(), serial.n_rows());
                prop_assert_eq!(parallel.cluster_sizes(), serial.cluster_sizes());
                for a in 0..data.schema().arity() {
                    prop_assert_eq!(parallel.table(a).flat(), serial.table(a).flat());
                    prop_assert_eq!(parallel.table(a).marginal(), serial.table(a).marginal());
                    prop_assert_eq!(parallel.table(a).total(), serial.table(a).total());
                }
                prop_assert_eq!(&parallel, &serial, "threads={}", threads);
            }
        }
    }

    #[test]
    fn any_base_delta_split_matches_one_shot_build(
        (schema, rows) in schema_and_rows(),
        label_seed in prop::collection::vec(0usize..4, 0..60),
        n_clusters in 1usize..=4,
        split_pct in 0usize..101,
    ) {
        let data = Dataset::from_rows(schema, &rows).unwrap();
        let labels: Vec<usize> = (0..data.n_rows())
            .map(|i| label_seed.get(i).copied().unwrap_or(0) % n_clusters)
            .collect();
        let one_shot = ClusteredCounts::build(&data, &labels, n_clusters);
        // Split anywhere — split 0 grows an empty base, split n applies an
        // empty delta — and the incremental path must land bit-exactly on
        // the one-shot build.
        let split = (data.n_rows() * split_pct / 100).min(data.n_rows());
        let base = data.select_rows(&(0..split).collect::<Vec<_>>());
        let delta = data.select_rows(&(split..data.n_rows()).collect::<Vec<_>>());
        let empty = Dataset::empty(data.schema().clone());
        let mut counts = ClusteredCounts::build(&base, &labels[..split], n_clusters);
        counts.apply_delta(&delta, &labels[split..], &empty, &[]);
        prop_assert_eq!(&counts, &one_shot);
    }

    #[test]
    fn apply_delta_add_then_retire_round_trips(
        (schema, rows) in schema_and_rows(),
        label_seed in prop::collection::vec(0usize..4, 0..60),
        extra_seed in prop::collection::vec(0usize..40, 0..20),
        n_clusters in 1usize..=4,
    ) {
        let data = Dataset::from_rows(schema, &rows).unwrap();
        let labels: Vec<usize> = (0..data.n_rows())
            .map(|i| label_seed.get(i).copied().unwrap_or(0) % n_clusters)
            .collect();
        let before = ClusteredCounts::build(&data, &labels, n_clusters);
        let empty = Dataset::empty(data.schema().clone());
        // Duplicate some existing rows as the delta (valid by construction).
        prop_assume!(data.n_rows() > 0 || extra_seed.is_empty());
        let picks: Vec<usize> = extra_seed.iter().map(|&p| p % data.n_rows().max(1)).collect();
        let extra = data.select_rows(&picks);
        let extra_labels: Vec<usize> = picks.iter().map(|&p| labels[p]).collect();
        // Adding then retiring the same rows is a bit-exact no-op.
        let mut counts = before.clone();
        counts.apply_delta(&extra, &extra_labels, &empty, &[]);
        counts.apply_delta(&empty, &[], &extra, &extra_labels);
        prop_assert_eq!(&counts, &before);
        // Retiring every row empties the counts down to the freshly built
        // empty-dataset tables.
        let mut drained = before.clone();
        drained.apply_delta(&empty, &[], &data, &labels);
        prop_assert_eq!(drained.n_rows(), 0);
        prop_assert_eq!(&drained, &ClusteredCounts::build(&empty, &[], n_clusters));
    }

    #[test]
    fn contingency_complement_adds_back(
        (schema, rows) in schema_and_rows(),
    ) {
        let data = Dataset::from_rows(schema, &rows).unwrap();
        let labels: Vec<usize> = (0..data.n_rows()).map(|i| i % 2).collect();
        let t = ContingencyTable::build(&data, 0, &labels, 2);
        for c in 0..2 {
            prop_assert_eq!(
                t.cluster_histogram(c).add(&t.complement_histogram(c)),
                t.marginal_histogram()
            );
        }
    }

    #[test]
    fn cramers_v_bounded_and_reflexive(
        codes in prop::collection::vec(0u32..5, 1..100),
    ) {
        let v = cramers_v(&codes, &codes, 5, 5);
        prop_assert!((0.0..=1.0).contains(&v));
        let chi = chi_square(&codes, &codes, 5, 5);
        prop_assert!(chi >= -1e-9);
        let h = entropy(&codes, 5);
        prop_assert!((0.0..=5f64.ln() + 1e-12).contains(&h));
    }

    #[test]
    fn csv_roundtrip_arbitrary_labels(
        labels in prop::collection::vec("[a-zA-Z0-9 ,\"_.\\-]{1,12}", 2..6),
        picks in prop::collection::vec(0usize..100, 0..40),
    ) {
        // Deduplicate labels (domains require distinct values).
        let mut labels = labels;
        labels.sort();
        labels.dedup();
        prop_assume!(labels.len() >= 2);
        let dom = Domain::categorical(labels.clone());
        let schema = Schema::new(vec![Attribute::new("x", dom).unwrap()]).unwrap();
        let rows: Vec<Vec<u32>> = picks.iter().map(|&p| vec![(p % labels.len()) as u32]).collect();
        let data = Dataset::from_rows(schema.clone(), &rows).unwrap();
        let mut buf = Vec::new();
        write_csv(&data, &mut buf).unwrap();
        let back = read_csv(schema, buf.as_slice()).unwrap();
        prop_assert_eq!(back.n_rows(), data.n_rows());
        for i in 0..data.n_rows() {
            prop_assert_eq!(back.row(i), data.row(i));
        }
    }

    #[test]
    fn select_rows_and_attributes_consistent((schema, rows) in schema_and_rows()) {
        let data = Dataset::from_rows(schema, &rows).unwrap();
        prop_assume!(data.n_rows() >= 2);
        let sub = data.select_rows(&[0, data.n_rows() - 1, 0]);
        prop_assert_eq!(sub.n_rows(), 3);
        prop_assert_eq!(sub.row(0), data.row(0));
        prop_assert_eq!(sub.row(2), data.row(0));
        let proj = data.select_attributes(&[0]);
        prop_assert_eq!(proj.schema().arity(), 1);
        prop_assert_eq!(proj.column(0), data.column(0));
    }
}
