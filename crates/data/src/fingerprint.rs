//! Stable content fingerprints for datasets and label vectors.
//!
//! The explanation engine memoizes `ClusteredCounts`/`ScoreTable` pairs keyed
//! by *(dataset fingerprint, labels hash)*; both halves of the key come from
//! here. The hash is FNV-1a (64-bit), hand-rolled so the crate stays
//! dependency-free and the fingerprint is stable across platforms and Rust
//! releases — `std::hash::Hasher` implementations make no such promise.
//! These are cache keys, not cryptographic commitments: collisions are
//! astronomically unlikely for the workloads involved but not adversarially
//! hard to produce.

/// A 64-bit FNV-1a hasher over an explicit byte/tag stream.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(FNV_OFFSET)
    }
}

impl Fnv1a {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs one byte.
    #[inline]
    pub fn write_u8(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(FNV_PRIME);
    }

    /// Absorbs a byte slice.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }

    /// Absorbs a `u32` (little-endian).
    #[inline]
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs a `u64` (little-endian).
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs a `usize`, widened to `u64` so 32- and 64-bit platforms agree.
    #[inline]
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Absorbs a string, length-prefixed so `("ab","c")` ≠ `("a","bc")`.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// The current hash value.
    #[inline]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Chains a dataset fingerprint through an append: mixes the parent
/// dataset's fingerprint, the delta's own fingerprint, and the new total row
/// count into a fresh 64-bit key.
///
/// This is a **lineage** key, not a content rescan: appending delta `d` to a
/// dataset with fingerprint `p` yields the same chained key wherever the
/// same history is replayed, in O(|delta|) (only the delta is hashed), but a
/// dataset *built* from the concatenated rows fingerprints differently —
/// [`Dataset::fingerprint`](crate::Dataset::fingerprint) is column-major
/// over all cells and cannot be resumed from a prefix. Cache keys need
/// injectivity (distinct histories → distinct keys, up to FNV collisions),
/// not canonicality, so the serve layer keys refreshed counts by chained
/// fingerprint and tags the registry entry with the same value.
pub fn chain_fingerprint(parent: u64, delta: u64, new_total_rows: u64) -> u64 {
    let mut h = Fnv1a::new();
    h.write_str("dpx.chain");
    h.write_u64(parent);
    h.write_u64(delta);
    h.write_u64(new_total_rows);
    h.finish()
}

/// Hashes a cluster-label vector together with the declared cluster count —
/// the second half of the engine's counts-cache key. Two labelings agree iff
/// they assign every row identically *and* declare the same `n_clusters`
/// (an empty declared cluster changes the counts tables).
pub fn hash_labels(labels: &[usize], n_clusters: usize) -> u64 {
    let mut h = Fnv1a::new();
    h.write_usize(n_clusters);
    h.write_usize(labels.len());
    for &l in labels {
        h.write_usize(l);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_test_vectors() {
        // Standard FNV-1a 64 vectors.
        let mut h = Fnv1a::new();
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        h.write_u8(b'a');
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv1a::new();
        h.write_bytes(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn str_hashing_is_length_prefixed() {
        let mut a = Fnv1a::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv1a::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn chain_fingerprint_tracks_history() {
        let base = chain_fingerprint(1, 2, 10);
        assert_eq!(chain_fingerprint(1, 2, 10), base, "deterministic");
        assert_ne!(chain_fingerprint(3, 2, 10), base, "parent matters");
        assert_ne!(chain_fingerprint(1, 4, 10), base, "delta matters");
        assert_ne!(chain_fingerprint(1, 2, 11), base, "row count matters");
        // Chaining twice differs from chaining once (histories are ordered).
        assert_ne!(chain_fingerprint(base, 2, 20), base);
    }

    #[test]
    fn label_hash_distinguishes_permutations_and_cluster_counts() {
        let base = hash_labels(&[0, 1, 0, 1], 2);
        assert_eq!(hash_labels(&[0, 1, 0, 1], 2), base, "deterministic");
        assert_ne!(hash_labels(&[1, 0, 0, 1], 2), base, "order matters");
        assert_ne!(
            hash_labels(&[0, 1, 0, 1], 3),
            base,
            "declared cluster count matters"
        );
        assert_ne!(hash_labels(&[0, 1, 0], 2), base, "length matters");
    }
}
