//! Attribute domains and table schemas.
//!
//! Following §2 of the paper, every attribute `A_i` has a *discrete, finite,
//! data-independent* domain `dom(A_i)`. Data independence matters for privacy:
//! DP histograms must be released over the whole domain, not just the values
//! observed in the sensitive data (which would itself leak). Values inside a
//! dataset are stored as `u32` codes indexing into their domain.

use crate::error::DataError;
use std::fmt;
use std::sync::Arc;

/// The finite domain of one attribute: an ordered list of value labels.
///
/// A domain may represent categorical values (`"Female"`, `"Male"`) or
/// numeric bins (`"[40,50)"`); either way it is just an indexed label list.
/// Cloning is cheap (`Arc` inside).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Domain {
    labels: Arc<Vec<String>>,
}

impl Domain {
    /// Builds a domain from explicit labels.
    pub fn categorical<S: Into<String>>(labels: impl IntoIterator<Item = S>) -> Self {
        let labels: Vec<String> = labels.into_iter().map(Into::into).collect();
        Domain {
            labels: Arc::new(labels),
        }
    }

    /// Builds an anonymous domain of `size` values labelled `v0..v{size-1}`.
    pub fn indexed(size: usize) -> Self {
        Domain::categorical((0..size).map(|i| format!("v{i}")))
    }

    /// Builds a domain of half-open numeric intervals `[lo, lo+w), …` —
    /// the binned-numeric form used throughout the paper's examples
    /// (e.g. `lab_proc ∈ [40, 50)`).
    pub fn intervals(lo: f64, width: f64, bins: usize) -> Self {
        Domain::categorical((0..bins).map(|i| {
            let a = lo + i as f64 * width;
            let b = a + width;
            format!("[{a},{b})")
        }))
    }

    /// Number of values in the domain, `|dom(A)|`.
    #[inline]
    pub fn size(&self) -> usize {
        self.labels.len()
    }

    /// Label of value code `code`, if in range.
    pub fn label(&self, code: u32) -> Option<&str> {
        self.labels.get(code as usize).map(String::as_str)
    }

    /// Finds the code of a label.
    pub fn code_of(&self, label: &str) -> Option<u32> {
        self.labels
            .iter()
            .position(|l| l == label)
            .map(|i| i as u32)
    }

    /// Iterates over `(code, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.labels
            .iter()
            .enumerate()
            .map(|(i, l)| (i as u32, l.as_str()))
    }

    /// Whether `code` is a valid value of this domain.
    #[inline]
    pub fn contains(&self, code: u32) -> bool {
        (code as usize) < self.labels.len()
    }
}

/// An attribute: a name plus its domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name, e.g. `"lab_proc"`.
    pub name: String,
    /// The attribute's data-independent domain.
    pub domain: Domain,
}

impl Attribute {
    /// Creates an attribute, rejecting empty domains.
    pub fn new(name: impl Into<String>, domain: Domain) -> Result<Self, DataError> {
        let name = name.into();
        if domain.size() == 0 {
            return Err(DataError::EmptyDomain(name));
        }
        Ok(Attribute { name, domain })
    }
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({} values)", self.name, self.domain.size())
    }
}

/// A single-table schema `R(A_1, …, A_d)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    attributes: Arc<Vec<Attribute>>,
}

impl Schema {
    /// Builds a schema from attributes. Attribute names must be unique.
    pub fn new(attributes: Vec<Attribute>) -> Result<Self, DataError> {
        for (i, a) in attributes.iter().enumerate() {
            if attributes[..i].iter().any(|b| b.name == a.name) {
                return Err(DataError::SchemaMismatch(format!(
                    "duplicate attribute name '{}'",
                    a.name
                )));
            }
        }
        Ok(Schema {
            attributes: Arc::new(attributes),
        })
    }

    /// Number of attributes `d`.
    #[inline]
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// All attributes in declaration order.
    #[inline]
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// The attribute at `index`.
    pub fn attribute(&self, index: usize) -> &Attribute {
        &self.attributes[index]
    }

    /// Finds an attribute index by name.
    pub fn index_of(&self, name: &str) -> Result<usize, DataError> {
        self.attributes
            .iter()
            .position(|a| a.name == name)
            .ok_or_else(|| DataError::UnknownAttribute(name.to_string()))
    }

    /// Returns a new schema restricted to the given attribute indices (in the
    /// given order). Used by the attribute-sampling experiment (Fig. 9c).
    pub fn project(&self, indices: &[usize]) -> Schema {
        let attrs = indices
            .iter()
            .map(|&i| self.attributes[i].clone())
            .collect();
        Schema {
            attributes: Arc::new(attrs),
        }
    }

    /// Returns a new schema with extra attributes appended.
    pub fn extend(&self, extra: Vec<Attribute>) -> Result<Schema, DataError> {
        let mut attrs = (*self.attributes).clone();
        attrs.extend(extra);
        Schema::new(attrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categorical_domain_roundtrips_labels() {
        let d = Domain::categorical(["No", "Steady", "Up", "Down"]);
        assert_eq!(d.size(), 4);
        assert_eq!(d.label(1), Some("Steady"));
        assert_eq!(d.code_of("Down"), Some(3));
        assert_eq!(d.code_of("Sideways"), None);
        assert!(d.contains(3));
        assert!(!d.contains(4));
    }

    #[test]
    fn indexed_domain_labels() {
        let d = Domain::indexed(3);
        assert_eq!(d.label(0), Some("v0"));
        assert_eq!(d.label(2), Some("v2"));
        assert_eq!(d.label(3), None);
    }

    #[test]
    fn interval_domain_formats_bins() {
        let d = Domain::intervals(0.0, 10.0, 8);
        assert_eq!(d.size(), 8);
        assert_eq!(d.label(4), Some("[40,50)"));
    }

    #[test]
    fn attribute_rejects_empty_domain() {
        let err = Attribute::new("x", Domain::categorical(Vec::<String>::new())).unwrap_err();
        assert_eq!(err, DataError::EmptyDomain("x".into()));
    }

    #[test]
    fn schema_rejects_duplicate_names() {
        let a = Attribute::new("age", Domain::indexed(2)).unwrap();
        let b = Attribute::new("age", Domain::indexed(3)).unwrap();
        assert!(Schema::new(vec![a, b]).is_err());
    }

    #[test]
    fn schema_lookup_and_projection() {
        let s = Schema::new(vec![
            Attribute::new("a", Domain::indexed(2)).unwrap(),
            Attribute::new("b", Domain::indexed(3)).unwrap(),
            Attribute::new("c", Domain::indexed(4)).unwrap(),
        ])
        .unwrap();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.index_of("b").unwrap(), 1);
        assert!(s.index_of("zz").is_err());
        let p = s.project(&[2, 0]);
        assert_eq!(p.arity(), 2);
        assert_eq!(p.attribute(0).name, "c");
        assert_eq!(p.attribute(1).name, "a");
    }

    #[test]
    fn schema_extend_checks_duplicates() {
        let s = Schema::new(vec![Attribute::new("a", Domain::indexed(2)).unwrap()]).unwrap();
        let ok = s
            .extend(vec![Attribute::new("b", Domain::indexed(2)).unwrap()])
            .unwrap();
        assert_eq!(ok.arity(), 2);
        assert!(s
            .extend(vec![Attribute::new("a", Domain::indexed(2)).unwrap()])
            .is_err());
    }

    #[test]
    fn domain_iter_order_is_stable() {
        let d = Domain::categorical(["x", "y"]);
        let pairs: Vec<(u32, &str)> = d.iter().collect();
        assert_eq!(pairs, vec![(0, "x"), (1, "y")]);
    }
}
