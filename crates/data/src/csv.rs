//! Minimal CSV import/export for coded datasets.
//!
//! Serializes a [`Dataset`] with a header row of attribute names and one row
//! of value *labels* per tuple, so exported files are human-readable. Import
//! reconstructs codes against a provided schema. Quoting follows RFC 4180 for
//! the comma/quote/newline cases; this is intentionally a flat single-table
//! format (see DESIGN.md for why no external dependency is used).

use crate::dataset::Dataset;
use crate::error::DataError;
use crate::schema::Schema;
use std::io::{BufRead, Write};

/// Writes `data` as CSV (header + label rows) to `w`.
pub fn write_csv<W: Write>(data: &Dataset, w: &mut W) -> std::io::Result<()> {
    let schema = data.schema();
    let header: Vec<&str> = schema
        .attributes()
        .iter()
        .map(|a| a.name.as_str())
        .collect();
    writeln!(w, "{}", join_escaped(&header))?;
    for row in 0..data.n_rows() {
        let labels: Vec<&str> = (0..schema.arity())
            .map(|a| {
                schema
                    .attribute(a)
                    .domain
                    .label(data.column(a)[row])
                    .expect("dataset values are validated against domains")
            })
            .collect();
        writeln!(w, "{}", join_escaped(&labels))?;
    }
    Ok(())
}

/// Reads a CSV written by [`write_csv`], validating against `schema`.
///
/// The header must list exactly the schema's attribute names in order, and
/// every field must be a label of the corresponding domain.
pub fn read_csv<R: BufRead>(schema: Schema, r: R) -> Result<Dataset, DataError> {
    let mut lines = r.lines().enumerate();
    let (_, header) = lines.next().ok_or(DataError::Csv {
        line: 1,
        message: "missing header".into(),
    })?;
    let header = header.map_err(|e| DataError::Csv {
        line: 1,
        message: e.to_string(),
    })?;
    let names = split_escaped(&header).map_err(|m| DataError::Csv {
        line: 1,
        message: m,
    })?;
    if names.len() != schema.arity()
        || names
            .iter()
            .zip(schema.attributes())
            .any(|(n, a)| *n != a.name)
    {
        return Err(DataError::Csv {
            line: 1,
            message: format!("header {names:?} does not match schema"),
        });
    }
    let mut data = Dataset::empty(schema);
    for (i, line) in lines {
        let line = line.map_err(|e| DataError::Csv {
            line: i + 1,
            message: e.to_string(),
        })?;
        if line.is_empty() {
            continue;
        }
        let fields = split_escaped(&line).map_err(|m| DataError::Csv {
            line: i + 1,
            message: m,
        })?;
        if fields.len() != data.schema().arity() {
            return Err(DataError::Csv {
                line: i + 1,
                message: format!(
                    "expected {} fields, got {}",
                    data.schema().arity(),
                    fields.len()
                ),
            });
        }
        let mut row = Vec::with_capacity(fields.len());
        for (a, field) in fields.iter().enumerate() {
            let code = data
                .schema()
                .attribute(a)
                .domain
                .code_of(field)
                .ok_or_else(|| DataError::Csv {
                    line: i + 1,
                    message: format!(
                        "'{field}' is not in the domain of '{}'",
                        data.schema().attribute(a).name
                    ),
                })?;
            row.push(code);
        }
        data.push_row(&row)?;
    }
    Ok(data)
}

fn needs_quoting(field: &str) -> bool {
    field.contains(',') || field.contains('"') || field.contains('\n')
}

fn join_escaped(fields: &[&str]) -> String {
    fields
        .iter()
        .map(|f| {
            if needs_quoting(f) {
                format!("\"{}\"", f.replace('"', "\"\""))
            } else {
                (*f).to_string()
            }
        })
        .collect::<Vec<_>>()
        .join(",")
}

fn split_escaped(line: &str) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        cur.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                other => cur.push(other),
            }
        } else {
            match c {
                '"' if cur.is_empty() => in_quotes = true,
                ',' => fields.push(std::mem::take(&mut cur)),
                other => cur.push(other),
            }
        }
    }
    if in_quotes {
        return Err("unterminated quoted field".into());
    }
    fields.push(cur);
    Ok(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Domain};

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::new("age", Domain::categorical(["[60,70)", "[70,80)"])).unwrap(),
            Attribute::new(
                "diag",
                Domain::categorical(["Circulatory", "Diabetes, TypeII"]),
            )
            .unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn roundtrip_preserves_data() {
        let data = Dataset::from_rows(schema(), &[vec![0, 1], vec![1, 0], vec![0, 0]]).unwrap();
        let mut buf = Vec::new();
        write_csv(&data, &mut buf).unwrap();
        let back = read_csv(schema(), buf.as_slice()).unwrap();
        assert_eq!(back.n_rows(), 3);
        for r in 0..3 {
            assert_eq!(back.row(r), data.row(r));
        }
    }

    #[test]
    fn labels_with_commas_are_quoted() {
        let data = Dataset::from_rows(schema(), &[vec![0, 1]]).unwrap();
        let mut buf = Vec::new();
        write_csv(&data, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("\"Diabetes, TypeII\""));
    }

    #[test]
    fn header_mismatch_rejected() {
        let csv = "wrong,hdr\n[60,70),Circulatory\n";
        let err = read_csv(schema(), csv.as_bytes()).unwrap_err();
        assert!(matches!(err, DataError::Csv { line: 1, .. }));
    }

    #[test]
    fn unknown_label_rejected_with_line_number() {
        let csv = "age,diag\n\"[60,70)\",Circulatory\n\"[60,70)\",Oncology\n";
        let err = read_csv(schema(), csv.as_bytes()).unwrap_err();
        match err {
            DataError::Csv { line, message } => {
                assert_eq!(line, 3);
                assert!(message.contains("Oncology"));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn wrong_field_count_rejected() {
        let csv = "age,diag\n\"[60,70)\"\n";
        let err = read_csv(schema(), csv.as_bytes()).unwrap_err();
        assert!(matches!(err, DataError::Csv { line: 2, .. }));
    }

    #[test]
    fn blank_lines_skipped() {
        let csv = "age,diag\n\"[60,70)\",Circulatory\n\n";
        let data = read_csv(schema(), csv.as_bytes()).unwrap();
        assert_eq!(data.n_rows(), 1);
    }

    #[test]
    fn escaped_quotes_roundtrip() {
        let s = Schema::new(vec![Attribute::new(
            "q",
            Domain::categorical(["say \"hi\"", "plain"]),
        )
        .unwrap()])
        .unwrap();
        let data = Dataset::from_rows(s.clone(), &[vec![0], vec![1]]).unwrap();
        let mut buf = Vec::new();
        write_csv(&data, &mut buf).unwrap();
        let back = read_csv(s, buf.as_slice()).unwrap();
        assert_eq!(back.row(0), vec![0]);
        assert_eq!(back.row(1), vec![1]);
    }

    #[test]
    fn unterminated_quote_is_an_error() {
        let csv = "age,diag\n\"[60,70),Circulatory\n";
        assert!(read_csv(schema(), csv.as_bytes()).is_err());
    }
}
