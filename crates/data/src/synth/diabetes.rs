//! Synthetic stand-in for the Diabetes 130-US hospitals dataset.
//!
//! The real dataset (Strack et al. 2014) has 101,766 hospital records and,
//! after the paper's preprocessing, 47 attributes with domain sizes from 2 to
//! 39: demographics, utilization counts (binned), diagnoses mapped to ICD-9
//! chapter categories, and 23 medication columns with values
//! `{No, Steady, Up, Down}`. We reproduce that schema and plant latent-group
//! signal in the clinically meaningful attributes the paper's examples
//! feature (`lab_proc`, `time_in_hospital`, `num_medications`, `age`,
//! `diag_1`, `discharge_disp`, `A1Cresult`, `insulin`).

use super::{AttrModel, Marginal, SynthSpec};
use crate::schema::{Attribute, Domain};

/// Default number of rows matching the real dataset's scale.
pub const FULL_ROWS: usize = 101_766;

/// ICD-9 chapter categories used by the paper's preprocessing of
/// `diag_1/2/3`.
const DIAG_CATEGORIES: [&str; 9] = [
    "Circulatory",
    "Respiratory",
    "Digestive",
    "Diabetes",
    "Injury",
    "Musculoskeletal",
    "Genitourinary",
    "Neoplasms",
    "Other",
];

const MEDICATIONS: [&str; 23] = [
    "metformin",
    "repaglinide",
    "nateglinide",
    "chlorpropamide",
    "glimepiride",
    "acetohexamide",
    "glipizide",
    "glyburide",
    "tolbutamide",
    "pioglitazone",
    "rosiglitazone",
    "acarbose",
    "miglitol",
    "troglitazone",
    "tolazamide",
    "examide",
    "citoglipton",
    "glyburide_metformin",
    "glipizide_metformin",
    "glimepiride_pioglitazone",
    "metformin_rosiglitazone",
    "metformin_pioglitazone",
    "insulin",
];

fn attr(name: &str, domain: Domain, model: AttrModel) -> (Attribute, AttrModel) {
    (
        Attribute::new(name, domain).expect("non-empty domain"),
        model,
    )
}

/// A multi-group separator whose group→peak assignment is rotated by `shift`.
fn signal(dom: usize, n_groups: usize, spread: f64, shift: usize) -> AttrModel {
    AttrModel::Signal {
        centers: super::rotated_centers(dom, n_groups, shift),
        spread,
        background: 0.08,
    }
}

/// An attribute that singles out one group (the paper's "Cluster 1 has high
/// lab_proc" structure).
fn focused(dom: usize, n_groups: usize, spread: f64, special: usize) -> AttrModel {
    AttrModel::Signal {
        centers: super::focused_centers(dom, n_groups, special),
        spread,
        background: 0.08,
    }
}

/// Builds the Diabetes spec with `n_groups` latent groups.
///
/// # Panics
/// Panics if `n_groups == 0`.
pub fn spec(n_groups: usize) -> SynthSpec {
    assert!(n_groups > 0, "need at least one latent group");
    let mut attributes = Vec::with_capacity(47);

    // --- Signal attributes: the ones the paper's figures and examples
    // select. Three are cluster-specific ("focused") so different clusters
    // have different natural explanations; the rest separate several groups
    // with rotated peak assignments.
    attributes.push(attr(
        "lab_proc",
        Domain::intervals(0.0, 10.0, 8),
        focused(8, n_groups, 1.0, 0),
    ));
    attributes.push(attr(
        "time_in_hospital",
        Domain::intervals(0.0, 2.0, 7),
        focused(7, n_groups, 0.9, 1),
    ));
    attributes.push(attr(
        "num_medications",
        Domain::intervals(0.0, 10.0, 8),
        focused(8, n_groups, 1.0, 2),
    ));
    attributes.push(attr(
        "age",
        Domain::categorical([
            "[0,10)", "[10,20)", "[20,30)", "[30,40)", "[40,50)", "[50,60)", "[60,70)", "[70,80)",
            "[80,90)", "[90,100)",
        ]),
        signal(10, n_groups, 1.3, 0),
    ));
    attributes.push(attr(
        "diag_1",
        Domain::categorical(DIAG_CATEGORIES),
        focused(9, n_groups, 1.0, 3),
    ));
    attributes.push(attr(
        "discharge_disp",
        Domain::indexed(26),
        focused(26, n_groups, 2.5, 4),
    ));
    attributes.push(attr(
        "A1Cresult",
        Domain::categorical(["None", "Norm", ">7", ">8"]),
        signal(4, n_groups, 0.6, 1),
    ));

    // --- Noise attributes: realistic marginals, no group dependence.
    attributes.push(attr(
        "gender",
        Domain::categorical(["Female", "Male", "Unknown"]),
        AttrModel::Noise(Marginal::Zipf(0.3)),
    ));
    attributes.push(attr(
        "race",
        Domain::categorical([
            "Caucasian",
            "AfricanAmerican",
            "Hispanic",
            "Asian",
            "Other",
            "Unknown",
        ]),
        AttrModel::Noise(Marginal::Zipf(1.2)),
    ));
    attributes.push(attr(
        "diag_2",
        Domain::categorical(DIAG_CATEGORIES),
        AttrModel::Noise(Marginal::Zipf(0.7)),
    ));
    attributes.push(attr(
        "diag_3",
        Domain::categorical(DIAG_CATEGORIES),
        AttrModel::Noise(Marginal::Zipf(0.5)),
    ));
    attributes.push(attr(
        "medical_specialty",
        Domain::categorical([
            "Missing",
            "GeneralPractice",
            "InternalMedicine",
            "Cardiology",
            "Surgery",
            "Emergency",
            "Orthopedics",
            "Radiology",
            "Psychiatry",
            "Other",
        ]),
        AttrModel::Noise(Marginal::Zipf(1.0)),
    ));
    attributes.push(attr(
        "max_glu_serum",
        Domain::categorical(["None", "Norm", ">200", ">300"]),
        AttrModel::Noise(Marginal::Zipf(2.0)),
    ));
    attributes.push(attr(
        "admission_type",
        Domain::indexed(8),
        AttrModel::Noise(Marginal::Zipf(1.0)),
    ));
    attributes.push(attr(
        "admission_source",
        Domain::indexed(17),
        AttrModel::Noise(Marginal::Zipf(1.3)),
    ));
    attributes.push(attr(
        "payer_code",
        Domain::indexed(18),
        AttrModel::Noise(Marginal::Zipf(0.9)),
    ));
    attributes.push(attr(
        "num_procedures",
        Domain::intervals(0.0, 1.0, 7),
        AttrModel::Noise(Marginal::Peaked {
            center: 1,
            spread: 1.4,
        }),
    ));
    attributes.push(attr(
        "number_diagnoses",
        Domain::intervals(1.0, 1.0, 9),
        AttrModel::Noise(Marginal::Peaked {
            center: 6,
            spread: 1.8,
        }),
    ));
    attributes.push(attr(
        "n_outpatient",
        Domain::intervals(0.0, 2.0, 5),
        AttrModel::Noise(Marginal::Zipf(2.2)),
    ));
    attributes.push(attr(
        "n_emergency",
        Domain::intervals(0.0, 2.0, 5),
        AttrModel::Noise(Marginal::Zipf(2.5)),
    ));
    attributes.push(attr(
        "n_inpatient",
        Domain::intervals(0.0, 2.0, 5),
        AttrModel::Noise(Marginal::Zipf(2.0)),
    ));
    attributes.push(attr(
        "change",
        Domain::categorical(["No", "Ch"]),
        AttrModel::Noise(Marginal::Zipf(0.4)),
    ));
    attributes.push(attr(
        "diabetesMed",
        Domain::categorical(["No", "Yes"]),
        AttrModel::Noise(Marginal::Zipf(0.3)),
    ));
    attributes.push(attr(
        "readmitted",
        Domain::categorical(["NO", "<30", ">30"]),
        AttrModel::Noise(Marginal::Zipf(0.6)),
    ));

    // --- Medication columns {No, Steady, Up, Down}; insulin carries signal.
    for &med in &MEDICATIONS {
        let dom = Domain::categorical(["No", "Steady", "Up", "Down"]);
        let model = if med == "insulin" {
            signal(4, n_groups, 0.5, 2)
        } else {
            AttrModel::Noise(Marginal::Zipf(2.8))
        };
        attributes.push(attr(med, dom, model));
    }

    debug_assert_eq!(attributes.len(), 47);
    SynthSpec {
        name: "diabetes".into(),
        attributes,
        // Mildly unequal weights: enough imbalance to be realistic, mild
        // enough that the size-weighted low-sensitivity ranking and the
        // unweighted sensitive ranking agree (as they evidently do on the
        // paper's real data, where DPClustX matches TabEE at ε = 1).
        group_weights: (0..n_groups).map(|g| 1.0 + 0.15 * g as f64).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn has_47_attributes_with_paper_domain_range() {
        let s = spec(5);
        assert_eq!(s.attributes.len(), 47);
        for (a, _) in &s.attributes {
            let size = a.domain.size();
            assert!(
                (2..=39).contains(&size),
                "attribute {} has domain size {size}, outside the paper's 2..=39",
                a.name
            );
        }
    }

    #[test]
    fn attribute_names_are_unique() {
        let s = spec(3);
        let _ = s.schema(); // Schema::new panics on duplicates via expect
    }

    #[test]
    fn contains_paper_example_attributes() {
        let s = spec(5);
        let schema = s.schema();
        for name in ["lab_proc", "age", "gender", "diag_1", "insulin"] {
            assert!(schema.index_of(name).is_ok(), "missing {name}");
        }
        assert_eq!(
            schema
                .attribute(schema.index_of("lab_proc").unwrap())
                .domain
                .size(),
            8,
            "lab_proc has 8 bins per the paper's Example 2.1"
        );
    }

    #[test]
    fn generates_and_lab_proc_singles_out_its_group() {
        let mut r = StdRng::seed_from_u64(7);
        let s = spec(3);
        let out = s.generate(20_000, &mut r);
        assert_eq!(out.data.n_rows(), 20_000);
        // lab_proc is focused on group 0: high there, low elsewhere — the
        // paper's "Cluster 1 underwent more lab procedures" structure.
        let col = out.data.column_by_name("lab_proc").unwrap();
        let mean_of = |g: usize| {
            let v: Vec<f64> = col
                .iter()
                .zip(&out.latent_groups)
                .filter(|(_, &lg)| lg == g)
                .map(|(&x, _)| x as f64)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(mean_of(0) - mean_of(1) > 3.0, "group 0 not singled out");
        assert!(mean_of(0) - mean_of(2) > 3.0, "group 0 not singled out");
    }

    #[test]
    fn group_weights_are_imbalanced() {
        let s = spec(4);
        assert!(s.group_weights[3] > s.group_weights[0]);
    }
}
