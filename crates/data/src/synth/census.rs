//! Synthetic stand-in for the US Census (PUMS 1990) dataset.
//!
//! The real dataset is a 1% PUMS person-record sample: 2,458,285 tuples and 68
//! discrete attributes. We reproduce the 68-attribute schema with the PUMS
//! naming convention (`i*` for individual categorical codes, `d*` for
//! discretized numerics) and plant latent-group signal in the work-related
//! attributes the paper's case study surfaces: `iRlabor` (employment status),
//! `iWork89` (worked in 1989), `dHours` (hours worked last week), `iYearwrk`
//! (last year worked), and `iMeans` (transportation to work) — plus `dAge`,
//! `iSchool`, `dIncome1`, `dTravtime`, `iFertil`.

use super::{AttrModel, Marginal, SynthSpec};
use crate::schema::{Attribute, Domain};

/// The real dataset's full size; experiments default to a laptop-scale sample.
pub const FULL_ROWS: usize = 2_458_285;

fn attr(name: &str, dom: usize, model: AttrModel) -> (Attribute, AttrModel) {
    (
        Attribute::new(name, Domain::indexed(dom)).expect("non-empty domain"),
        model,
    )
}

fn signal(dom: usize, n_groups: usize, spread: f64, shift: usize) -> AttrModel {
    AttrModel::Signal {
        centers: super::rotated_centers(dom, n_groups, shift),
        spread,
        background: 0.06,
    }
}

fn focused(dom: usize, n_groups: usize, spread: f64, special: usize) -> AttrModel {
    AttrModel::Signal {
        centers: super::focused_centers(dom, n_groups, special),
        spread,
        background: 0.06,
    }
}

/// Builds the Census spec with `n_groups` latent groups.
///
/// # Panics
/// Panics if `n_groups == 0`.
pub fn spec(n_groups: usize) -> SynthSpec {
    assert!(n_groups > 0, "need at least one latent group");
    let mut attributes = Vec::with_capacity(68);

    // --- Signal attributes (work/life-stage cluster structure, §6.3).
    // The case-study correlations are built in: {iWork89, iYearwrk} both
    // single out group 1 (no work data), {dHours, iMeans} both single out
    // group 2 (working) — the paper's §6.3 explanation of why DPClustX and
    // TabEE pick different-but-equivalent attributes.
    attributes.push(attr("iRlabor", 7, focused(7, n_groups, 0.8, 0)));
    attributes.push(attr("iWork89", 3, focused(3, n_groups, 0.45, 1)));
    attributes.push(attr("dHours", 8, focused(8, n_groups, 1.0, 2)));
    attributes.push(attr("iYearwrk", 7, focused(7, n_groups, 0.8, 1)));
    attributes.push(attr("iMeans", 11, focused(11, n_groups, 1.2, 2)));
    attributes.push(attr("dAge", 8, signal(8, n_groups, 1.1, 0)));
    attributes.push(attr("iSchool", 4, focused(4, n_groups, 0.6, 1)));
    attributes.push(attr("dIncome1", 10, signal(10, n_groups, 1.3, 1)));
    attributes.push(attr("dTravtime", 8, focused(8, n_groups, 1.2, 3)));
    attributes.push(attr("iFertil", 13, signal(13, n_groups, 1.6, 2)));

    // --- Noise attributes: the remaining 58 PUMS person-record fields.
    let noise: [(&str, usize, f64); 58] = [
        ("iSex", 2, 0.1),
        ("iMarital", 5, 0.8),
        ("dIncome2", 9, 1.8),
        ("dIncome3", 9, 2.0),
        ("dIncome4", 6, 2.2),
        ("dIncome5", 5, 2.4),
        ("dIncome6", 5, 2.5),
        ("dIncome7", 5, 2.4),
        ("dIncome8", 5, 2.6),
        ("iEnglish", 5, 1.6),
        ("iCitizen", 5, 1.9),
        ("dAncstry1", 12, 1.0),
        ("dAncstry2", 12, 1.3),
        ("iClass", 10, 1.1),
        ("dDepart", 8, 0.9),
        ("iDisabl1", 3, 1.5),
        ("iDisabl2", 3, 1.6),
        ("dHour89", 8, 0.7),
        ("dHispanic", 5, 2.1),
        ("iImmigr", 11, 1.8),
        ("dIndustry", 13, 0.8),
        ("iKorean", 3, 2.8),
        ("iLang1", 3, 1.4),
        ("iLooking", 3, 1.7),
        ("iMay75880", 3, 1.9),
        ("iMilitary", 5, 1.5),
        ("iMobility", 3, 0.6),
        ("iMobillim", 3, 1.8),
        ("dOccup", 13, 0.7),
        ("iOthrserv", 3, 2.3),
        ("iPerscare", 3, 2.0),
        ("dPOB", 17, 1.2),
        ("dPoverty", 3, 0.5),
        ("dPwgt1", 8, 0.4),
        ("iRagechld", 5, 1.1),
        ("dRearning", 8, 0.9),
        ("iRelat1", 13, 1.4),
        ("iRelat2", 3, 2.2),
        ("iRemplpar", 10, 1.3),
        ("iRiders", 9, 1.7),
        ("iRownchld", 3, 0.8),
        ("dRpincome", 10, 1.0),
        ("iRPOB", 10, 1.1),
        ("iRrelchld", 3, 0.9),
        ("iRspouse", 7, 0.9),
        ("iRvetserv", 8, 1.9),
        ("iSept80", 3, 2.4),
        ("iSubfam1", 4, 2.1),
        ("iSubfam2", 3, 2.3),
        ("iTmpabsnt", 4, 1.7),
        ("iVietnam", 3, 2.0),
        ("dWeek89", 5, 0.6),
        ("iWwii", 3, 2.2),
        ("iYearsch", 11, 0.9),
        ("dYrsserv", 6, 2.1),
        ("iAvail", 3, 1.8),
        ("iFeb55", 3, 2.5),
        ("dRaces", 9, 1.9),
    ];
    for (name, dom, skew) in noise {
        attributes.push(attr(name, dom, AttrModel::Noise(Marginal::Zipf(skew))));
    }

    debug_assert_eq!(attributes.len(), 68);
    SynthSpec {
        name: "census".into(),
        attributes,
        group_weights: (0..n_groups).map(|g| 1.0 + 0.12 * g as f64).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn has_68_unique_attributes() {
        let s = spec(3);
        assert_eq!(s.attributes.len(), 68);
        let _ = s.schema();
    }

    #[test]
    fn case_study_attributes_present() {
        let schema = spec(3).schema();
        for name in ["iRlabor", "iWork89", "dHours", "iYearwrk", "iMeans"] {
            assert!(schema.index_of(name).is_ok(), "missing {name}");
        }
    }

    #[test]
    fn generates_at_scale() {
        let mut r = StdRng::seed_from_u64(11);
        let out = spec(3).generate(50_000, &mut r);
        assert_eq!(out.data.n_rows(), 50_000);
        assert_eq!(out.data.schema().arity(), 68);
    }

    #[test]
    fn labor_attribute_singles_out_group_zero() {
        let mut r = StdRng::seed_from_u64(13);
        let out = spec(3).generate(30_000, &mut r);
        let col = out.data.column_by_name("iRlabor").unwrap();
        let mean_of = |g: usize| {
            let v: Vec<f64> = col
                .iter()
                .zip(&out.latent_groups)
                .filter(|(_, &lg)| lg == g)
                .map(|(&x, _)| x as f64)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        // iRlabor is focused on group 0 (§6.3 case-study structure).
        assert!(mean_of(0) - mean_of(1) > 2.0);
        assert!(mean_of(0) - mean_of(2) > 2.0);
    }
}
