//! Synthetic stand-in for the 2018 Stack Overflow Developer Survey.
//!
//! The real dataset, after the paper's preprocessing (textual and
//! multiple-choice columns dropped, `ConvertedSalary` binned, >60%-missing
//! columns removed), has 98,855 respondents and 60 attributes with domain
//! sizes from 2 to 22. Latent-group signal lives in the
//! career-stage attributes (`YearsCodingProf`, `ConvertedSalary`,
//! `Employment`, `Student`, `FormalEducation`, `Age`, `JobSatisfaction`).

use super::{AttrModel, Marginal, SynthSpec};
use crate::schema::{Attribute, Domain};

/// The real dataset's size.
pub const FULL_ROWS: usize = 98_855;

fn attr(name: &str, dom: usize, model: AttrModel) -> (Attribute, AttrModel) {
    (
        Attribute::new(name, Domain::indexed(dom)).expect("non-empty domain"),
        model,
    )
}

fn signal(dom: usize, n_groups: usize, spread: f64, shift: usize) -> AttrModel {
    AttrModel::Signal {
        centers: super::rotated_centers(dom, n_groups, shift),
        spread,
        background: 0.07,
    }
}

fn focused(dom: usize, n_groups: usize, spread: f64, special: usize) -> AttrModel {
    AttrModel::Signal {
        centers: super::focused_centers(dom, n_groups, special),
        spread,
        background: 0.07,
    }
}

/// Builds the Stack Overflow spec with `n_groups` latent groups.
///
/// # Panics
/// Panics if `n_groups == 0`.
pub fn spec(n_groups: usize) -> SynthSpec {
    assert!(n_groups > 0, "need at least one latent group");
    let mut attributes = Vec::with_capacity(60);

    // --- Signal: career-stage structure; Student/FormalEducation both single
    // out the student group (a built-in correlated pair).
    attributes.push(attr("YearsCodingProf", 11, signal(11, n_groups, 1.1, 0)));
    attributes.push(attr("ConvertedSalary", 12, signal(12, n_groups, 1.2, 1)));
    attributes.push(attr("Employment", 7, focused(7, n_groups, 0.8, 0)));
    attributes.push(attr("Student", 3, focused(3, n_groups, 0.45, 1)));
    attributes.push(attr("FormalEducation", 9, focused(9, n_groups, 1.0, 1)));
    attributes.push(attr("Age", 8, signal(8, n_groups, 1.0, 2)));
    attributes.push(attr("JobSatisfaction", 7, focused(7, n_groups, 0.9, 2)));

    // --- Noise: the remaining 53 survey columns.
    let noise: [(&str, usize, f64); 53] = [
        ("Hobby", 2, 0.4),
        ("OpenSource", 2, 0.5),
        ("Country", 22, 1.1),
        ("UndergradMajor", 12, 1.2),
        ("CompanySize", 8, 0.9),
        ("YearsCoding", 11, 0.8),
        ("CareerSatisfaction", 7, 0.7),
        ("HopeFiveYears", 6, 0.9),
        ("JobSearchStatus", 3, 0.7),
        ("LastNewJob", 6, 0.8),
        ("TimeFullyProductive", 6, 1.0),
        ("AgreeDisagree1", 5, 0.6),
        ("AgreeDisagree2", 5, 0.7),
        ("AgreeDisagree3", 5, 0.8),
        ("OperatingSystem", 4, 0.9),
        ("NumberMonitors", 5, 1.3),
        ("CheckInCode", 6, 1.0),
        ("AdBlocker", 3, 0.6),
        ("AdBlockerDisable", 3, 0.9),
        ("AIDangerous", 4, 0.8),
        ("AIInteresting", 4, 0.7),
        ("AIResponsible", 4, 0.9),
        ("AIFuture", 3, 0.6),
        ("EthicsChoice", 3, 0.8),
        ("EthicsReport", 4, 0.9),
        ("EthicsResponsible", 3, 0.7),
        ("EthicalImplications", 3, 0.6),
        ("StackOverflowRecommend", 11, 1.0),
        ("StackOverflowVisit", 6, 0.8),
        ("StackOverflowHasAccount", 3, 0.5),
        ("StackOverflowParticipate", 6, 0.9),
        ("StackOverflowJobs", 3, 0.7),
        ("StackOverflowDevStory", 4, 0.8),
        ("StackOverflowJobsRecommend", 11, 1.2),
        ("StackOverflowConsiderMember", 3, 0.6),
        ("HypotheticalTools1", 5, 0.9),
        ("HypotheticalTools2", 5, 0.8),
        ("HypotheticalTools3", 5, 0.9),
        ("HypotheticalTools4", 5, 1.0),
        ("HypotheticalTools5", 5, 0.9),
        ("WakeTime", 8, 0.9),
        ("HoursComputer", 5, 0.7),
        ("HoursOutside", 5, 0.8),
        ("SkipMeals", 4, 1.1),
        ("ErgonomicDevices", 4, 1.0),
        ("Exercise", 4, 0.8),
        ("Gender", 4, 1.9),
        ("SexualOrientation", 5, 2.1),
        ("EducationParents", 9, 0.9),
        ("RaceEthnicity", 9, 1.5),
        ("Dependents", 3, 0.6),
        ("MilitaryUS", 3, 2.4),
        ("SurveyTooLong", 3, 0.7),
    ];
    for (name, dom, skew) in noise {
        attributes.push(attr(name, dom, AttrModel::Noise(Marginal::Zipf(skew))));
    }

    debug_assert_eq!(attributes.len(), 60);
    SynthSpec {
        name: "stackoverflow".into(),
        attributes,
        group_weights: (0..n_groups).map(|g| 1.0 + 0.15 * g as f64).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn has_60_unique_attributes_with_paper_domain_range() {
        let s = spec(5);
        assert_eq!(s.attributes.len(), 60);
        let _ = s.schema();
        for (a, _) in &s.attributes {
            assert!(
                (2..=22).contains(&a.domain.size()),
                "{} domain size {} outside 2..=22",
                a.name,
                a.domain.size()
            );
        }
    }

    #[test]
    fn generates_valid_data() {
        let mut r = StdRng::seed_from_u64(3);
        let out = spec(4).generate(10_000, &mut r);
        assert_eq!(out.data.n_rows(), 10_000);
        assert_eq!(out.data.schema().arity(), 60);
    }

    #[test]
    fn salary_separates_groups() {
        let mut r = StdRng::seed_from_u64(5);
        let out = spec(2).generate(20_000, &mut r);
        let col = out.data.column_by_name("ConvertedSalary").unwrap();
        let mean_of = |g: usize| {
            let v: Vec<f64> = col
                .iter()
                .zip(&out.latent_groups)
                .filter(|(_, &lg)| lg == g)
                .map(|(&x, _)| x as f64)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        // Rotated multi-group signal: groups land on different peaks.
        assert!((mean_of(1) - mean_of(0)).abs() > 4.0);
    }
}
