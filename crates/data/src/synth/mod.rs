//! Synthetic dataset generators.
//!
//! The paper evaluates on US Census PUMS 1990, Diabetes 130-US, and the 2018
//! Stack Overflow survey — none of which can be shipped here. Per the
//! substitution policy in DESIGN.md we generate structurally equivalent data
//! from a **latent-group mixture model**: each tuple first draws a hidden
//! group, then each attribute draws a value from a per-group distribution.
//!
//! * *Signal* attributes use per-group peaked distributions (a discretized
//!   Gaussian bump over the domain, with a uniform background) — these are the
//!   attributes a clustering algorithm can discover and a good explainer
//!   should select.
//! * *Noise* attributes use a single group-independent marginal (uniform or
//!   Zipf-like) — they carry no cluster signal and a good explainer should
//!   avoid them.
//!
//! Because the quality experiments compare *explainers against each other* on
//! the same clustered data, this preserves the paper's relevant behaviour: the
//! counting structure (big/small clusters, peaked/flat per-cluster histograms,
//! informative/uninformative attributes) is what the quality functions and DP
//! mechanisms interact with.

pub mod census;
pub mod correlate;
pub mod diabetes;
pub mod stackoverflow;

use crate::dataset::Dataset;
use crate::schema::{Attribute, Schema};
use rand::Rng;

/// A group-independent marginal distribution for noise attributes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Marginal {
    /// Uniform over the domain.
    Uniform,
    /// Zipf-like: `p(v) ∝ 1/(v+1)^s` — realistic skew for categoricals.
    Zipf(f64),
    /// A single peak at `center` with Gaussian spread.
    Peaked {
        /// Peak position (domain code).
        center: usize,
        /// Gaussian spread in domain-code units.
        spread: f64,
    },
}

/// How an attribute's values depend on the latent group.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrModel {
    /// Group-dependent peaks: group `g` draws from a Gaussian bump centered at
    /// `centers[g % centers.len()]`, mixed with `background` uniform mass.
    Signal {
        /// Per-group peak positions (domain codes).
        centers: Vec<usize>,
        /// Gaussian spread of each bump.
        spread: f64,
        /// Fraction of probability mass spread uniformly (in `[0, 1)`).
        background: f64,
    },
    /// Group-independent marginal.
    Noise(Marginal),
}

/// Full specification of a synthetic dataset.
#[derive(Debug, Clone)]
pub struct SynthSpec {
    /// Dataset name used in reports.
    pub name: String,
    /// Attribute definitions with their generative models.
    pub attributes: Vec<(Attribute, AttrModel)>,
    /// Latent-group mixing weights (normalized internally).
    pub group_weights: Vec<f64>,
}

/// A generated dataset together with its hidden ground-truth group labels
/// (useful for validating clustering quality in tests; never shown to the
/// explainers).
#[derive(Debug, Clone)]
pub struct SynthData {
    /// The generated dataset.
    pub data: Dataset,
    /// Ground-truth latent group of each tuple.
    pub latent_groups: Vec<usize>,
}

impl SynthSpec {
    /// Number of latent groups.
    pub fn n_groups(&self) -> usize {
        self.group_weights.len()
    }

    /// The schema induced by the attribute list.
    pub fn schema(&self) -> Schema {
        Schema::new(self.attributes.iter().map(|(a, _)| a.clone()).collect())
            .expect("spec attribute names are unique by construction")
    }

    /// Generates `n_rows` tuples.
    ///
    /// # Panics
    /// Panics if the spec has no groups, no attributes, or non-positive
    /// weights.
    pub fn generate<R: Rng + ?Sized>(&self, n_rows: usize, rng: &mut R) -> SynthData {
        assert!(!self.group_weights.is_empty(), "need at least one group");
        assert!(!self.attributes.is_empty(), "need at least one attribute");
        assert!(
            self.group_weights.iter().all(|&w| w > 0.0 && w.is_finite()),
            "group weights must be positive"
        );
        let n_groups = self.n_groups();
        // Precompute cumulative value distributions per (attribute, group).
        let tables: Vec<Vec<Vec<f64>>> = self
            .attributes
            .iter()
            .map(|(attr, model)| {
                (0..n_groups)
                    .map(|g| cumulative(&value_probs(attr.domain.size(), model, g)))
                    .collect()
            })
            .collect();
        let group_cdf = cumulative(&normalize(&self.group_weights));

        let schema = self.schema();
        let mut columns: Vec<Vec<u32>> = vec![Vec::with_capacity(n_rows); schema.arity()];
        let mut latent = Vec::with_capacity(n_rows);
        for _ in 0..n_rows {
            let g = draw(&group_cdf, rng);
            latent.push(g);
            for (a, col) in columns.iter_mut().enumerate() {
                col.push(draw(&tables[a][g], rng) as u32);
            }
        }
        let data = Dataset::from_columns(schema, columns)
            .expect("generated codes are in-domain by construction");
        SynthData {
            data,
            latent_groups: latent,
        }
    }
}

/// Per-value probabilities for one attribute under one latent group.
fn value_probs(dom: usize, model: &AttrModel, group: usize) -> Vec<f64> {
    match model {
        AttrModel::Signal {
            centers,
            spread,
            background,
        } => {
            assert!(!centers.is_empty(), "signal attribute needs centers");
            assert!(
                (0.0..1.0).contains(background),
                "background must be in [0,1)"
            );
            let center = centers[group % centers.len()] as f64;
            let s = spread.max(1e-6);
            let bump: Vec<f64> = (0..dom)
                .map(|v| (-((v as f64 - center).powi(2)) / (2.0 * s * s)).exp())
                .collect();
            let bump = normalize(&bump);
            bump.iter()
                .map(|&b| (1.0 - background) * b + background / dom as f64)
                .collect()
        }
        AttrModel::Noise(marginal) => match *marginal {
            Marginal::Uniform => vec![1.0 / dom as f64; dom],
            Marginal::Zipf(s) => {
                let raw: Vec<f64> = (0..dom).map(|v| 1.0 / ((v + 1) as f64).powf(s)).collect();
                normalize(&raw)
            }
            Marginal::Peaked { center, spread } => {
                let s = spread.max(1e-6);
                let raw: Vec<f64> = (0..dom)
                    .map(|v| (-((v as f64 - center as f64).powi(2)) / (2.0 * s * s)).exp())
                    .collect();
                normalize(&raw)
            }
        },
    }
}

fn normalize(v: &[f64]) -> Vec<f64> {
    let total: f64 = v.iter().sum();
    assert!(total > 0.0, "distribution must have positive mass");
    v.iter().map(|&x| x / total).collect()
}

fn cumulative(probs: &[f64]) -> Vec<f64> {
    let mut acc = 0.0;
    let mut cdf: Vec<f64> = probs
        .iter()
        .map(|&p| {
            acc += p;
            acc
        })
        .collect();
    // Guard the tail against round-off so draw() can never fall off the end.
    if let Some(last) = cdf.last_mut() {
        *last = 1.0;
    }
    cdf
}

fn draw<R: Rng + ?Sized>(cdf: &[f64], rng: &mut R) -> usize {
    let u: f64 = rng.gen();
    cdf.partition_point(|&c| c < u).min(cdf.len() - 1)
}

/// Spreads `n_signal` peak positions across a domain of size `dom` for
/// `n_groups` groups: group `g` peaks at a distinct position when possible.
pub(crate) fn spread_centers(dom: usize, n_groups: usize) -> Vec<usize> {
    (0..n_groups)
        .map(|g| {
            if n_groups == 1 {
                dom / 2
            } else {
                (g * (dom - 1)) / (n_groups - 1)
            }
        })
        .collect()
}

/// Spread centers with the group→peak assignment rotated by `shift` — gives
/// each multi-group signal attribute a *different* per-cluster separation
/// profile, as distinct real attributes have.
pub(crate) fn rotated_centers(dom: usize, n_groups: usize, shift: usize) -> Vec<usize> {
    let base = spread_centers(dom, n_groups);
    (0..n_groups)
        .map(|g| base[(g + shift) % n_groups])
        .collect()
}

/// Centers for an attribute that singles out one group: group
/// `special % n_groups` peaks at the top of the domain while every other
/// group sits at a common low position. This is the structure behind the
/// paper's examples ("Cluster 1 consists primarily of individuals who
/// underwent a higher number of lab procedures"): each such attribute is the
/// natural explanation of *its* cluster and near-useless for the others.
pub(crate) fn focused_centers(dom: usize, n_groups: usize, special: usize) -> Vec<usize> {
    let mut centers = vec![dom / 4; n_groups];
    centers[special % n_groups] = dom - 1;
    centers
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Domain;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(2024)
    }

    fn spec() -> SynthSpec {
        SynthSpec {
            name: "toy".into(),
            attributes: vec![
                (
                    Attribute::new("sig", Domain::indexed(10)).unwrap(),
                    AttrModel::Signal {
                        centers: vec![1, 8],
                        spread: 0.8,
                        background: 0.05,
                    },
                ),
                (
                    Attribute::new("noise", Domain::indexed(4)).unwrap(),
                    AttrModel::Noise(Marginal::Uniform),
                ),
            ],
            group_weights: vec![0.5, 0.5],
        }
    }

    #[test]
    fn generates_requested_rows_with_valid_codes() {
        let mut r = rng();
        let out = spec().generate(5000, &mut r);
        assert_eq!(out.data.n_rows(), 5000);
        assert_eq!(out.latent_groups.len(), 5000);
        assert!(out.latent_groups.iter().all(|&g| g < 2));
    }

    #[test]
    fn signal_attribute_separates_groups() {
        let mut r = rng();
        let out = spec().generate(20_000, &mut r);
        let col = out.data.column(0);
        // Group 0 peaks near 1, group 1 near 8.
        let mean_of = |g: usize| -> f64 {
            let vals: Vec<f64> = col
                .iter()
                .zip(&out.latent_groups)
                .filter(|(_, &lg)| lg == g)
                .map(|(&v, _)| v as f64)
                .collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        assert!(mean_of(0) < 3.0, "group 0 mean {}", mean_of(0));
        assert!(mean_of(1) > 6.0, "group 1 mean {}", mean_of(1));
    }

    #[test]
    fn noise_attribute_is_group_independent() {
        let mut r = rng();
        let out = spec().generate(40_000, &mut r);
        let col = out.data.column(1);
        for g in 0..2 {
            let vals: Vec<u32> = col
                .iter()
                .zip(&out.latent_groups)
                .filter(|(_, &lg)| lg == g)
                .map(|(&v, _)| v)
                .collect();
            let mut counts = [0usize; 4];
            for &v in &vals {
                counts[v as usize] += 1;
            }
            for &c in &counts {
                let frac = c as f64 / vals.len() as f64;
                assert!((frac - 0.25).abs() < 0.02, "group {g}: frac {frac}");
            }
        }
    }

    #[test]
    fn group_weights_are_respected() {
        let mut r = rng();
        let mut s = spec();
        s.group_weights = vec![0.9, 0.1];
        let out = s.generate(30_000, &mut r);
        let g0 = out.latent_groups.iter().filter(|&&g| g == 0).count() as f64 / 30_000.0;
        assert!((g0 - 0.9).abs() < 0.01, "group 0 fraction {g0}");
    }

    #[test]
    fn zipf_marginal_is_skewed() {
        let mut r = rng();
        let s = SynthSpec {
            name: "z".into(),
            attributes: vec![(
                Attribute::new("z", Domain::indexed(5)).unwrap(),
                AttrModel::Noise(Marginal::Zipf(1.5)),
            )],
            group_weights: vec![1.0],
        };
        let out = s.generate(30_000, &mut r);
        let h = out.data.histogram(0);
        assert!(h.count(0) > 2 * h.count(1), "Zipf head not dominant");
        assert!(h.count(1) > h.count(4));
    }

    #[test]
    fn spread_centers_covers_domain() {
        assert_eq!(spread_centers(10, 2), vec![0, 9]);
        assert_eq!(spread_centers(10, 1), vec![5]);
        let c = spread_centers(39, 5);
        assert_eq!(c.len(), 5);
        assert!(c.iter().all(|&x| x < 39));
        assert!(c.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn deterministic_under_seed() {
        let a = spec().generate(100, &mut StdRng::seed_from_u64(5));
        let b = spec().generate(100, &mut StdRng::seed_from_u64(5));
        for r in 0..100 {
            assert_eq!(a.data.row(r), b.data.row(r));
        }
        assert_eq!(a.latent_groups, b.latent_groups);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_panics() {
        let mut s = spec();
        s.group_weights = vec![1.0, 0.0];
        let mut r = rng();
        s.generate(10, &mut r);
    }
}
