//! Row sampling utilities.
//!
//! Two experiments need sampling: Fig. 9d samples a fraction of all tuples
//! uniformly, and Fig. 8b samples an `η` fraction of *each cluster* (keeping
//! cluster proportions) to study small-cluster behaviour.

use crate::dataset::Dataset;
use rand::seq::SliceRandom;
use rand::Rng;

/// Uniformly samples `⌈rate·n⌉` row indices without replacement.
///
/// # Panics
/// Panics unless `0 < rate ≤ 1`.
pub fn sample_rows<R: Rng + ?Sized>(n: usize, rate: f64, rng: &mut R) -> Vec<usize> {
    assert!(
        rate > 0.0 && rate <= 1.0,
        "rate must be in (0,1], got {rate}"
    );
    let target = ((n as f64 * rate).ceil() as usize).clamp(usize::from(n > 0), n);
    let mut indices: Vec<usize> = (0..n).collect();
    indices.shuffle(rng);
    indices.truncate(target);
    indices
}

/// Samples an `η` fraction of each cluster independently (Fig. 8b), returning
/// the sampled dataset together with the corresponding labels. Every
/// *non-empty* cluster retains at least one tuple so the clustering stays
/// total over the surviving labels.
pub fn sample_per_cluster<R: Rng + ?Sized>(
    data: &Dataset,
    labels: &[usize],
    n_clusters: usize,
    eta: f64,
    rng: &mut R,
) -> (Dataset, Vec<usize>) {
    assert!(eta > 0.0 && eta <= 1.0, "eta must be in (0,1], got {eta}");
    assert_eq!(labels.len(), data.n_rows());
    let mut by_cluster: Vec<Vec<usize>> = vec![Vec::new(); n_clusters];
    for (row, &c) in labels.iter().enumerate() {
        by_cluster[c].push(row);
    }
    let mut keep: Vec<usize> = Vec::new();
    for members in &mut by_cluster {
        if members.is_empty() {
            continue;
        }
        members.shuffle(rng);
        let target = ((members.len() as f64 * eta).ceil() as usize).clamp(1, members.len());
        keep.extend_from_slice(&members[..target]);
    }
    keep.sort_unstable();
    let sampled = data.select_rows(&keep);
    let sampled_labels = keep.iter().map(|&r| labels[r]).collect();
    (sampled, sampled_labels)
}

/// Uniformly samples `frac` of the attribute indices (at least one), used by
/// the attribute-scaling experiment (Fig. 9c).
pub fn sample_attributes<R: Rng + ?Sized>(
    n_attributes: usize,
    frac: f64,
    rng: &mut R,
) -> Vec<usize> {
    assert!(
        frac > 0.0 && frac <= 1.0,
        "frac must be in (0,1], got {frac}"
    );
    let target = ((n_attributes as f64 * frac).ceil() as usize).clamp(1, n_attributes);
    let mut indices: Vec<usize> = (0..n_attributes).collect();
    indices.shuffle(rng);
    indices.truncate(target);
    indices.sort_unstable();
    indices
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Domain, Schema};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    fn dataset(n: usize) -> Dataset {
        let schema = Schema::new(vec![Attribute::new("x", Domain::indexed(4)).unwrap()]).unwrap();
        let rows: Vec<Vec<u32>> = (0..n).map(|i| vec![(i % 4) as u32]).collect();
        Dataset::from_rows(schema, &rows).unwrap()
    }

    #[test]
    fn sample_rows_respects_rate_and_uniqueness() {
        let mut r = rng();
        let idx = sample_rows(1000, 0.25, &mut r);
        assert_eq!(idx.len(), 250);
        let mut dedup = idx.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 250);
        assert!(dedup.iter().all(|&i| i < 1000));
    }

    #[test]
    fn sample_rows_full_rate_returns_everything() {
        let mut r = rng();
        let idx = sample_rows(10, 1.0, &mut r);
        assert_eq!(idx.len(), 10);
    }

    #[test]
    #[should_panic(expected = "rate must be in")]
    fn zero_rate_panics() {
        let mut r = rng();
        sample_rows(10, 0.0, &mut r);
    }

    #[test]
    fn per_cluster_sampling_keeps_proportions() {
        let mut r = rng();
        let data = dataset(1000);
        // Clusters of sizes 700 / 300.
        let labels: Vec<usize> = (0..1000).map(|i| usize::from(i >= 700)).collect();
        let (sampled, sl) = sample_per_cluster(&data, &labels, 2, 0.1, &mut r);
        assert_eq!(sampled.n_rows(), sl.len());
        let c0 = sl.iter().filter(|&&c| c == 0).count();
        let c1 = sl.iter().filter(|&&c| c == 1).count();
        assert_eq!(c0, 70);
        assert_eq!(c1, 30);
    }

    #[test]
    fn per_cluster_sampling_never_empties_a_cluster() {
        let mut r = rng();
        let data = dataset(101);
        // Cluster 1 has a single member.
        let labels: Vec<usize> = (0..101).map(|i| usize::from(i == 50)).collect();
        let (_, sl) = sample_per_cluster(&data, &labels, 2, 0.001, &mut r);
        assert!(sl.contains(&1), "tiny cluster must survive");
        assert!(sl.contains(&0));
    }

    #[test]
    fn per_cluster_sampling_tolerates_declared_empty_cluster() {
        let mut r = rng();
        let data = dataset(10);
        let labels = vec![0usize; 10];
        let (sampled, sl) = sample_per_cluster(&data, &labels, 3, 0.5, &mut r);
        assert_eq!(sampled.n_rows(), 5);
        assert!(sl.iter().all(|&c| c == 0));
    }

    #[test]
    fn sample_attributes_sorted_unique_at_least_one() {
        let mut r = rng();
        let idx = sample_attributes(47, 0.5, &mut r);
        assert_eq!(idx.len(), 24);
        assert!(idx.windows(2).all(|w| w[0] < w[1]));
        let one = sample_attributes(47, 0.001, &mut r);
        assert_eq!(one.len(), 1);
    }
}
