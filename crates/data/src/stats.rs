//! Association statistics between categorical attributes.
//!
//! The correlation-robustness experiment (§6.2, "Impact of attribute
//! correlations") generates, for each original attribute, a correlated twin
//! with a Cramér's V of 0.85. This module provides χ² and Cramér's V from
//! coded columns, plus entropy helpers used in analysis.

/// Pearson's χ² statistic of the joint distribution of two coded columns.
///
/// # Panics
/// Panics if column lengths differ.
pub fn chi_square(x: &[u32], y: &[u32], dom_x: usize, dom_y: usize) -> f64 {
    assert_eq!(x.len(), y.len(), "columns must be aligned");
    let n = x.len();
    if n == 0 {
        return 0.0;
    }
    let mut joint = vec![0u64; dom_x * dom_y];
    let mut mx = vec![0u64; dom_x];
    let mut my = vec![0u64; dom_y];
    for (&a, &b) in x.iter().zip(y) {
        joint[a as usize * dom_y + b as usize] += 1;
        mx[a as usize] += 1;
        my[b as usize] += 1;
    }
    let n = n as f64;
    let mut chi2 = 0.0;
    for (i, &cx) in mx.iter().enumerate() {
        if cx == 0 {
            continue;
        }
        for (j, &cy) in my.iter().enumerate() {
            if cy == 0 {
                continue;
            }
            let expected = cx as f64 * cy as f64 / n;
            let observed = joint[i * dom_y + j] as f64;
            chi2 += (observed - expected).powi(2) / expected;
        }
    }
    chi2
}

/// Cramér's V association measure in `[0, 1]`:
/// `V = sqrt(χ² / (n · (min(r, c) − 1)))` where `r`, `c` are the numbers of
/// *observed* categories. Returns 0 when either column is constant.
pub fn cramers_v(x: &[u32], y: &[u32], dom_x: usize, dom_y: usize) -> f64 {
    assert_eq!(x.len(), y.len(), "columns must be aligned");
    if x.is_empty() {
        return 0.0;
    }
    let observed = |col: &[u32], dom: usize| -> usize {
        let mut seen = vec![false; dom];
        for &v in col {
            seen[v as usize] = true;
        }
        seen.iter().filter(|&&s| s).count()
    };
    let r = observed(x, dom_x);
    let c = observed(y, dom_y);
    let k = r.min(c);
    if k <= 1 {
        return 0.0;
    }
    let chi2 = chi_square(x, y, dom_x, dom_y);
    let v2 = chi2 / (x.len() as f64 * (k - 1) as f64);
    v2.max(0.0).sqrt().min(1.0)
}

/// Shannon entropy (nats) of a coded column's empirical distribution.
pub fn entropy(codes: &[u32], dom: usize) -> f64 {
    if codes.is_empty() {
        return 0.0;
    }
    let mut counts = vec![0u64; dom];
    for &c in codes {
        counts[c as usize] += 1;
    }
    let n = codes.len() as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.ln()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_columns_have_v_one() {
        let x: Vec<u32> = (0..1000).map(|i| (i % 4) as u32).collect();
        let v = cramers_v(&x, &x, 4, 4);
        assert!((v - 1.0).abs() < 1e-9, "V = {v}");
    }

    #[test]
    fn independent_columns_have_v_near_zero() {
        // Deterministic pseudo-independent pattern: x cycles every 4, y every 5.
        let x: Vec<u32> = (0..20_000).map(|i| (i % 4) as u32).collect();
        let y: Vec<u32> = (0..20_000).map(|i| (i % 5) as u32).collect();
        let v = cramers_v(&x, &y, 4, 5);
        assert!(v < 0.05, "V = {v}");
    }

    #[test]
    fn constant_column_yields_zero() {
        let x = vec![0u32; 100];
        let y: Vec<u32> = (0..100).map(|i| (i % 3) as u32).collect();
        assert_eq!(cramers_v(&x, &y, 2, 3), 0.0);
    }

    #[test]
    fn chi_square_zero_for_independence_pattern() {
        // Perfectly balanced joint: every (i, j) cell equal.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..3u32 {
            for j in 0..3u32 {
                for _ in 0..10 {
                    x.push(i);
                    y.push(j);
                }
            }
        }
        let chi2 = chi_square(&x, &y, 3, 3);
        assert!(chi2.abs() < 1e-9, "chi2 = {chi2}");
    }

    #[test]
    fn partial_association_is_intermediate() {
        // y copies x 80% of the time, else shifted — V strictly between 0 and 1.
        let x: Vec<u32> = (0..10_000).map(|i| (i % 4) as u32).collect();
        let y: Vec<u32> = x
            .iter()
            .enumerate()
            .map(|(i, &v)| if i % 5 == 0 { (v + 1) % 4 } else { v })
            .collect();
        let v = cramers_v(&x, &y, 4, 4);
        assert!(v > 0.5 && v < 0.95, "V = {v}");
    }

    #[test]
    fn entropy_uniform_is_log_k() {
        let codes: Vec<u32> = (0..8000).map(|i| (i % 8) as u32).collect();
        let h = entropy(&codes, 8);
        assert!((h - (8f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn entropy_constant_is_zero() {
        assert_eq!(entropy(&[3u32; 100], 5), 0.0);
        assert_eq!(entropy(&[], 5), 0.0);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn mismatched_lengths_panic() {
        chi_square(&[0], &[0, 1], 2, 2);
    }
}
