//! Exact histograms `h_A(D)` and distances between them.
//!
//! Histograms are vectors of counts over a fixed, data-independent domain
//! (§2). The paper's quality functions are all expressible in terms of
//! histogram L1 arithmetic (Corollaries A.1/A.2 in the appendix); this module
//! provides that arithmetic plus total-variation and Jensen–Shannon distances
//! used by the *sensitive* (non-private) quality functions and the evaluation
//! `Quality` measure.

use std::fmt;

/// An exact histogram: `counts[a] = cnt_{A=a}(D)` for every `a ∈ dom(A)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
}

impl Histogram {
    /// Builds an all-zero histogram with `domain_size` bins.
    pub fn zeros(domain_size: usize) -> Self {
        Histogram {
            counts: vec![0; domain_size],
        }
    }

    /// Builds a histogram by counting coded values. Codes must be `< domain_size`.
    ///
    /// # Panics
    /// Panics (in debug) on out-of-domain codes; in release they are ignored
    /// defensively after a debug assertion — datasets validate domains at
    /// construction so this cannot trigger via the public `Dataset` API.
    pub fn from_codes(codes: &[u32], domain_size: usize) -> Self {
        let mut counts = vec![0u64; domain_size];
        for &c in codes {
            debug_assert!((c as usize) < domain_size, "code {c} out of domain");
            if let Some(slot) = counts.get_mut(c as usize) {
                *slot += 1;
            }
        }
        Histogram { counts }
    }

    /// Builds a histogram from explicit counts.
    pub fn from_counts(counts: Vec<u64>) -> Self {
        Histogram { counts }
    }

    /// Number of bins `|dom(A)|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the histogram has zero bins.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Count in bin `code`.
    #[inline]
    pub fn count(&self, code: u32) -> u64 {
        self.counts[code as usize]
    }

    /// All counts.
    #[inline]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Sum of all counts (the L1 norm; equals `|D|` for a full projection).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The normalized histogram (empirical distribution). An empty histogram
    /// (total 0) normalizes to all-zeros rather than dividing by zero.
    pub fn normalized(&self) -> Vec<f64> {
        let total = self.total();
        if total == 0 {
            return vec![0.0; self.counts.len()];
        }
        let t = total as f64;
        self.counts.iter().map(|&c| c as f64 / t).collect()
    }

    /// Bin-wise sum.
    ///
    /// # Panics
    /// Panics if bin counts differ.
    pub fn add(&self, other: &Histogram) -> Histogram {
        assert_eq!(self.len(), other.len(), "histogram domains must match");
        Histogram {
            counts: self
                .counts
                .iter()
                .zip(&other.counts)
                .map(|(&a, &b)| a + b)
                .collect(),
        }
    }

    /// Bin-wise saturating difference `max(self − other, 0)`.
    pub fn saturating_sub(&self, other: &Histogram) -> Histogram {
        assert_eq!(self.len(), other.len(), "histogram domains must match");
        Histogram {
            counts: self
                .counts
                .iter()
                .zip(&other.counts)
                .map(|(&a, &b)| a.saturating_sub(b))
                .collect(),
        }
    }

    /// Total-variation distance between the *normalized* histograms
    /// (Equation 1 of the paper):
    /// `TVD(p, q) = ½ Σ_a |p(a) − q(a)|`.
    ///
    /// If either histogram is empty (total 0), its "distribution" is the zero
    /// vector, matching the `max{|D_c|, 1}` guard in Definition 4.5.
    pub fn tvd(&self, other: &Histogram) -> f64 {
        assert_eq!(self.len(), other.len(), "histogram domains must match");
        let p = self.normalized();
        let q = other.normalized();
        0.5 * p.iter().zip(&q).map(|(&a, &b)| (a - b).abs()).sum::<f64>()
    }

    /// Jensen–Shannon *distance* (square root of the JS divergence, log
    /// base 2, so the range is `[0, 1]` as the paper's Appendix A.1 states)
    /// between the normalized histograms — the alternative interestingness
    /// measure discussed there.
    pub fn js_distance(&self, other: &Histogram) -> f64 {
        assert_eq!(self.len(), other.len(), "histogram domains must match");
        let p = self.normalized();
        let q = other.normalized();
        let mut div = 0.0;
        for (&a, &b) in p.iter().zip(&q) {
            let m = 0.5 * (a + b);
            if a > 0.0 {
                div += 0.5 * a * (a / m).log2();
            }
            if b > 0.0 {
                div += 0.5 * b * (b / m).log2();
            }
        }
        // Clamp tiny negative round-off before the sqrt.
        div.max(0.0).sqrt()
    }

    /// L1 distance between raw (unnormalized) count vectors — the building
    /// block of the paper's low-sensitivity functions (Corollary A.1).
    pub fn l1_distance_scaled(&self, other: &Histogram, self_w: f64, other_w: f64) -> f64 {
        assert_eq!(self.len(), other.len(), "histogram domains must match");
        self.counts
            .iter()
            .zip(&other.counts)
            .map(|(&a, &b)| (self_w * a as f64 - other_w * b as f64).abs())
            .sum()
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, c) in self.counts.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_codes_counts_correctly() {
        let h = Histogram::from_codes(&[0, 1, 1, 3, 3, 3], 4);
        assert_eq!(h.counts(), &[1, 2, 0, 3]);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn normalized_sums_to_one() {
        let h = Histogram::from_codes(&[0, 1, 2, 2], 3);
        let n = h.normalized();
        assert!((n.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((n[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_normalizes_to_zero() {
        let h = Histogram::zeros(3);
        assert_eq!(h.normalized(), vec![0.0; 3]);
    }

    #[test]
    fn tvd_identical_is_zero_disjoint_is_one() {
        let a = Histogram::from_counts(vec![5, 0, 5]);
        assert_eq!(a.tvd(&a), 0.0);
        let b = Histogram::from_counts(vec![0, 7, 0]);
        assert!((a.tvd(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tvd_is_symmetric_and_bounded() {
        let a = Histogram::from_counts(vec![3, 1, 0, 6]);
        let b = Histogram::from_counts(vec![1, 1, 1, 1]);
        let d = a.tvd(&b);
        assert!((d - b.tvd(&a)).abs() < 1e-15);
        assert!((0.0..=1.0).contains(&d));
    }

    #[test]
    fn tvd_matches_paper_example() {
        // Paper §4.1 example: 95%/5% vs 0%/100% → TVD 0.95.
        let full = Histogram::from_counts(vec![95_000, 5_000]);
        let cluster = Histogram::from_counts(vec![0, 1]);
        assert!((full.tvd(&cluster) - 0.95).abs() < 1e-9);
    }

    #[test]
    fn js_distance_bounds_and_symmetry() {
        let a = Histogram::from_counts(vec![10, 0]);
        let b = Histogram::from_counts(vec![0, 10]);
        let d = a.js_distance(&b);
        // Max JS distance with log base 2 is exactly 1.
        assert!((d - 1.0).abs() < 1e-12);
        assert_eq!(a.js_distance(&a), 0.0);
        let c = Histogram::from_counts(vec![3, 7]);
        assert!((a.js_distance(&c) - c.js_distance(&a)).abs() < 1e-15);
    }

    #[test]
    fn add_and_saturating_sub() {
        let a = Histogram::from_counts(vec![5, 1]);
        let b = Histogram::from_counts(vec![2, 3]);
        assert_eq!(a.add(&b).counts(), &[7, 4]);
        assert_eq!(a.saturating_sub(&b).counts(), &[3, 0]);
    }

    #[test]
    #[should_panic(expected = "domains must match")]
    fn mismatched_domains_panic() {
        let a = Histogram::zeros(2);
        let b = Histogram::zeros(3);
        let _ = a.tvd(&b);
    }

    #[test]
    fn l1_distance_scaled_matches_low_sensitivity_interestingness_form() {
        // Int_p = ½‖h_A(D_c) − (|D_c|/|D|)·h_A(D)‖₁ (Corollary A.1).
        let cluster = Histogram::from_counts(vec![10, 0]);
        let full = Histogram::from_counts(vec![10, 90]);
        let l1 = cluster.l1_distance_scaled(&full, 1.0, 10.0 / 100.0);
        // |10 − 1| + |0 − 9| = 18 → Int_p = 9; also |D_c|·TVD = 10·0.9 = 9.
        assert!((0.5 * l1 - 9.0).abs() < 1e-12);
        assert!((0.5 * l1 - 10.0 * full.tvd(&cluster)).abs() < 1e-9);
    }
}
