//! One-pass (cluster × value) contingency tables.
//!
//! Every quality function in DPClustX — interestingness, sufficiency,
//! diversity, and their sensitive counterparts — is a function of the counts
//! `cnt_{A=a}(D_c)` and `cnt_{A=a}(D)`. Building these once per attribute
//! turns Stage-1's `O(|A|·|C|)` score evaluations and Stage-2's `O(k^|C|)`
//! global-score evaluations into pure arithmetic over cached vectors.
//!
//! ## Flat layout
//!
//! A [`ContingencyTable`] stores its per-cluster counts as **one contiguous,
//! stride-indexed `Vec<u64>`** in cluster-major order: the count
//! `cnt_{A=v}(D_c)` lives at index `c · |dom(A)| + v`. Compared to the
//! earlier `Vec<Vec<u64>>`-of-rows layout this removes one pointer
//! indirection per increment, keeps the whole table in a single allocation,
//! and makes chunk merging plain vector addition. The full-data marginal,
//! the per-cluster sizes, and the grand total are derived once at build time
//! (they are exact column/row sums of the flat table) and stored.
//!
//! ## Two kernels, one result
//!
//! [`ClusteredCounts::build`] is the **frozen serial reference**: labels
//! narrowed to `u32` once, four attributes counted per row pass into `u32`
//! sub-tables, widened to `u64` at the end. It is deliberately simple — the
//! bit-identity oracle every other path is tested against, and the `serial`
//! row of the counts ablation.
//!
//! [`ClusteredCounts::build_parallel`] is the **optimized kernel**, built
//! from what the counts ablation actually measured on this workload
//! (counting is memory-bound; the tables are L1-resident, so wins come from
//! fewer increments per row and less streamed traffic, not cache blocking):
//!
//! * **Label narrowing once per build** — labels are narrowed to the
//!   smallest width `n_clusters` fits in (`u8`/`u16`/`u32`) in a single
//!   upfront pass shared by every chunk, replacing the old per-chunk
//!   `Vec<u32>` copy; the kernel is monomorphized per width.
//! * **Pair-fused joint counting** — where `n_clusters · |dom(A_i)| ·
//!   |dom(A_j)|` stays under [`JOINT_FUSION_MAX_CELLS`], adjacent attribute
//!   pairs are counted into a small *joint* table with one increment per
//!   pair (`joint[base[c] + v_i · |dom(A_j)| + v_j] += 1`, a branch-free
//!   indexed add off a per-cluster base lookup), then marginalized exactly
//!   into both per-attribute sub-tables. Two fused pairs share each row
//!   pass, halving table increments per row versus the reference kernel.
//!   Attributes whose joint table would blow the threshold fall back to
//!   single-attribute counting — still through the per-cluster base lookup,
//!   which keeps the hot sub-table's base address out of the dependent
//!   multiply chain.
//! * **Worker-claimed chunks with per-thread table reuse** — rows are split
//!   into fixed [`PARALLEL_CHUNK_ROWS`]-row chunks claimed off an atomic
//!   counter ([`dpx_runtime::chunk_worker_reduce`]); each worker folds every
//!   chunk it claims into one reusable accumulator (flat table + joint
//!   scratch), so table allocation is paid per worker, not per chunk, and
//!   the surviving worker tables merge through a pairwise tree
//!   ([`dpx_runtime::pairwise_merge`]).
//!
//! All counting is exact integer addition — associative and commutative —
//! so every path (reference, optimized serial, any thread count, any chunk
//! assignment) produces **bit-identical** tables; asserted by unit tests
//! here and property tests in `tests/properties.rs`.
//!
//! ## Incremental updates
//!
//! [`ClusteredCounts::apply_delta`] folds appended and retired rows into an
//! existing build in `O(|delta| · arity)` — each delta row touches one cell,
//! one marginal entry, and one cluster size per attribute — instead of the
//! `O(n · arity)` full rescan. Retiring a row that was never counted panics
//! on the underflow rather than corrupting the tables. The serve layer uses
//! this to refresh a warm dataset's cached counts on append
//! (fingerprint-chained cache keys; see `dpx-serve`), and the bench crate
//! records the incremental-vs-rebuild ratio in `results/BENCH_fig9.json`.
//!
//! Labels are validated once up front ([`validate_labels`]), shared by all
//! builds, instead of a branch per row inside the counting loop.

use crate::dataset::Dataset;
use crate::histogram::Histogram;
use dpx_runtime::chunk_worker_reduce;
use std::ops::Range;

/// Minimum rows each worker must receive before [`ClusteredCounts::build_parallel`]
/// spends a thread on it.
///
/// The counting kernel is memory-bound and each extra worker costs a thread
/// spawn, an accumulator table, and a merge. The committed counts ablation
/// (`results/BENCH_fig9.json`, regenerated for the worker-claimed kernel)
/// keeps showing the same crossover region: below ~100 k rows per worker the
/// setup and merge outweigh the scan they split. 100 k rows per worker keeps
/// every spawned worker on the winning side.
pub const PARALLEL_MIN_ROWS_PER_THREAD: usize = 100_000;

/// Fixed chunk granule (rows) for the worker-claimed parallel build.
///
/// Chunk size is decoupled from the thread count: workers claim
/// 64 Ki-row chunks off a shared counter, so stragglers self-balance while
/// the per-chunk cost stays one atomic increment plus one joint-table
/// marginalization per pass (the accumulators themselves are reused across
/// chunks). At the 1M-row headline point this yields 16 claims — enough to
/// balance, far too few for claim overhead to show up in the ablation.
pub const PARALLEL_CHUNK_ROWS: usize = 65_536;

/// Upper bound on `n_clusters · |dom(A_i)| · |dom(A_j)|` for an adjacent
/// attribute pair to be counted through a fused joint table.
///
/// The fusion trades one table increment per pair for a joint table that
/// must stay cache-resident and cheap to zero + marginalize per chunk;
/// 64 Ki cells (256 KiB of `u32`) is comfortably inside L2 and two orders
/// of magnitude below the per-chunk row work.
pub const JOINT_FUSION_MAX_CELLS: usize = 1 << 16;

/// The worker count [`ClusteredCounts::build_parallel`] actually uses for a
/// requested `threads` on `n_rows` rows: capped so every worker gets at least
/// [`PARALLEL_MIN_ROWS_PER_THREAD`] rows, and never below 1.
///
/// This is the pure data-size policy; `build_parallel` additionally clamps
/// the result to the machine's available parallelism (over-subscribing a
/// bandwidth-bound kernel only adds context-switch thrash, and the result is
/// bit-identical at every worker count, so the clamp is unobservable in the
/// output).
#[inline]
pub fn effective_build_threads(n_rows: usize, threads: usize) -> usize {
    let cap = (n_rows / PARALLEL_MIN_ROWS_PER_THREAD).max(1);
    threads.max(1).min(cap)
}

/// Validates a cluster labeling in one upfront pass: one label per row, every
/// label `< n_clusters`.
///
/// # Panics
/// Panics with the counting kernels' documented messages when `labels` has
/// the wrong length or contains an out-of-range label.
pub fn validate_labels(labels: &[usize], n_rows: usize, n_clusters: usize) {
    assert_eq!(labels.len(), n_rows, "one cluster label per tuple required");
    if let Some(&c) = labels.iter().find(|&&c| c >= n_clusters) {
        panic!("label {c} out of range ({n_clusters})");
    }
}

/// Per-attribute contingency table: counts of each domain value inside each
/// cluster (flat, cluster-major) plus the full-data marginal, per-cluster
/// sizes, and total — all computed once at build time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContingencyTable {
    /// `flat[c * dom + v] = cnt_{A=v}(D_c)` — cluster-major rows.
    flat: Vec<u64>,
    /// Domain size `|dom(A)|` (the row stride of `flat`).
    dom: usize,
    /// Number of clusters (the row count of `flat`).
    n_clusters: usize,
    /// `marginal[v] = cnt_{A=v}(D) = Σ_c flat[c·dom + v]`.
    marginal: Vec<u64>,
    /// `|D_c|` per cluster.
    cluster_sizes: Vec<u64>,
    /// `|D|`.
    total: u64,
}

impl ContingencyTable {
    /// Builds the table for attribute `attr` of `data` under the given
    /// cluster `labels` (one label `< n_clusters` per row).
    ///
    /// # Panics
    /// Panics if `labels.len() != data.n_rows()` or a label is out of range
    /// (validated in one upfront pass, not per counted row).
    pub fn build(data: &Dataset, attr: usize, labels: &[usize], n_clusters: usize) -> Self {
        validate_labels(labels, data.n_rows(), n_clusters);
        let dom = data.schema().attribute(attr).domain.size();
        let mut flat = vec![0u64; n_clusters * dom];
        for (&v, &c) in data.column(attr).iter().zip(labels) {
            flat[c * dom + v as usize] += 1;
        }
        Self::from_flat(flat, n_clusters, dom)
    }

    /// Finalizes a flat cluster-major count table: derives the marginal, the
    /// cluster sizes, and the total (exact `u64` sums, so the derived fields
    /// are identical however the flat table was accumulated).
    pub(crate) fn from_flat(flat: Vec<u64>, n_clusters: usize, dom: usize) -> Self {
        assert_eq!(flat.len(), n_clusters * dom, "flat table shape mismatch");
        let mut marginal = vec![0u64; dom];
        let mut cluster_sizes = vec![0u64; n_clusters];
        for (c, row) in flat.chunks_exact(dom.max(1)).enumerate().take(n_clusters) {
            let mut size = 0u64;
            for (m, &x) in marginal.iter_mut().zip(row) {
                *m += x;
                size += x;
            }
            cluster_sizes[c] = size;
        }
        let total = cluster_sizes.iter().sum();
        ContingencyTable {
            flat,
            dom,
            n_clusters,
            marginal,
            cluster_sizes,
            total,
        }
    }

    /// Folds appended rows of this table's attribute into the counts: one
    /// cell, one marginal entry, and one cluster size per row. Exact `u64`
    /// addition — identical to having counted the rows at build time.
    pub(crate) fn add_rows(&mut self, column: &[u32], labels: &[usize]) {
        for (&v, &c) in column.iter().zip(labels) {
            self.flat[c * self.dom + v as usize] += 1;
            self.marginal[v as usize] += 1;
            self.cluster_sizes[c] += 1;
        }
        self.total += column.len() as u64;
    }

    /// Removes retired rows of this table's attribute from the counts.
    ///
    /// # Panics
    /// Panics if a retired row was never counted (its cell would underflow) —
    /// the delta is rejected loudly instead of corrupting the table.
    pub(crate) fn retire_rows(&mut self, column: &[u32], labels: &[usize]) {
        for (&v, &c) in column.iter().zip(labels) {
            let cell = &mut self.flat[c * self.dom + v as usize];
            *cell = cell
                .checked_sub(1)
                .expect("retired row not present in counts");
            // The cell is a lower bound for its marginal / size / total
            // aggregates, so these cannot underflow once the cell held.
            self.marginal[v as usize] -= 1;
            self.cluster_sizes[c] -= 1;
            self.total -= 1;
        }
    }

    /// Number of clusters.
    #[inline]
    pub fn n_clusters(&self) -> usize {
        self.n_clusters
    }

    /// Domain size of the underlying attribute.
    #[inline]
    pub fn domain_size(&self) -> usize {
        self.dom
    }

    /// `cnt_{A=v}(D_c)`.
    #[inline]
    pub fn cluster_count(&self, c: usize, v: u32) -> u64 {
        self.flat[c * self.dom + v as usize]
    }

    /// All per-value counts of cluster `c` — a stride-indexed slice of the
    /// flat table.
    #[inline]
    pub fn cluster_row(&self, c: usize) -> &[u64] {
        &self.flat[c * self.dom..(c + 1) * self.dom]
    }

    /// The whole flat cluster-major table (`n_clusters · dom` entries).
    #[inline]
    pub fn flat(&self) -> &[u64] {
        &self.flat
    }

    /// `cnt_{A=v}(D)`.
    #[inline]
    pub fn marginal_count(&self, v: u32) -> u64 {
        self.marginal[v as usize]
    }

    /// The full-data marginal counts.
    #[inline]
    pub fn marginal(&self) -> &[u64] {
        &self.marginal
    }

    /// `|D_c|`.
    #[inline]
    pub fn cluster_size(&self, c: usize) -> u64 {
        self.cluster_sizes[c]
    }

    /// All cluster sizes (computed once at build time).
    #[inline]
    pub fn cluster_sizes(&self) -> &[u64] {
        &self.cluster_sizes
    }

    /// `|D|` (computed once at build time).
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The in-cluster histogram `h_A(D_c)`.
    pub fn cluster_histogram(&self, c: usize) -> Histogram {
        Histogram::from_counts(self.cluster_row(c).to_vec())
    }

    /// The full-data histogram `h_A(D)`.
    pub fn marginal_histogram(&self) -> Histogram {
        Histogram::from_counts(self.marginal.clone())
    }

    /// The out-of-cluster histogram `h_A(D \ D_c)`.
    pub fn complement_histogram(&self, c: usize) -> Histogram {
        Histogram::from_counts(
            self.marginal
                .iter()
                .zip(self.cluster_row(c))
                .map(|(&m, &k)| m - k)
                .collect(),
        )
    }
}

/// Label storage width for the once-per-build narrowed label buffer. The
/// counting kernels are monomorphized over this, so the narrow widths pay no
/// per-row conversion.
trait LabelCode: Copy + Send + Sync {
    fn from_label(c: usize) -> Self;
    fn index(self) -> usize;
}

macro_rules! impl_label_code {
    ($($t:ty),*) => {$(
        impl LabelCode for $t {
            #[inline(always)]
            fn from_label(c: usize) -> Self {
                c as $t
            }
            #[inline(always)]
            fn index(self) -> usize {
                self as usize
            }
        }
    )*};
}
impl_label_code!(u8, u16, u32);

/// Labels narrowed once per build to the smallest width `n_clusters` fits in.
enum NarrowedLabels {
    U8(Vec<u8>),
    U16(Vec<u16>),
    U32(Vec<u32>),
}

fn narrow_labels(labels: &[usize], n_clusters: usize) -> NarrowedLabels {
    // Validated labels satisfy `c < n_clusters`, so `n_clusters <= 256`
    // guarantees every label fits u8, etc.
    if n_clusters <= 1 << 8 {
        NarrowedLabels::U8(labels.iter().map(|&c| LabelCode::from_label(c)).collect())
    } else if n_clusters <= 1 << 16 {
        NarrowedLabels::U16(labels.iter().map(|&c| LabelCode::from_label(c)).collect())
    } else {
        NarrowedLabels::U32(labels.iter().map(|&c| LabelCode::from_label(c)).collect())
    }
}

/// One row pass of the optimized kernel. Passes cover the attributes in
/// ascending order, each attribute exactly once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pass {
    /// Attributes `a..a+4`, both adjacent pairs fused into joint tables —
    /// two increments per row serve four attribute tables.
    TwoPairs { a: usize },
    /// Attributes `a..a+2` fused into one joint table.
    OnePair { a: usize },
    /// Attribute `a` counted directly (joint table would exceed
    /// [`JOINT_FUSION_MAX_CELLS`], or no partner attribute is left).
    Single { a: usize },
}

/// Plans the pass sequence for a schema: greedily fuse adjacent pairs where
/// the joint table stays small, fall back to single-attribute passes where
/// it would not. Pure function of `(doms, n_clusters)`, shared by every
/// worker.
fn plan_passes(doms: &[usize], n_clusters: usize) -> Vec<Pass> {
    let fusable = |a: usize| {
        n_clusters
            .saturating_mul(doms[a])
            .saturating_mul(doms[a + 1])
            <= JOINT_FUSION_MAX_CELLS
    };
    let mut passes = Vec::new();
    let mut a = 0;
    while a < doms.len() {
        if a + 4 <= doms.len() && fusable(a) && fusable(a + 2) {
            passes.push(Pass::TwoPairs { a });
            a += 4;
        } else if a + 2 <= doms.len() && fusable(a) {
            passes.push(Pass::OnePair { a });
            a += 2;
        } else {
            passes.push(Pass::Single { a });
            a += 1;
        }
    }
    passes
}

/// Per-worker scratch for the optimized kernel, reused across every pass and
/// every chunk the worker claims: two joint tables and two per-cluster base
/// lookups. Buffers grow to the largest pass once and stay allocated.
#[derive(Default)]
struct JointScratch {
    joint0: Vec<u32>,
    joint1: Vec<u32>,
    base0: Vec<u32>,
    base1: Vec<u32>,
}

/// Zeroes-and-sizes a scratch buffer for one pass.
#[inline]
fn reset(buf: &mut Vec<u32>, len: usize) {
    buf.clear();
    buf.resize(len, 0);
}

/// Fills `base[c] = c · stride` — the per-cluster row origin lookup that
/// keeps the hot index computation a single add off a table instead of a
/// dependent multiply.
#[inline]
fn fill_bases(base: &mut Vec<u32>, n_clusters: usize, stride: usize) {
    base.clear();
    base.extend((0..n_clusters).map(|c| (c * stride) as u32));
}

/// Marginalizes one fused joint table (layout `joint[c·d0·d1 + v0·d1 + v1]`)
/// exactly into the two per-attribute sub-tables `s0` (stride `d0`) and `s1`
/// (stride `d1`). Pure `u32` addition, so fusing is unobservable in the
/// output.
fn marginalize_pair(
    joint: &[u32],
    n_clusters: usize,
    d0: usize,
    d1: usize,
    s0: &mut [u32],
    s1: &mut [u32],
) {
    let dp = d0 * d1;
    for c in 0..n_clusters {
        let jrow = &joint[c * dp..(c + 1) * dp];
        let r0 = &mut s0[c * d0..(c + 1) * d0];
        let r1 = &mut s1[c * d1..(c + 1) * d1];
        for (v0, seg) in jrow.chunks_exact(d1.max(1)).enumerate().take(d0) {
            let mut sum = 0u32;
            for (t, &x) in r1.iter_mut().zip(seg) {
                *t += x;
                sum += x;
            }
            r0[v0] += sum;
        }
    }
}

/// Counts one fused pair of columns into `joint` over `range`.
#[inline]
fn count_pair_span<L: LabelCode>(
    lab: &[L],
    c0: &[u32],
    c1: &[u32],
    d1: usize,
    base: &[u32],
    joint: &mut [u32],
) {
    let d1w = d1 as u32;
    for ((&c, &v0), &v1) in lab.iter().zip(c0).zip(c1) {
        joint[(base[c.index()] + v0 * d1w + v1) as usize] += 1;
    }
}

/// One chunk of the optimized kernel: runs every planned pass over `range`,
/// accumulating into the worker's flat table (fused pairs detour through the
/// reusable joint scratch and are marginalized exactly).
#[allow(clippy::too_many_arguments)] // the chunk kernel's full working set
fn count_span<L: LabelCode>(
    data: &Dataset,
    lab: &[L],
    range: Range<usize>,
    n_clusters: usize,
    doms: &[usize],
    passes: &[Pass],
    flat: &mut [u32],
    scratch: &mut JointScratch,
) {
    let lab = &lab[range.clone()];
    let mut rest: &mut [u32] = flat;
    for &pass in passes {
        match pass {
            Pass::TwoPairs { a } => {
                let (d0, d1, d2, d3) = (doms[a], doms[a + 1], doms[a + 2], doms[a + 3]);
                let (dp0, dp1) = (d0 * d1, d2 * d3);
                let taken = rest;
                let (s0, tail) = taken.split_at_mut(n_clusters * d0);
                let (s1, tail) = tail.split_at_mut(n_clusters * d1);
                let (s2, tail) = tail.split_at_mut(n_clusters * d2);
                let (s3, tail) = tail.split_at_mut(n_clusters * d3);
                rest = tail;
                reset(&mut scratch.joint0, n_clusters * dp0);
                reset(&mut scratch.joint1, n_clusters * dp1);
                fill_bases(&mut scratch.base0, n_clusters, dp0);
                fill_bases(&mut scratch.base1, n_clusters, dp1);
                let c0 = &data.column(a)[range.clone()];
                let c1 = &data.column(a + 1)[range.clone()];
                let c2 = &data.column(a + 2)[range.clone()];
                let c3 = &data.column(a + 3)[range.clone()];
                let (d1w, d3w) = (d1 as u32, d3 as u32);
                let (joint0, joint1) = (&mut scratch.joint0[..], &mut scratch.joint1[..]);
                let (base0, base1) = (&scratch.base0[..], &scratch.base1[..]);
                for ((((&c, &v0), &v1), &v2), &v3) in lab.iter().zip(c0).zip(c1).zip(c2).zip(c3) {
                    let c = c.index();
                    joint0[(base0[c] + v0 * d1w + v1) as usize] += 1;
                    joint1[(base1[c] + v2 * d3w + v3) as usize] += 1;
                }
                marginalize_pair(joint0, n_clusters, d0, d1, s0, s1);
                marginalize_pair(joint1, n_clusters, d2, d3, s2, s3);
            }
            Pass::OnePair { a } => {
                let (d0, d1) = (doms[a], doms[a + 1]);
                let dp = d0 * d1;
                let taken = rest;
                let (s0, tail) = taken.split_at_mut(n_clusters * d0);
                let (s1, tail) = tail.split_at_mut(n_clusters * d1);
                rest = tail;
                reset(&mut scratch.joint0, n_clusters * dp);
                fill_bases(&mut scratch.base0, n_clusters, dp);
                count_pair_span(
                    lab,
                    &data.column(a)[range.clone()],
                    &data.column(a + 1)[range.clone()],
                    d1,
                    &scratch.base0,
                    &mut scratch.joint0,
                );
                marginalize_pair(&scratch.joint0, n_clusters, d0, d1, s0, s1);
            }
            Pass::Single { a } => {
                let dom = doms[a];
                let taken = rest;
                let (sub, tail) = taken.split_at_mut(n_clusters * dom);
                rest = tail;
                fill_bases(&mut scratch.base0, n_clusters, dom);
                let base = &scratch.base0[..];
                for (&v, &c) in data.column(a)[range.clone()].iter().zip(lab) {
                    sub[(base[c.index()] + v) as usize] += 1;
                }
            }
        }
    }
}

/// Contingency tables for every attribute of a dataset — the shared input to
/// Stage-1, Stage-2, and all baselines. Built by the frozen serial reference
/// ([`Self::build`]) or the optimized worker-claimed kernel
/// ([`Self::build_parallel`]), with bit-identical results; updated in place
/// by [`Self::apply_delta`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusteredCounts {
    tables: Vec<ContingencyTable>,
    n_clusters: usize,
    n_rows: u64,
    /// `|D_c|` per cluster, shared across attributes (computed once).
    cluster_sizes: Vec<u64>,
}

/// Per-attribute domain sizes and flat sub-table offsets, shared by both
/// kernels.
fn table_layout(data: &Dataset, n_clusters: usize) -> (Vec<usize>, Vec<usize>, usize) {
    let arity = data.schema().arity();
    let doms: Vec<usize> = (0..arity)
        .map(|a| data.schema().attribute(a).domain.size())
        .collect();
    let mut offsets = Vec::with_capacity(arity + 1);
    let mut acc = 0usize;
    for &dom in &doms {
        offsets.push(acc);
        acc += n_clusters * dom;
    }
    offsets.push(acc);
    (doms, offsets, acc)
}

impl ClusteredCounts {
    /// Builds tables for all attributes with the **frozen serial reference
    /// kernel**: one single-threaded scan, labels narrowed to `u32` once,
    /// four attributes per row pass into `u32` sub-tables.
    ///
    /// This kernel is deliberately independent of the optimized path — it is
    /// the bit-identity oracle the parallel/fused/incremental kernels are
    /// tested against, and the `serial` row of the counts ablation.
    pub fn build(data: &Dataset, labels: &[usize], n_clusters: usize) -> Self {
        validate_labels(labels, data.n_rows(), n_clusters);
        let (doms, offsets, flat_len) = table_layout(data, n_clusters);
        assert!(
            data.n_rows() < u32::MAX as usize,
            "dataset too large for u32 count chunks"
        );
        let arity = doms.len();
        let mut flat = vec![0u32; flat_len];
        let lab: Vec<u32> = labels.iter().map(|&c| c as u32).collect();
        let mut rest: &mut [u32] = &mut flat;
        let mut a = 0;
        while a + 4 <= arity {
            let (d0, d1, d2, d3) = (doms[a], doms[a + 1], doms[a + 2], doms[a + 3]);
            let taken = rest;
            let (s0, tail) = taken.split_at_mut(n_clusters * d0);
            let (s1, tail) = tail.split_at_mut(n_clusters * d1);
            let (s2, tail) = tail.split_at_mut(n_clusters * d2);
            let (s3, tail) = tail.split_at_mut(n_clusters * d3);
            rest = tail;
            let c0 = data.column(a);
            let c1 = data.column(a + 1);
            let c2 = data.column(a + 2);
            let c3 = data.column(a + 3);
            for ((((&c, &v0), &v1), &v2), &v3) in lab.iter().zip(c0).zip(c1).zip(c2).zip(c3) {
                let c = c as usize;
                s0[c * d0 + v0 as usize] += 1;
                s1[c * d1 + v1 as usize] += 1;
                s2[c * d2 + v2 as usize] += 1;
                s3[c * d3 + v3 as usize] += 1;
            }
            a += 4;
        }
        while a < arity {
            let dom = doms[a];
            let taken = rest;
            let (sub, tail) = taken.split_at_mut(n_clusters * dom);
            rest = tail;
            for (&v, &c) in data.column(a).iter().zip(&lab) {
                sub[c as usize * dom + v as usize] += 1;
            }
            a += 1;
        }
        Self::assemble(flat, &doms, &offsets, n_clusters, data.n_rows())
    }

    /// Builds tables for all attributes with the optimized worker-claimed
    /// kernel: labels narrowed once to the smallest width that fits
    /// `n_clusters`, adjacent attribute pairs fused into joint tables where
    /// they stay under [`JOINT_FUSION_MAX_CELLS`], rows claimed in
    /// [`PARALLEL_CHUNK_ROWS`] chunks by up to `threads` workers that each
    /// reuse one accumulator, worker tables merged through a pairwise tree.
    ///
    /// The output is **bit-identical** to [`Self::build`] for every
    /// `threads` value and every chunk assignment (all counting is exact,
    /// commutative integer addition); `threads = 1` runs the same kernel on
    /// the calling thread.
    ///
    /// `threads` is treated as an upper bound twice over: it falls back
    /// toward serial when workers would drop below
    /// [`PARALLEL_MIN_ROWS_PER_THREAD`] rows ([`effective_build_threads`] —
    /// below the crossover measured in the counts ablation, spawn and merge
    /// cost more than the scan they split), and it is clamped to the
    /// machine's available parallelism (over-subscribing a memory-bound
    /// kernel is pure thrash). Use [`Self::build_parallel_forced`] to bypass
    /// both (the ablation does, so it keeps measuring the raw kernel at
    /// every worker count).
    ///
    /// # Panics
    /// Panics if `labels.len() != data.n_rows()` or a label is out of range
    /// (one upfront validation pass shared with the serial build).
    pub fn build_parallel(
        data: &Dataset,
        labels: &[usize],
        n_clusters: usize,
        threads: usize,
    ) -> Self {
        let hardware = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        let threads = effective_build_threads(data.n_rows(), threads).min(hardware.max(1));
        Self::build_parallel_forced(data, labels, n_clusters, threads)
    }

    /// The optimized kernel with the worker count taken literally — no
    /// small-input fallback, no hardware clamp. Exists for the `counts`
    /// ablation, which measures the raw kernel on both sides of the
    /// serial/parallel crossover; production callers want
    /// [`Self::build_parallel`].
    ///
    /// # Panics
    /// Panics if `labels.len() != data.n_rows()` or a label is out of range.
    pub fn build_parallel_forced(
        data: &Dataset,
        labels: &[usize],
        n_clusters: usize,
        threads: usize,
    ) -> Self {
        validate_labels(labels, data.n_rows(), n_clusters);
        let (doms, offsets, flat_len) = table_layout(data, n_clusters);
        // Worker counters are u32: no single count can exceed the row count,
        // which in-memory datasets keep far below `u32::MAX` (asserted), and
        // the halved table footprint keeps the hot counters cache-resident.
        // Counts widen to u64 only once, after the exact u32 merge.
        assert!(
            data.n_rows() < u32::MAX as usize,
            "dataset too large for u32 count chunks"
        );
        let passes = plan_passes(&doms, n_clusters);
        // Labels narrow once for the whole build (not per chunk): one pass,
        // and the narrow widths quarter/halve the per-pass label traffic.
        let flat = match narrow_labels(labels, n_clusters) {
            NarrowedLabels::U8(lab) => {
                Self::count_all(data, &lab, n_clusters, &doms, &passes, flat_len, threads)
            }
            NarrowedLabels::U16(lab) => {
                Self::count_all(data, &lab, n_clusters, &doms, &passes, flat_len, threads)
            }
            NarrowedLabels::U32(lab) => {
                Self::count_all(data, &lab, n_clusters, &doms, &passes, flat_len, threads)
            }
        };
        Self::assemble(flat, &doms, &offsets, n_clusters, data.n_rows())
    }

    /// Runs the monomorphized counting kernel over all rows: workers claim
    /// [`PARALLEL_CHUNK_ROWS`]-row chunks, fold each into a reusable
    /// `(flat table, joint scratch)` accumulator, and the per-worker tables
    /// merge through a pairwise tree.
    fn count_all<L: LabelCode>(
        data: &Dataset,
        lab: &[L],
        n_clusters: usize,
        doms: &[usize],
        passes: &[Pass],
        flat_len: usize,
        threads: usize,
    ) -> Vec<u32> {
        chunk_worker_reduce(
            data.n_rows(),
            PARALLEL_CHUNK_ROWS,
            threads,
            || (vec![0u32; flat_len], JointScratch::default()),
            |acc: &mut (Vec<u32>, JointScratch), range| {
                count_span(
                    data, lab, range, n_clusters, doms, passes, &mut acc.0, &mut acc.1,
                );
            },
            |acc, part| {
                for (a, b) in acc.0.iter_mut().zip(part.0) {
                    *a += b;
                }
            },
        )
        .map(|(flat, _)| flat)
        .unwrap_or_else(|| vec![0u32; flat_len])
    }

    /// Widens a merged flat all-attribute `u32` buffer to `u64` and splits it
    /// into per-attribute tables (back to front so each split is a cheap
    /// truncation). Shared by both kernels, so the final table derivation is
    /// identical by construction.
    fn assemble(
        merged: Vec<u32>,
        doms: &[usize],
        offsets: &[usize],
        n_clusters: usize,
        n_rows: usize,
    ) -> Self {
        let mut merged: Vec<u64> = merged.into_iter().map(u64::from).collect();
        let arity = doms.len();
        let mut tables = Vec::with_capacity(arity);
        for a in (0..arity).rev() {
            let sub = merged.split_off(offsets[a]);
            tables.push(ContingencyTable::from_flat(sub, n_clusters, doms[a]));
        }
        tables.reverse();
        let cluster_sizes = tables
            .first()
            .map(|t| t.cluster_sizes().to_vec())
            .unwrap_or_else(|| vec![0u64; n_clusters]);
        ClusteredCounts {
            tables,
            n_clusters,
            n_rows: n_rows as u64,
            cluster_sizes,
        }
    }

    /// Folds a delta — `added` rows with `added_labels`, then `retired` rows
    /// with `retired_labels` — into the existing tables in
    /// `O(|delta| · arity)`: every table, its marginal, its cluster sizes,
    /// its total, and the shared `cluster_sizes`/`n_rows` are updated
    /// exactly, with no rescan of the already-counted rows.
    ///
    /// Because every update is exact integer addition, the result is
    /// **bit-identical** to a one-shot [`Self::build`] over the equivalent
    /// final dataset (original + added − retired), for any split into base
    /// and delta — property-tested in `tests/properties.rs`, including the
    /// empty-delta and all-rows-retired edges. Adds are applied before
    /// retires, so a row may appear in both sides of one delta.
    ///
    /// # Panics
    /// Panics if either delta dataset's schema shape (arity or domain
    /// sizes) differs from the tables, if a label slice is the wrong length
    /// or out of range, or if a retired row was never counted (underflow is
    /// rejected, not wrapped).
    pub fn apply_delta(
        &mut self,
        added: &Dataset,
        added_labels: &[usize],
        retired: &Dataset,
        retired_labels: &[usize],
    ) {
        for (name, delta) in [("added", added), ("retired", retired)] {
            assert_eq!(
                delta.schema().arity(),
                self.tables.len(),
                "{name} delta arity mismatch"
            );
            for (a, table) in self.tables.iter().enumerate() {
                assert_eq!(
                    delta.schema().attribute(a).domain.size(),
                    table.domain_size(),
                    "{name} delta domain mismatch at attribute {a}"
                );
            }
        }
        validate_labels(added_labels, added.n_rows(), self.n_clusters);
        validate_labels(retired_labels, retired.n_rows(), self.n_clusters);
        for (a, table) in self.tables.iter_mut().enumerate() {
            table.add_rows(added.column(a), added_labels);
            table.retire_rows(retired.column(a), retired_labels);
        }
        self.n_rows = self
            .n_rows
            .checked_add(added.n_rows() as u64)
            .and_then(|n| n.checked_sub(retired.n_rows() as u64))
            .expect("retired more rows than the counts hold");
        if let Some(first) = self.tables.first() {
            // Derived exactly as `assemble` does — from the first table —
            // so a delta-updated build stays field-for-field identical to a
            // one-shot build.
            self.cluster_sizes = first.cluster_sizes().to_vec();
        }
    }

    /// The table for attribute `a`.
    #[inline]
    pub fn table(&self, a: usize) -> &ContingencyTable {
        &self.tables[a]
    }

    /// Number of attributes covered.
    #[inline]
    pub fn n_attributes(&self) -> usize {
        self.tables.len()
    }

    /// Number of clusters.
    #[inline]
    pub fn n_clusters(&self) -> usize {
        self.n_clusters
    }

    /// `|D|`.
    #[inline]
    pub fn n_rows(&self) -> u64 {
        self.n_rows
    }

    /// `|D_c]` for one cluster.
    #[inline]
    pub fn cluster_size(&self, c: usize) -> u64 {
        self.cluster_sizes[c]
    }

    /// All cluster sizes (identical across attributes; computed once at
    /// build time).
    #[inline]
    pub fn cluster_sizes(&self) -> &[u64] {
        &self.cluster_sizes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Domain, Schema};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn dataset_and_labels() -> (Dataset, Vec<usize>) {
        let schema = Schema::new(vec![
            Attribute::new("x", Domain::indexed(3)).unwrap(),
            Attribute::new("y", Domain::indexed(2)).unwrap(),
        ])
        .unwrap();
        let rows = vec![
            vec![0, 0], // c0
            vec![0, 1], // c0
            vec![1, 1], // c1
            vec![2, 1], // c1
            vec![2, 0], // c0
        ];
        let data = Dataset::from_rows(schema, &rows).unwrap();
        (data, vec![0, 0, 1, 1, 0])
    }

    #[test]
    fn counts_match_manual_tally() {
        let (data, labels) = dataset_and_labels();
        let t = ContingencyTable::build(&data, 0, &labels, 2);
        assert_eq!(t.cluster_count(0, 0), 2);
        assert_eq!(t.cluster_count(0, 2), 1);
        assert_eq!(t.cluster_count(1, 1), 1);
        assert_eq!(t.cluster_count(1, 2), 1);
        assert_eq!(t.marginal_count(2), 2);
        assert_eq!(t.cluster_size(0), 3);
        assert_eq!(t.cluster_size(1), 2);
        assert_eq!(t.total(), 5);
    }

    #[test]
    fn flat_layout_is_cluster_major() {
        let (data, labels) = dataset_and_labels();
        let t = ContingencyTable::build(&data, 0, &labels, 2);
        assert_eq!(t.flat().len(), 2 * 3);
        for c in 0..2 {
            for v in 0..3u32 {
                assert_eq!(t.flat()[c * 3 + v as usize], t.cluster_count(c, v));
            }
        }
        assert_eq!(t.cluster_row(1), &t.flat()[3..6]);
    }

    #[test]
    fn marginal_equals_sum_of_cluster_rows() {
        let (data, labels) = dataset_and_labels();
        let t = ContingencyTable::build(&data, 0, &labels, 2);
        for v in 0..3u32 {
            let sum: u64 = (0..2).map(|c| t.cluster_count(c, v)).sum();
            assert_eq!(sum, t.marginal_count(v));
        }
    }

    #[test]
    fn histograms_are_consistent() {
        let (data, labels) = dataset_and_labels();
        let t = ContingencyTable::build(&data, 1, &labels, 2);
        let h0 = t.cluster_histogram(0);
        let hc = t.complement_histogram(0);
        let hm = t.marginal_histogram();
        assert_eq!(h0.add(&hc), hm);
        assert_eq!(h0.total(), 3);
        assert_eq!(hc.total(), 2);
    }

    #[test]
    fn empty_cluster_allowed() {
        let (data, labels) = dataset_and_labels();
        // Declare 3 clusters; cluster 2 is empty.
        let t = ContingencyTable::build(&data, 0, &labels, 3);
        assert_eq!(t.cluster_size(2), 0);
        assert_eq!(t.cluster_histogram(2).total(), 0);
    }

    #[test]
    #[should_panic(expected = "one cluster label per tuple")]
    fn wrong_label_count_panics() {
        let (data, _) = dataset_and_labels();
        ContingencyTable::build(&data, 0, &[0, 1], 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_label_panics() {
        let (data, mut labels) = dataset_and_labels();
        labels[0] = 7;
        ContingencyTable::build(&data, 0, &labels, 2);
    }

    #[test]
    #[should_panic(expected = "one cluster label per tuple")]
    fn parallel_wrong_label_count_panics() {
        let (data, _) = dataset_and_labels();
        ClusteredCounts::build_parallel(&data, &[0, 1], 2, 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn parallel_out_of_range_label_panics() {
        let (data, mut labels) = dataset_and_labels();
        labels[3] = 9;
        ClusteredCounts::build_parallel(&data, &labels, 2, 4);
    }

    #[test]
    fn clustered_counts_covers_all_attributes() {
        let (data, labels) = dataset_and_labels();
        let cc = ClusteredCounts::build(&data, &labels, 2);
        assert_eq!(cc.n_attributes(), 2);
        assert_eq!(cc.n_clusters(), 2);
        assert_eq!(cc.n_rows(), 5);
        assert_eq!(cc.cluster_sizes(), &[3, 2]);
        assert_eq!(cc.table(1).marginal_count(1), 3);
    }

    #[test]
    fn small_inputs_fall_back_toward_serial() {
        // Below one threshold of rows: any requested width collapses to 1.
        assert_eq!(effective_build_threads(0, 4), 1);
        assert_eq!(effective_build_threads(5, 1), 1);
        assert_eq!(effective_build_threads(99_999, 64), 1);
        // The bench crossover case: 250 k rows at 4 threads would give each
        // worker 62.5 k rows (measured slower than serial); the cap grants
        // only the 2 workers that stay above the threshold.
        assert_eq!(effective_build_threads(250_000, 4), 2);
        // Enough rows per worker: the request is honored.
        assert_eq!(effective_build_threads(500_000, 4), 4);
        assert_eq!(effective_build_threads(1_000_000, 8), 8);
        // The cap never *raises* a small request.
        assert_eq!(effective_build_threads(1_000_000, 2), 2);
    }

    #[test]
    fn fallback_and_forced_builds_agree_with_serial() {
        let (data, labels) = dataset_and_labels();
        let serial = ClusteredCounts::build(&data, &labels, 2);
        // 5 rows << threshold: build_parallel(.., 8) takes the serial path.
        let adaptive = ClusteredCounts::build_parallel(&data, &labels, 2, 8);
        // The forced path still honors the 8 requested workers.
        let forced = ClusteredCounts::build_parallel_forced(&data, &labels, 2, 8);
        assert_counts_identical(&serial, &adaptive, "adaptive");
        assert_counts_identical(&serial, &forced, "forced");
    }

    fn assert_counts_identical(a: &ClusteredCounts, b: &ClusteredCounts, tag: &str) {
        assert_eq!(a.n_attributes(), b.n_attributes(), "{tag}: arity");
        assert_eq!(a.n_clusters(), b.n_clusters(), "{tag}: clusters");
        assert_eq!(a.n_rows(), b.n_rows(), "{tag}: rows");
        assert_eq!(a.cluster_sizes(), b.cluster_sizes(), "{tag}: sizes");
        for at in 0..a.n_attributes() {
            let (ta, tb) = (a.table(at), b.table(at));
            assert_eq!(ta.flat(), tb.flat(), "{tag}: attr {at} flat counts");
            assert_eq!(ta.marginal(), tb.marginal(), "{tag}: attr {at} marginal");
            assert_eq!(
                ta.cluster_sizes(),
                tb.cluster_sizes(),
                "{tag}: attr {at} sizes"
            );
            assert_eq!(ta.total(), tb.total(), "{tag}: attr {at} total");
        }
    }

    fn random_case(rng: &mut StdRng, max_clusters: usize) -> (Dataset, Vec<usize>, usize) {
        let arity = rng.gen_range(1..=5usize);
        let n_clusters = rng.gen_range(1..=max_clusters);
        let n_rows = rng.gen_range(0..=40usize);
        let schema = Schema::new(
            (0..arity)
                .map(|a| {
                    let dom = rng.gen_range(1..=7usize);
                    Attribute::new(format!("a{a}"), Domain::indexed(dom)).unwrap()
                })
                .collect(),
        )
        .unwrap();
        let rows: Vec<Vec<u32>> = (0..n_rows)
            .map(|_| {
                (0..arity)
                    .map(|a| {
                        let dom = schema.attribute(a).domain.size() as u32;
                        rng.gen_range(0..dom)
                    })
                    .collect()
            })
            .collect();
        let data = Dataset::from_rows(schema, &rows).unwrap();
        // Bias labels so some clusters stay empty in some cases.
        let labels: Vec<usize> = (0..n_rows)
            .map(|_| rng.gen_range(0..n_clusters.div_ceil(2).max(1)))
            .collect();
        (data, labels, n_clusters)
    }

    /// Seeded-random equivalence sweep (the proptest twin lives in
    /// `tests/properties.rs`): random shapes including empty clusters and
    /// single-row datasets, across `threads ∈ {1, 2, 7, 64}`.
    #[test]
    fn parallel_build_is_bit_identical_to_serial() {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        for case in 0..25 {
            let (data, labels, n_clusters) = random_case(&mut rng, 6);
            let serial = ClusteredCounts::build(&data, &labels, n_clusters);
            for threads in [1usize, 2, 7, 64] {
                let par = ClusteredCounts::build_parallel(&data, &labels, n_clusters, threads);
                assert_counts_identical(&serial, &par, &format!("case {case}, threads {threads}"));
                let forced =
                    ClusteredCounts::build_parallel_forced(&data, &labels, n_clusters, threads);
                assert_counts_identical(
                    &serial,
                    &forced,
                    &format!("case {case}, threads {threads}, forced"),
                );
            }
        }
    }

    /// The u16 and u32 label-narrowing paths (n_clusters above 2^8 / 2^16)
    /// produce the same tables as the reference build.
    #[test]
    fn wide_label_narrowing_paths_match_serial() {
        let schema = Schema::new(vec![
            Attribute::new("x", Domain::indexed(3)).unwrap(),
            Attribute::new("y", Domain::indexed(2)).unwrap(),
        ])
        .unwrap();
        let rows: Vec<Vec<u32>> = (0..12).map(|i| vec![i % 3, i % 2]).collect();
        let data = Dataset::from_rows(schema, &rows).unwrap();
        for n_clusters in [300usize, 70_000] {
            let labels: Vec<usize> = (0..12).map(|i| (i * 97) % n_clusters).collect();
            let serial = ClusteredCounts::build(&data, &labels, n_clusters);
            let par = ClusteredCounts::build_parallel_forced(&data, &labels, n_clusters, 3);
            assert_counts_identical(&serial, &par, &format!("n_clusters {n_clusters}"));
        }
    }

    /// Pass planning: fusable schemas fuse (two pairs per pass where
    /// possible), an oversized joint table forces a single-attribute pass,
    /// and the plan always covers every attribute exactly once in order.
    #[test]
    fn pass_plan_fuses_and_falls_back() {
        assert_eq!(
            plan_passes(&[3, 4, 5, 2, 6], 9),
            vec![Pass::TwoPairs { a: 0 }, Pass::Single { a: 4 }]
        );
        assert_eq!(
            plan_passes(&[3, 4, 5], 9),
            vec![Pass::OnePair { a: 0 }, Pass::Single { a: 2 }]
        );
        // 9 · 100 · 100 > 2^16: the first pair cannot fuse, the rest can.
        assert_eq!(
            plan_passes(&[100, 100, 5, 2], 9),
            vec![
                Pass::Single { a: 0 },
                Pass::OnePair { a: 1 },
                Pass::Single { a: 3 }
            ]
        );
        assert_eq!(plan_passes(&[], 9), vec![]);
    }

    /// A schema with an unfusably large domain still counts bit-identically
    /// (exercises the Single fallback next to fused passes).
    #[test]
    fn oversized_domains_fall_back_bit_identically() {
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        let schema = Schema::new(vec![
            Attribute::new("big", Domain::indexed(9_000)).unwrap(),
            Attribute::new("a", Domain::indexed(4)).unwrap(),
            Attribute::new("b", Domain::indexed(3)).unwrap(),
            Attribute::new("huge", Domain::indexed(40_000)).unwrap(),
        ])
        .unwrap();
        let rows: Vec<Vec<u32>> = (0..200)
            .map(|_| {
                vec![
                    rng.gen_range(0..9_000),
                    rng.gen_range(0..4),
                    rng.gen_range(0..3),
                    rng.gen_range(0..40_000),
                ]
            })
            .collect();
        let data = Dataset::from_rows(schema, &rows).unwrap();
        let labels: Vec<usize> = (0..200).map(|_| rng.gen_range(0..5)).collect();
        let serial = ClusteredCounts::build(&data, &labels, 5);
        for threads in [1usize, 4] {
            let par = ClusteredCounts::build_parallel_forced(&data, &labels, 5, threads);
            assert_counts_identical(&serial, &par, &format!("threads {threads}"));
        }
    }

    #[test]
    fn apply_delta_matches_one_shot_build() {
        let mut rng = StdRng::seed_from_u64(0xDE17A);
        for case in 0..25 {
            let (data, labels, n_clusters) = random_case(&mut rng, 6);
            let n = data.n_rows();
            let split = if n == 0 { 0 } else { rng.gen_range(0..=n) };
            let base = data.select_rows(&(0..split).collect::<Vec<_>>());
            let delta = data.select_rows(&(split..n).collect::<Vec<_>>());
            let mut counts = ClusteredCounts::build(&base, &labels[..split], n_clusters);
            let empty = Dataset::empty(data.schema().clone());
            counts.apply_delta(&delta, &labels[split..], &empty, &[]);
            let one_shot = ClusteredCounts::build(&data, &labels, n_clusters);
            assert_counts_identical(&one_shot, &counts, &format!("case {case} split {split}"));
        }
    }

    #[test]
    fn apply_delta_add_then_retire_round_trips() {
        let mut rng = StdRng::seed_from_u64(0x0DD5);
        for case in 0..25 {
            let (data, labels, n_clusters) = random_case(&mut rng, 6);
            let original = ClusteredCounts::build(&data, &labels, n_clusters);
            let mut counts = original.clone();
            let n = data.n_rows();
            let picks: Vec<usize> = (0..n).filter(|_| rng.gen_range(0..3u8) == 0).collect();
            let delta = data.select_rows(&picks);
            let delta_labels: Vec<usize> = picks.iter().map(|&i| labels[i]).collect();
            let empty = Dataset::empty(data.schema().clone());
            counts.apply_delta(&delta, &delta_labels, &empty, &[]);
            counts.apply_delta(&empty, &[], &delta, &delta_labels);
            assert_counts_identical(&original, &counts, &format!("case {case}"));
        }
    }

    #[test]
    fn apply_delta_retiring_all_rows_empties_the_counts() {
        let (data, labels) = dataset_and_labels();
        let mut counts = ClusteredCounts::build(&data, &labels, 2);
        let empty = Dataset::empty(data.schema().clone());
        counts.apply_delta(&empty, &[], &data, &labels);
        assert_eq!(counts.n_rows(), 0);
        assert_eq!(counts.cluster_sizes(), &[0, 0]);
        for a in 0..counts.n_attributes() {
            assert!(counts.table(a).flat().iter().all(|&x| x == 0));
            assert_eq!(counts.table(a).total(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "retired row not present")]
    fn apply_delta_retiring_absent_row_panics() {
        let (data, labels) = dataset_and_labels();
        let mut counts = ClusteredCounts::build(&data, &labels, 2);
        let empty = Dataset::empty(data.schema().clone());
        // Row [0,0] exists only in cluster 0; retiring it from cluster 1
        // must underflow loudly.
        let ghost = Dataset::from_rows(data.schema().clone(), &[vec![0, 0]]).unwrap();
        counts.apply_delta(&empty, &[], &ghost, &[1]);
    }

    #[test]
    #[should_panic(expected = "delta arity mismatch")]
    fn apply_delta_rejects_schema_shape_mismatch() {
        let (data, labels) = dataset_and_labels();
        let mut counts = ClusteredCounts::build(&data, &labels, 2);
        let other = Schema::new(vec![Attribute::new("z", Domain::indexed(2)).unwrap()]).unwrap();
        let delta = Dataset::from_rows(other, &[vec![0]]).unwrap();
        let empty = Dataset::empty(data.schema().clone());
        counts.apply_delta(&delta, &[0], &empty, &[]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn apply_delta_rejects_out_of_range_delta_label() {
        let (data, labels) = dataset_and_labels();
        let mut counts = ClusteredCounts::build(&data, &labels, 2);
        let delta = Dataset::from_rows(data.schema().clone(), &[vec![0, 0]]).unwrap();
        let empty = Dataset::empty(data.schema().clone());
        counts.apply_delta(&delta, &[5], &empty, &[]);
    }
}
