//! One-pass (cluster × value) contingency tables.
//!
//! Every quality function in DPClustX — interestingness, sufficiency,
//! diversity, and their sensitive counterparts — is a function of the counts
//! `cnt_{A=a}(D_c)` and `cnt_{A=a}(D)`. Building these once per attribute
//! (a single scan of the column zipped with cluster labels) turns Stage-1's
//! `O(|A|·|C|)` score evaluations and Stage-2's `O(k^|C|)` global-score
//! evaluations into pure arithmetic over cached vectors. The
//! `bench_counts_cache` ablation quantifies the speedup versus naive
//! re-counting.

use crate::dataset::Dataset;
use crate::histogram::Histogram;

/// Per-attribute contingency table: counts of each domain value inside each
/// cluster, plus the full-data marginal.
#[derive(Debug, Clone)]
pub struct ContingencyTable {
    /// `cluster_counts[c][v] = cnt_{A=v}(D_c)`.
    cluster_counts: Vec<Vec<u64>>,
    /// `marginal[v] = cnt_{A=v}(D)`.
    marginal: Vec<u64>,
    /// `|D_c|` per cluster.
    cluster_sizes: Vec<u64>,
}

impl ContingencyTable {
    /// Builds the table for attribute `attr` of `data` under the given
    /// cluster `labels` (one label `< n_clusters` per row).
    ///
    /// # Panics
    /// Panics if `labels.len() != data.n_rows()` or a label is out of range.
    pub fn build(data: &Dataset, attr: usize, labels: &[usize], n_clusters: usize) -> Self {
        assert_eq!(
            labels.len(),
            data.n_rows(),
            "one cluster label per tuple required"
        );
        let dom = data.schema().attribute(attr).domain.size();
        let mut cluster_counts = vec![vec![0u64; dom]; n_clusters];
        let mut marginal = vec![0u64; dom];
        let mut cluster_sizes = vec![0u64; n_clusters];
        for (&v, &c) in data.column(attr).iter().zip(labels) {
            assert!(c < n_clusters, "label {c} out of range ({n_clusters})");
            cluster_counts[c][v as usize] += 1;
            marginal[v as usize] += 1;
            cluster_sizes[c] += 1;
        }
        ContingencyTable {
            cluster_counts,
            marginal,
            cluster_sizes,
        }
    }

    /// Number of clusters.
    #[inline]
    pub fn n_clusters(&self) -> usize {
        self.cluster_counts.len()
    }

    /// Domain size of the underlying attribute.
    #[inline]
    pub fn domain_size(&self) -> usize {
        self.marginal.len()
    }

    /// `cnt_{A=v}(D_c)`.
    #[inline]
    pub fn cluster_count(&self, c: usize, v: u32) -> u64 {
        self.cluster_counts[c][v as usize]
    }

    /// All per-value counts of cluster `c`.
    #[inline]
    pub fn cluster_row(&self, c: usize) -> &[u64] {
        &self.cluster_counts[c]
    }

    /// `cnt_{A=v}(D)`.
    #[inline]
    pub fn marginal_count(&self, v: u32) -> u64 {
        self.marginal[v as usize]
    }

    /// The full-data marginal counts.
    #[inline]
    pub fn marginal(&self) -> &[u64] {
        &self.marginal
    }

    /// `|D_c|`.
    #[inline]
    pub fn cluster_size(&self, c: usize) -> u64 {
        self.cluster_sizes[c]
    }

    /// All cluster sizes.
    #[inline]
    pub fn cluster_sizes(&self) -> &[u64] {
        &self.cluster_sizes
    }

    /// `|D|`.
    pub fn total(&self) -> u64 {
        self.cluster_sizes.iter().sum()
    }

    /// The in-cluster histogram `h_A(D_c)`.
    pub fn cluster_histogram(&self, c: usize) -> Histogram {
        Histogram::from_counts(self.cluster_counts[c].clone())
    }

    /// The full-data histogram `h_A(D)`.
    pub fn marginal_histogram(&self) -> Histogram {
        Histogram::from_counts(self.marginal.clone())
    }

    /// The out-of-cluster histogram `h_A(D \ D_c)`.
    pub fn complement_histogram(&self, c: usize) -> Histogram {
        Histogram::from_counts(
            self.marginal
                .iter()
                .zip(&self.cluster_counts[c])
                .map(|(&m, &k)| m - k)
                .collect(),
        )
    }
}

/// Contingency tables for every attribute of a dataset, built in one pass per
/// column — the shared input to Stage-1, Stage-2, and all baselines.
#[derive(Debug, Clone)]
pub struct ClusteredCounts {
    tables: Vec<ContingencyTable>,
    n_clusters: usize,
    n_rows: u64,
}

impl ClusteredCounts {
    /// Builds tables for all attributes.
    pub fn build(data: &Dataset, labels: &[usize], n_clusters: usize) -> Self {
        let tables = (0..data.schema().arity())
            .map(|a| ContingencyTable::build(data, a, labels, n_clusters))
            .collect();
        ClusteredCounts {
            tables,
            n_clusters,
            n_rows: data.n_rows() as u64,
        }
    }

    /// The table for attribute `a`.
    #[inline]
    pub fn table(&self, a: usize) -> &ContingencyTable {
        &self.tables[a]
    }

    /// Number of attributes covered.
    #[inline]
    pub fn n_attributes(&self) -> usize {
        self.tables.len()
    }

    /// Number of clusters.
    #[inline]
    pub fn n_clusters(&self) -> usize {
        self.n_clusters
    }

    /// `|D|`.
    #[inline]
    pub fn n_rows(&self) -> u64 {
        self.n_rows
    }

    /// `|D_c|` (identical across attributes; read from the first table).
    pub fn cluster_size(&self, c: usize) -> u64 {
        self.tables.first().map_or(0, |t| t.cluster_size(c))
    }

    /// All cluster sizes.
    pub fn cluster_sizes(&self) -> Vec<u64> {
        (0..self.n_clusters).map(|c| self.cluster_size(c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Domain, Schema};

    fn dataset_and_labels() -> (Dataset, Vec<usize>) {
        let schema = Schema::new(vec![
            Attribute::new("x", Domain::indexed(3)).unwrap(),
            Attribute::new("y", Domain::indexed(2)).unwrap(),
        ])
        .unwrap();
        let rows = vec![
            vec![0, 0], // c0
            vec![0, 1], // c0
            vec![1, 1], // c1
            vec![2, 1], // c1
            vec![2, 0], // c0
        ];
        let data = Dataset::from_rows(schema, &rows).unwrap();
        (data, vec![0, 0, 1, 1, 0])
    }

    #[test]
    fn counts_match_manual_tally() {
        let (data, labels) = dataset_and_labels();
        let t = ContingencyTable::build(&data, 0, &labels, 2);
        assert_eq!(t.cluster_count(0, 0), 2);
        assert_eq!(t.cluster_count(0, 2), 1);
        assert_eq!(t.cluster_count(1, 1), 1);
        assert_eq!(t.cluster_count(1, 2), 1);
        assert_eq!(t.marginal_count(2), 2);
        assert_eq!(t.cluster_size(0), 3);
        assert_eq!(t.cluster_size(1), 2);
        assert_eq!(t.total(), 5);
    }

    #[test]
    fn marginal_equals_sum_of_cluster_rows() {
        let (data, labels) = dataset_and_labels();
        let t = ContingencyTable::build(&data, 0, &labels, 2);
        for v in 0..3u32 {
            let sum: u64 = (0..2).map(|c| t.cluster_count(c, v)).sum();
            assert_eq!(sum, t.marginal_count(v));
        }
    }

    #[test]
    fn histograms_are_consistent() {
        let (data, labels) = dataset_and_labels();
        let t = ContingencyTable::build(&data, 1, &labels, 2);
        let h0 = t.cluster_histogram(0);
        let hc = t.complement_histogram(0);
        let hm = t.marginal_histogram();
        assert_eq!(h0.add(&hc), hm);
        assert_eq!(h0.total(), 3);
        assert_eq!(hc.total(), 2);
    }

    #[test]
    fn empty_cluster_allowed() {
        let (data, labels) = dataset_and_labels();
        // Declare 3 clusters; cluster 2 is empty.
        let t = ContingencyTable::build(&data, 0, &labels, 3);
        assert_eq!(t.cluster_size(2), 0);
        assert_eq!(t.cluster_histogram(2).total(), 0);
    }

    #[test]
    #[should_panic(expected = "one cluster label per tuple")]
    fn wrong_label_count_panics() {
        let (data, _) = dataset_and_labels();
        ContingencyTable::build(&data, 0, &[0, 1], 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_label_panics() {
        let (data, mut labels) = dataset_and_labels();
        labels[0] = 7;
        ContingencyTable::build(&data, 0, &labels, 2);
    }

    #[test]
    fn clustered_counts_covers_all_attributes() {
        let (data, labels) = dataset_and_labels();
        let cc = ClusteredCounts::build(&data, &labels, 2);
        assert_eq!(cc.n_attributes(), 2);
        assert_eq!(cc.n_clusters(), 2);
        assert_eq!(cc.n_rows(), 5);
        assert_eq!(cc.cluster_sizes(), vec![3, 2]);
        assert_eq!(cc.table(1).marginal_count(1), 3);
    }
}
