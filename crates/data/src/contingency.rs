//! One-pass (cluster × value) contingency tables.
//!
//! Every quality function in DPClustX — interestingness, sufficiency,
//! diversity, and their sensitive counterparts — is a function of the counts
//! `cnt_{A=a}(D_c)` and `cnt_{A=a}(D)`. Building these once per attribute
//! turns Stage-1's `O(|A|·|C|)` score evaluations and Stage-2's `O(k^|C|)`
//! global-score evaluations into pure arithmetic over cached vectors.
//!
//! ## Flat layout
//!
//! A [`ContingencyTable`] stores its per-cluster counts as **one contiguous,
//! stride-indexed `Vec<u64>`** in cluster-major order: the count
//! `cnt_{A=v}(D_c)` lives at index `c · |dom(A)| + v`. Compared to the
//! earlier `Vec<Vec<u64>>`-of-rows layout this removes one pointer
//! indirection per increment, keeps the whole table in a single allocation,
//! and makes chunk merging plain vector addition. The full-data marginal,
//! the per-cluster sizes, and the grand total are derived once at build time
//! (they are exact column/row sums of the flat table) and stored.
//!
//! ## Chunked parallel build
//!
//! [`ClusteredCounts::build_parallel`] splits the rows into contiguous
//! per-thread chunks, counts **all attributes** into a thread-local flat
//! table in one pass over each chunk, and merges the per-chunk tables by
//! element-wise `u64` addition (see [`dpx_runtime::chunked_reduce`]).
//! Integer addition is associative and order-insensitive, and the merge runs
//! in ascending chunk order, so the parallel build is **bit-identical** to
//! the serial [`ClusteredCounts::build`] for every thread count — asserted
//! by unit tests here and property tests in `tests/properties.rs`.
//!
//! Chunking has a fixed per-chunk cost (table allocation, label narrowing,
//! merge), so `build_parallel` treats its `threads` argument as an upper
//! bound and falls back toward serial when chunks would drop below
//! [`PARALLEL_MIN_ROWS_PER_THREAD`] rows — the crossover the counts ablation
//! measures. [`ClusteredCounts::build_parallel_forced`] bypasses the fallback
//! for that ablation.
//!
//! Labels are validated once up front ([`validate_labels`]), shared by the
//! serial and parallel builds, instead of a branch per row inside the
//! counting loop. The `counts` ablation in the bench crate quantifies the
//! speedup of the flat kernel over the historical nested layout.

use crate::dataset::Dataset;
use crate::histogram::Histogram;
use dpx_runtime::chunked_reduce;

/// Minimum rows each chunk must receive before [`ClusteredCounts::build_parallel`]
/// spends a thread on it.
///
/// The counting kernel is memory-bound and each extra chunk costs a
/// thread-local table allocation, a label-narrowing pass, and a merge. The
/// committed counts ablation (`results/BENCH_fig9.json`) shows the crossover:
/// at 250 k rows, `parallel/4` (62.5 k rows per thread) is *slower* than the
/// serial flat kernel (0.01147 s vs 0.01087 s), while at 500 k rows
/// (125 k rows per thread) the parallel build wins. 100 k rows per thread
/// keeps every spawned chunk on the winning side of that crossover.
pub const PARALLEL_MIN_ROWS_PER_THREAD: usize = 100_000;

/// The chunk count [`ClusteredCounts::build_parallel`] actually uses for a
/// requested `threads` on `n_rows` rows: capped so every chunk gets at least
/// [`PARALLEL_MIN_ROWS_PER_THREAD`] rows, and never below 1.
#[inline]
pub fn effective_build_threads(n_rows: usize, threads: usize) -> usize {
    let cap = (n_rows / PARALLEL_MIN_ROWS_PER_THREAD).max(1);
    threads.max(1).min(cap)
}

/// Validates a cluster labeling in one upfront pass: one label per row, every
/// label `< n_clusters`.
///
/// # Panics
/// Panics with the counting kernels' documented messages when `labels` has
/// the wrong length or contains an out-of-range label.
pub fn validate_labels(labels: &[usize], n_rows: usize, n_clusters: usize) {
    assert_eq!(labels.len(), n_rows, "one cluster label per tuple required");
    if let Some(&c) = labels.iter().find(|&&c| c >= n_clusters) {
        panic!("label {c} out of range ({n_clusters})");
    }
}

/// Per-attribute contingency table: counts of each domain value inside each
/// cluster (flat, cluster-major) plus the full-data marginal, per-cluster
/// sizes, and total — all computed once at build time.
#[derive(Debug, Clone)]
pub struct ContingencyTable {
    /// `flat[c * dom + v] = cnt_{A=v}(D_c)` — cluster-major rows.
    flat: Vec<u64>,
    /// Domain size `|dom(A)|` (the row stride of `flat`).
    dom: usize,
    /// Number of clusters (the row count of `flat`).
    n_clusters: usize,
    /// `marginal[v] = cnt_{A=v}(D) = Σ_c flat[c·dom + v]`.
    marginal: Vec<u64>,
    /// `|D_c|` per cluster.
    cluster_sizes: Vec<u64>,
    /// `|D|`.
    total: u64,
}

impl ContingencyTable {
    /// Builds the table for attribute `attr` of `data` under the given
    /// cluster `labels` (one label `< n_clusters` per row).
    ///
    /// # Panics
    /// Panics if `labels.len() != data.n_rows()` or a label is out of range
    /// (validated in one upfront pass, not per counted row).
    pub fn build(data: &Dataset, attr: usize, labels: &[usize], n_clusters: usize) -> Self {
        validate_labels(labels, data.n_rows(), n_clusters);
        let dom = data.schema().attribute(attr).domain.size();
        let mut flat = vec![0u64; n_clusters * dom];
        for (&v, &c) in data.column(attr).iter().zip(labels) {
            flat[c * dom + v as usize] += 1;
        }
        Self::from_flat(flat, n_clusters, dom)
    }

    /// Finalizes a flat cluster-major count table: derives the marginal, the
    /// cluster sizes, and the total (exact `u64` sums, so the derived fields
    /// are identical however the flat table was accumulated).
    pub(crate) fn from_flat(flat: Vec<u64>, n_clusters: usize, dom: usize) -> Self {
        assert_eq!(flat.len(), n_clusters * dom, "flat table shape mismatch");
        let mut marginal = vec![0u64; dom];
        let mut cluster_sizes = vec![0u64; n_clusters];
        for (c, row) in flat.chunks_exact(dom.max(1)).enumerate().take(n_clusters) {
            let mut size = 0u64;
            for (m, &x) in marginal.iter_mut().zip(row) {
                *m += x;
                size += x;
            }
            cluster_sizes[c] = size;
        }
        let total = cluster_sizes.iter().sum();
        ContingencyTable {
            flat,
            dom,
            n_clusters,
            marginal,
            cluster_sizes,
            total,
        }
    }

    /// Number of clusters.
    #[inline]
    pub fn n_clusters(&self) -> usize {
        self.n_clusters
    }

    /// Domain size of the underlying attribute.
    #[inline]
    pub fn domain_size(&self) -> usize {
        self.dom
    }

    /// `cnt_{A=v}(D_c)`.
    #[inline]
    pub fn cluster_count(&self, c: usize, v: u32) -> u64 {
        self.flat[c * self.dom + v as usize]
    }

    /// All per-value counts of cluster `c` — a stride-indexed slice of the
    /// flat table.
    #[inline]
    pub fn cluster_row(&self, c: usize) -> &[u64] {
        &self.flat[c * self.dom..(c + 1) * self.dom]
    }

    /// The whole flat cluster-major table (`n_clusters · dom` entries).
    #[inline]
    pub fn flat(&self) -> &[u64] {
        &self.flat
    }

    /// `cnt_{A=v}(D)`.
    #[inline]
    pub fn marginal_count(&self, v: u32) -> u64 {
        self.marginal[v as usize]
    }

    /// The full-data marginal counts.
    #[inline]
    pub fn marginal(&self) -> &[u64] {
        &self.marginal
    }

    /// `|D_c|`.
    #[inline]
    pub fn cluster_size(&self, c: usize) -> u64 {
        self.cluster_sizes[c]
    }

    /// All cluster sizes (computed once at build time).
    #[inline]
    pub fn cluster_sizes(&self) -> &[u64] {
        &self.cluster_sizes
    }

    /// `|D|` (computed once at build time).
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The in-cluster histogram `h_A(D_c)`.
    pub fn cluster_histogram(&self, c: usize) -> Histogram {
        Histogram::from_counts(self.cluster_row(c).to_vec())
    }

    /// The full-data histogram `h_A(D)`.
    pub fn marginal_histogram(&self) -> Histogram {
        Histogram::from_counts(self.marginal.clone())
    }

    /// The out-of-cluster histogram `h_A(D \ D_c)`.
    pub fn complement_histogram(&self, c: usize) -> Histogram {
        Histogram::from_counts(
            self.marginal
                .iter()
                .zip(self.cluster_row(c))
                .map(|(&m, &k)| m - k)
                .collect(),
        )
    }
}

/// Contingency tables for every attribute of a dataset — the shared input to
/// Stage-1, Stage-2, and all baselines. Built serially ([`Self::build`]) or
/// by the chunked count–merge kernel ([`Self::build_parallel`]), with
/// bit-identical results.
#[derive(Debug, Clone)]
pub struct ClusteredCounts {
    tables: Vec<ContingencyTable>,
    n_clusters: usize,
    n_rows: u64,
    /// `|D_c|` per cluster, shared across attributes (computed once).
    cluster_sizes: Vec<u64>,
}

impl ClusteredCounts {
    /// Builds tables for all attributes with a single-threaded scan.
    pub fn build(data: &Dataset, labels: &[usize], n_clusters: usize) -> Self {
        Self::build_parallel(data, labels, n_clusters, 1)
    }

    /// Builds tables for all attributes with the chunked count–merge kernel:
    /// rows are split into up to `threads` contiguous chunks, each chunk is
    /// counted into a thread-local flat table covering **all** attributes in
    /// one pass, and the per-chunk tables are merged by element-wise `u64`
    /// addition in ascending chunk order.
    ///
    /// The output is **bit-identical** to [`Self::build`] for every
    /// `threads` value (integer addition is exact and order-insensitive);
    /// `threads = 1` takes the same kernel with a single chunk.
    ///
    /// `threads` is treated as an upper bound: when the dataset is too small
    /// for each chunk to receive [`PARALLEL_MIN_ROWS_PER_THREAD`] rows, the
    /// chunk count falls back toward serial ([`effective_build_threads`]) —
    /// below the crossover measured in the counts ablation, chunk setup and
    /// merge cost more than the scan they split. Use
    /// [`Self::build_parallel_forced`] to bypass the fallback (the ablation
    /// does, so it keeps measuring the raw kernel at every thread count).
    ///
    /// # Panics
    /// Panics if `labels.len() != data.n_rows()` or a label is out of range
    /// (one upfront validation pass shared with the serial build).
    pub fn build_parallel(
        data: &Dataset,
        labels: &[usize],
        n_clusters: usize,
        threads: usize,
    ) -> Self {
        let threads = effective_build_threads(data.n_rows(), threads);
        Self::build_parallel_forced(data, labels, n_clusters, threads)
    }

    /// The chunked count–merge kernel with the chunk count taken literally —
    /// no small-input fallback. Exists for the `counts` ablation, which
    /// measures the raw kernel on both sides of the serial/parallel
    /// crossover; production callers want [`Self::build_parallel`].
    ///
    /// # Panics
    /// Panics if `labels.len() != data.n_rows()` or a label is out of range.
    pub fn build_parallel_forced(
        data: &Dataset,
        labels: &[usize],
        n_clusters: usize,
        threads: usize,
    ) -> Self {
        validate_labels(labels, data.n_rows(), n_clusters);
        let arity = data.schema().arity();
        // Per-attribute sub-table offsets into one flat all-attribute buffer.
        let doms: Vec<usize> = (0..arity)
            .map(|a| data.schema().attribute(a).domain.size())
            .collect();
        let mut offsets = Vec::with_capacity(arity + 1);
        let mut acc = 0usize;
        for &dom in &doms {
            offsets.push(acc);
            acc += n_clusters * dom;
        }
        offsets.push(acc);
        let flat_len = acc;

        // Chunk counters are u32: no single count can exceed the row count,
        // which in-memory datasets keep far below `u32::MAX` (asserted), and
        // the halved table footprint keeps the hot counters cache-resident.
        // Counts widen to u64 only once, after the exact u32 merge.
        assert!(
            data.n_rows() < u32::MAX as usize,
            "dataset too large for u32 count chunks"
        );
        let merged = chunked_reduce(
            data.n_rows(),
            threads,
            |range| {
                let mut flat = vec![0u32; flat_len];
                // The kernel is memory-bound on streaming labels and columns,
                // so (a) labels are narrowed to u32 once per chunk, halving
                // their per-pass traffic, and (b) four attributes share each
                // row pass, so one label read serves four table updates.
                let lab: Vec<u32> = labels[range.clone()].iter().map(|&c| c as u32).collect();
                let mut rest: &mut [u32] = &mut flat;
                let mut a = 0;
                while a + 4 <= arity {
                    let (d0, d1, d2, d3) = (doms[a], doms[a + 1], doms[a + 2], doms[a + 3]);
                    let taken = rest;
                    let (s0, tail) = taken.split_at_mut(n_clusters * d0);
                    let (s1, tail) = tail.split_at_mut(n_clusters * d1);
                    let (s2, tail) = tail.split_at_mut(n_clusters * d2);
                    let (s3, tail) = tail.split_at_mut(n_clusters * d3);
                    rest = tail;
                    let c0 = &data.column(a)[range.clone()];
                    let c1 = &data.column(a + 1)[range.clone()];
                    let c2 = &data.column(a + 2)[range.clone()];
                    let c3 = &data.column(a + 3)[range.clone()];
                    for ((((&c, &v0), &v1), &v2), &v3) in lab.iter().zip(c0).zip(c1).zip(c2).zip(c3)
                    {
                        let c = c as usize;
                        s0[c * d0 + v0 as usize] += 1;
                        s1[c * d1 + v1 as usize] += 1;
                        s2[c * d2 + v2 as usize] += 1;
                        s3[c * d3 + v3 as usize] += 1;
                    }
                    a += 4;
                }
                while a < arity {
                    let dom = doms[a];
                    let taken = rest;
                    let (sub, tail) = taken.split_at_mut(n_clusters * dom);
                    rest = tail;
                    let col = &data.column(a)[range.clone()];
                    for (&v, &c) in col.iter().zip(&lab) {
                        sub[c as usize * dom + v as usize] += 1;
                    }
                    a += 1;
                }
                flat
            },
            |acc_flat: &mut Vec<u32>, part| {
                for (a, b) in acc_flat.iter_mut().zip(part) {
                    *a += b;
                }
            },
        )
        .unwrap_or_else(|| vec![0u32; flat_len]);

        let mut merged: Vec<u64> = merged.into_iter().map(u64::from).collect();
        let mut tables = Vec::with_capacity(arity);
        // Split the all-attribute buffer back into per-attribute tables,
        // back to front so each split is a cheap truncation.
        for a in (0..arity).rev() {
            let sub = merged.split_off(offsets[a]);
            tables.push(ContingencyTable::from_flat(sub, n_clusters, doms[a]));
        }
        tables.reverse();
        let cluster_sizes = tables
            .first()
            .map(|t| t.cluster_sizes().to_vec())
            .unwrap_or_else(|| vec![0u64; n_clusters]);
        ClusteredCounts {
            tables,
            n_clusters,
            n_rows: data.n_rows() as u64,
            cluster_sizes,
        }
    }

    /// The table for attribute `a`.
    #[inline]
    pub fn table(&self, a: usize) -> &ContingencyTable {
        &self.tables[a]
    }

    /// Number of attributes covered.
    #[inline]
    pub fn n_attributes(&self) -> usize {
        self.tables.len()
    }

    /// Number of clusters.
    #[inline]
    pub fn n_clusters(&self) -> usize {
        self.n_clusters
    }

    /// `|D|`.
    #[inline]
    pub fn n_rows(&self) -> u64 {
        self.n_rows
    }

    /// `|D_c]` for one cluster.
    #[inline]
    pub fn cluster_size(&self, c: usize) -> u64 {
        self.cluster_sizes[c]
    }

    /// All cluster sizes (identical across attributes; computed once at
    /// build time).
    #[inline]
    pub fn cluster_sizes(&self) -> &[u64] {
        &self.cluster_sizes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Domain, Schema};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn dataset_and_labels() -> (Dataset, Vec<usize>) {
        let schema = Schema::new(vec![
            Attribute::new("x", Domain::indexed(3)).unwrap(),
            Attribute::new("y", Domain::indexed(2)).unwrap(),
        ])
        .unwrap();
        let rows = vec![
            vec![0, 0], // c0
            vec![0, 1], // c0
            vec![1, 1], // c1
            vec![2, 1], // c1
            vec![2, 0], // c0
        ];
        let data = Dataset::from_rows(schema, &rows).unwrap();
        (data, vec![0, 0, 1, 1, 0])
    }

    #[test]
    fn counts_match_manual_tally() {
        let (data, labels) = dataset_and_labels();
        let t = ContingencyTable::build(&data, 0, &labels, 2);
        assert_eq!(t.cluster_count(0, 0), 2);
        assert_eq!(t.cluster_count(0, 2), 1);
        assert_eq!(t.cluster_count(1, 1), 1);
        assert_eq!(t.cluster_count(1, 2), 1);
        assert_eq!(t.marginal_count(2), 2);
        assert_eq!(t.cluster_size(0), 3);
        assert_eq!(t.cluster_size(1), 2);
        assert_eq!(t.total(), 5);
    }

    #[test]
    fn flat_layout_is_cluster_major() {
        let (data, labels) = dataset_and_labels();
        let t = ContingencyTable::build(&data, 0, &labels, 2);
        assert_eq!(t.flat().len(), 2 * 3);
        for c in 0..2 {
            for v in 0..3u32 {
                assert_eq!(t.flat()[c * 3 + v as usize], t.cluster_count(c, v));
            }
        }
        assert_eq!(t.cluster_row(1), &t.flat()[3..6]);
    }

    #[test]
    fn marginal_equals_sum_of_cluster_rows() {
        let (data, labels) = dataset_and_labels();
        let t = ContingencyTable::build(&data, 0, &labels, 2);
        for v in 0..3u32 {
            let sum: u64 = (0..2).map(|c| t.cluster_count(c, v)).sum();
            assert_eq!(sum, t.marginal_count(v));
        }
    }

    #[test]
    fn histograms_are_consistent() {
        let (data, labels) = dataset_and_labels();
        let t = ContingencyTable::build(&data, 1, &labels, 2);
        let h0 = t.cluster_histogram(0);
        let hc = t.complement_histogram(0);
        let hm = t.marginal_histogram();
        assert_eq!(h0.add(&hc), hm);
        assert_eq!(h0.total(), 3);
        assert_eq!(hc.total(), 2);
    }

    #[test]
    fn empty_cluster_allowed() {
        let (data, labels) = dataset_and_labels();
        // Declare 3 clusters; cluster 2 is empty.
        let t = ContingencyTable::build(&data, 0, &labels, 3);
        assert_eq!(t.cluster_size(2), 0);
        assert_eq!(t.cluster_histogram(2).total(), 0);
    }

    #[test]
    #[should_panic(expected = "one cluster label per tuple")]
    fn wrong_label_count_panics() {
        let (data, _) = dataset_and_labels();
        ContingencyTable::build(&data, 0, &[0, 1], 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_label_panics() {
        let (data, mut labels) = dataset_and_labels();
        labels[0] = 7;
        ContingencyTable::build(&data, 0, &labels, 2);
    }

    #[test]
    #[should_panic(expected = "one cluster label per tuple")]
    fn parallel_wrong_label_count_panics() {
        let (data, _) = dataset_and_labels();
        ClusteredCounts::build_parallel(&data, &[0, 1], 2, 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn parallel_out_of_range_label_panics() {
        let (data, mut labels) = dataset_and_labels();
        labels[3] = 9;
        ClusteredCounts::build_parallel(&data, &labels, 2, 4);
    }

    #[test]
    fn clustered_counts_covers_all_attributes() {
        let (data, labels) = dataset_and_labels();
        let cc = ClusteredCounts::build(&data, &labels, 2);
        assert_eq!(cc.n_attributes(), 2);
        assert_eq!(cc.n_clusters(), 2);
        assert_eq!(cc.n_rows(), 5);
        assert_eq!(cc.cluster_sizes(), &[3, 2]);
        assert_eq!(cc.table(1).marginal_count(1), 3);
    }

    #[test]
    fn small_inputs_fall_back_toward_serial() {
        // Below one threshold of rows: any requested width collapses to 1.
        assert_eq!(effective_build_threads(0, 4), 1);
        assert_eq!(effective_build_threads(5, 1), 1);
        assert_eq!(effective_build_threads(99_999, 64), 1);
        // The bench crossover case: 250 k rows at 4 threads would give each
        // chunk 62.5 k rows (measured slower than serial); the cap grants
        // only the 2 chunks that stay above the threshold.
        assert_eq!(effective_build_threads(250_000, 4), 2);
        // Enough rows per chunk: the request is honored.
        assert_eq!(effective_build_threads(500_000, 4), 4);
        assert_eq!(effective_build_threads(1_000_000, 8), 8);
        // The cap never *raises* a small request.
        assert_eq!(effective_build_threads(1_000_000, 2), 2);
    }

    #[test]
    fn fallback_and_forced_builds_agree_with_serial() {
        let (data, labels) = dataset_and_labels();
        let serial = ClusteredCounts::build(&data, &labels, 2);
        // 5 rows << threshold: build_parallel(.., 8) takes the serial path.
        let adaptive = ClusteredCounts::build_parallel(&data, &labels, 2, 8);
        // The forced path still honors the 8 requested chunks.
        let forced = ClusteredCounts::build_parallel_forced(&data, &labels, 2, 8);
        assert_counts_identical(&serial, &adaptive, "adaptive");
        assert_counts_identical(&serial, &forced, "forced");
    }

    fn assert_counts_identical(a: &ClusteredCounts, b: &ClusteredCounts, tag: &str) {
        assert_eq!(a.n_attributes(), b.n_attributes(), "{tag}: arity");
        assert_eq!(a.n_clusters(), b.n_clusters(), "{tag}: clusters");
        assert_eq!(a.n_rows(), b.n_rows(), "{tag}: rows");
        assert_eq!(a.cluster_sizes(), b.cluster_sizes(), "{tag}: sizes");
        for at in 0..a.n_attributes() {
            let (ta, tb) = (a.table(at), b.table(at));
            assert_eq!(ta.flat(), tb.flat(), "{tag}: attr {at} flat counts");
            assert_eq!(ta.marginal(), tb.marginal(), "{tag}: attr {at} marginal");
            assert_eq!(
                ta.cluster_sizes(),
                tb.cluster_sizes(),
                "{tag}: attr {at} sizes"
            );
            assert_eq!(ta.total(), tb.total(), "{tag}: attr {at} total");
        }
    }

    /// Seeded-random equivalence sweep (the proptest twin lives in
    /// `tests/properties.rs`): random shapes including empty clusters and
    /// chunks of a single row, across `threads ∈ {1, 2, 7}`.
    #[test]
    fn parallel_build_is_bit_identical_to_serial() {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        for case in 0..25 {
            let arity = rng.gen_range(1..=5usize);
            let n_clusters = rng.gen_range(1..=6usize);
            let n_rows = rng.gen_range(0..=40usize);
            let schema = Schema::new(
                (0..arity)
                    .map(|a| {
                        let dom = rng.gen_range(1..=7usize);
                        Attribute::new(format!("a{a}"), Domain::indexed(dom)).unwrap()
                    })
                    .collect(),
            )
            .unwrap();
            let rows: Vec<Vec<u32>> = (0..n_rows)
                .map(|_| {
                    (0..arity)
                        .map(|a| {
                            let dom = schema.attribute(a).domain.size() as u32;
                            rng.gen_range(0..dom)
                        })
                        .collect()
                })
                .collect();
            let data = Dataset::from_rows(schema, &rows).unwrap();
            // Bias labels so some clusters stay empty in some cases.
            let labels: Vec<usize> = (0..n_rows)
                .map(|_| rng.gen_range(0..n_clusters.div_ceil(2).max(1)))
                .collect();
            let serial = ClusteredCounts::build(&data, &labels, n_clusters);
            for threads in [1usize, 2, 7, 64] {
                let par = ClusteredCounts::build_parallel(&data, &labels, n_clusters, threads);
                assert_counts_identical(&serial, &par, &format!("case {case}, threads {threads}"));
            }
        }
    }
}
