//! Plain-text schema serialization.
//!
//! CSV files carry value labels but not domains; a schema sidecar file makes
//! a dataset self-describing. The format is one attribute per line:
//!
//! ```text
//! age: [0,10) | [10,20) | [20,30)
//! gender: Female | Male
//! ```
//!
//! Separators inside labels are escaped (`\|`, `\\`, `\n` → `\n`).

use crate::error::DataError;
use crate::schema::{Attribute, Domain, Schema};
use std::io::{BufRead, Write};

fn escape(label: &str) -> String {
    label
        .replace('\\', "\\\\")
        .replace('|', "\\|")
        .replace('\n', "\\n")
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Splits on unescaped `|` separators.
fn split_labels(s: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => {
                cur.push('\\');
                if let Some(next) = chars.next() {
                    cur.push(next);
                }
            }
            '|' => parts.push(std::mem::take(&mut cur)),
            other => cur.push(other),
        }
    }
    parts.push(cur);
    parts.iter().map(|p| unescape(p.trim())).collect()
}

/// Writes `schema` in the sidecar text format.
pub fn write_schema<W: Write>(schema: &Schema, w: &mut W) -> std::io::Result<()> {
    for attr in schema.attributes() {
        let labels: Vec<String> = attr.domain.iter().map(|(_, l)| escape(l)).collect();
        writeln!(w, "{}: {}", escape(&attr.name), labels.join(" | "))?;
    }
    Ok(())
}

/// Reads a schema from the sidecar text format.
pub fn read_schema<R: BufRead>(r: R) -> Result<Schema, DataError> {
    let mut attributes = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line.map_err(|e| DataError::Csv {
            line: i + 1,
            message: e.to_string(),
        })?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, rest) = line.split_once(':').ok_or_else(|| DataError::Csv {
            line: i + 1,
            message: "expected 'name: label | label | …'".into(),
        })?;
        let labels = split_labels(rest);
        if labels.is_empty() || labels.iter().all(String::is_empty) {
            return Err(DataError::EmptyDomain(name.trim().to_string()));
        }
        attributes.push(Attribute::new(
            unescape(name.trim()),
            Domain::categorical(labels),
        )?);
    }
    Schema::new(attributes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::new("age", Domain::categorical(["[0,10)", "[10,20)"])).unwrap(),
            Attribute::new(
                "diag",
                Domain::categorical(["Circulatory", "A|B weird", "back\\slash"]),
            )
            .unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn roundtrip_preserves_schema() {
        let s = schema();
        let mut buf = Vec::new();
        write_schema(&s, &mut buf).unwrap();
        let back = read_schema(buf.as_slice()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn escaped_separators_roundtrip() {
        let s = schema();
        let mut buf = Vec::new();
        write_schema(&s, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("A\\|B weird"));
        let back = read_schema(text.as_bytes()).unwrap();
        assert_eq!(back.attribute(1).domain.label(1), Some("A|B weird"));
        assert_eq!(back.attribute(1).domain.label(2), Some("back\\slash"));
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# comment\n\nx: a | b\n";
        let s = read_schema(text.as_bytes()).unwrap();
        assert_eq!(s.arity(), 1);
        assert_eq!(s.attribute(0).domain.size(), 2);
    }

    #[test]
    fn malformed_lines_rejected() {
        assert!(read_schema("no colon here\n".as_bytes()).is_err());
        assert!(read_schema("x:\n".as_bytes()).is_err());
    }

    #[test]
    fn duplicate_attributes_rejected() {
        assert!(read_schema("x: a | b\nx: c | d\n".as_bytes()).is_err());
    }
}
