//! # dpx-data — tabular data substrate for DPClustX
//!
//! DPClustX (the paper) assumes a single-table relational model where every
//! attribute has a **discrete, finite, data-independent domain** (§2, "Data").
//! This crate provides that model from scratch:
//!
//! * [`schema`] — attribute domains (named categorical values or numeric bins),
//!   attributes, and table schemas. Domains are data-independent by
//!   construction, which is what lets DP histograms span the full domain.
//! * [`dataset`] — a columnar dataset of domain-coded values with projections
//!   (`π_A(D)`), per-value counts (`cnt_{A=a}(D)`), and active domains.
//! * [`histogram`] — exact histograms `h_A(D)` with total-variation and
//!   Jensen–Shannon distances, normalization, and vector arithmetic.
//! * [`contingency`] — one-pass (cluster × value) count tables per attribute;
//!   the workhorse that lets every quality function in `dpclustx` be evaluated
//!   from counts without re-scanning the data.
//! * [`binning`] — equal-width and quantile discretization of raw numeric
//!   columns into interval domains (the paper bins Diabetes / Stack Overflow
//!   attributes for interpretable histograms).
//! * [`stats`] — χ², Cramér's V (used by the correlation-robustness
//!   experiment), and entropy.
//! * [`sample`] — row sampling and the per-cluster `η`-fraction sampling used
//!   by Figure 8b.
//! * [`csv`] — minimal CSV import/export of coded datasets.
//! * [`synth`] — synthetic generators standing in for the paper's three real
//!   datasets (US Census PUMS 1990, Diabetes 130-US, Stack Overflow 2018),
//!   built on a latent-group mixture so that clusters genuinely exist and some
//!   attributes genuinely explain them. See DESIGN.md, "Substitutions".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binning;
pub mod contingency;
pub mod csv;
pub mod dataset;
pub mod error;
pub mod filter;
pub mod fingerprint;
pub mod histogram;
pub mod product;
pub mod sample;
pub mod schema;
pub mod schema_io;
pub mod stats;
pub mod synth;

pub use contingency::{ClusteredCounts, ContingencyTable};
pub use dataset::Dataset;
pub use error::DataError;
pub use fingerprint::{chain_fingerprint, hash_labels, Fnv1a};
pub use histogram::Histogram;
pub use schema::{Attribute, Domain, Schema};
