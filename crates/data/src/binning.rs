//! Discretization of raw numeric columns into interval domains.
//!
//! The paper bins numeric and large-domain attributes "to ensure interpretable
//! histograms" (§6.1, following its refs [FEDEX, TabEE]); domain sizes after
//! binning range from 2 to 39. This module provides the two standard
//! strategies — equal-width and quantile (equal-frequency) — and produces both
//! the coded column and the matching interval [`Domain`].

use crate::schema::Domain;

/// A binning strategy for a numeric column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinStrategy {
    /// `n` equal-width intervals spanning `[min, max]` of the data.
    EqualWidth(usize),
    /// `n` quantile bins with (approximately) equal occupancy.
    Quantile(usize),
}

/// Result of binning: coded values plus the interval domain describing them.
#[derive(Debug, Clone)]
pub struct Binned {
    /// One code per input value, each `< domain.size()`.
    pub codes: Vec<u32>,
    /// The interval domain (bin edges rendered as labels).
    pub domain: Domain,
    /// Bin edges: `edges[i]..edges[i+1]` is bin `i` (last bin right-closed).
    pub edges: Vec<f64>,
}

/// Bins a numeric column with the chosen strategy.
///
/// Empty input yields a single catch-all bin and no codes. Non-finite values
/// are clamped into the closest bin.
///
/// # Panics
/// Panics if the strategy requests zero bins.
pub fn bin_numeric(values: &[f64], strategy: BinStrategy) -> Binned {
    let n_bins = match strategy {
        BinStrategy::EqualWidth(n) | BinStrategy::Quantile(n) => n,
    };
    assert!(n_bins > 0, "cannot bin into 0 bins");
    if values.is_empty() {
        return Binned {
            codes: Vec::new(),
            domain: Domain::categorical(["[0,0]"]),
            edges: vec![0.0, 0.0],
        };
    }
    let edges = match strategy {
        BinStrategy::EqualWidth(n) => equal_width_edges(values, n),
        BinStrategy::Quantile(n) => quantile_edges(values, n),
    };
    let codes = values.iter().map(|&v| code_for(v, &edges)).collect();
    let labels: Vec<String> = (0..edges.len() - 1)
        .map(|i| {
            if i + 2 == edges.len() {
                format!("[{:.6},{:.6}]", edges[i], edges[i + 1])
            } else {
                format!("[{:.6},{:.6})", edges[i], edges[i + 1])
            }
        })
        .collect();
    Binned {
        codes,
        domain: Domain::categorical(labels),
        edges,
    }
}

fn equal_width_edges(values: &[f64], n: usize) -> Vec<f64> {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &v in values {
        if v.is_finite() {
            min = min.min(v);
            max = max.max(v);
        }
    }
    if !min.is_finite() || !max.is_finite() {
        // All values non-finite: a degenerate single-interval layout.
        min = 0.0;
        max = 0.0;
    }
    if min == max {
        // Degenerate: widen artificially so every value lands in bin 0.
        max = min + 1.0;
    }
    let width = (max - min) / n as f64;
    (0..=n).map(|i| min + i as f64 * width).collect()
}

fn quantile_edges(values: &[f64], n: usize) -> Vec<f64> {
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if sorted.is_empty() {
        return vec![0.0, 1.0];
    }
    sorted.sort_by(f64::total_cmp);
    let mut edges = Vec::with_capacity(n + 1);
    edges.push(sorted[0]);
    for i in 1..n {
        let idx = (i * sorted.len()) / n;
        let e = sorted[idx.min(sorted.len() - 1)];
        // Keep edges strictly increasing; collapse ties.
        if e > *edges.last().expect("edges non-empty") {
            edges.push(e);
        }
    }
    let last = sorted[sorted.len() - 1];
    if last > *edges.last().expect("edges non-empty") {
        edges.push(last);
    } else {
        edges.push(edges.last().expect("edges non-empty") + 1.0);
    }
    edges
}

fn code_for(v: f64, edges: &[f64]) -> u32 {
    let n_bins = edges.len() - 1;
    if !v.is_finite() {
        return if v == f64::NEG_INFINITY {
            0
        } else {
            (n_bins - 1) as u32
        };
    }
    if v <= edges[0] {
        return 0;
    }
    if v >= edges[n_bins] {
        return (n_bins - 1) as u32;
    }
    // Binary search for the bin whose [lo, hi) contains v.
    let mut lo = 0usize;
    let mut hi = n_bins;
    while lo + 1 < hi {
        let mid = (lo + hi) / 2;
        if v >= edges[mid] {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_width_assigns_expected_bins() {
        let values = [0.0, 5.0, 10.0, 95.0, 100.0];
        let b = bin_numeric(&values, BinStrategy::EqualWidth(10));
        assert_eq!(b.domain.size(), 10);
        assert_eq!(b.codes[0], 0);
        assert_eq!(b.codes[1], 0);
        assert_eq!(b.codes[2], 1);
        assert_eq!(b.codes[3], 9);
        assert_eq!(b.codes[4], 9, "max value lands in the last bin");
    }

    #[test]
    fn all_codes_in_domain() {
        let values: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.37).sin() * 50.0).collect();
        for strat in [BinStrategy::EqualWidth(8), BinStrategy::Quantile(8)] {
            let b = bin_numeric(&values, strat);
            assert!(b.codes.iter().all(|&c| (c as usize) < b.domain.size()));
            assert_eq!(b.codes.len(), values.len());
        }
    }

    #[test]
    fn quantile_bins_are_balanced() {
        let values: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let b = bin_numeric(&values, BinStrategy::Quantile(4));
        let mut counts = vec![0usize; b.domain.size()];
        for &c in &b.codes {
            counts[c as usize] += 1;
        }
        for &c in &counts {
            assert!(
                (c as f64 - 2500.0).abs() < 260.0,
                "quantile bin occupancy {c} too skewed"
            );
        }
    }

    #[test]
    fn quantile_handles_heavy_ties() {
        // 90% of the data is the single value 5; tied edges must collapse.
        let mut values = vec![5.0; 900];
        values.extend((0..100).map(|i| i as f64 / 10.0));
        let b = bin_numeric(&values, BinStrategy::Quantile(10));
        assert!(b.domain.size() >= 1);
        assert!(b.codes.iter().all(|&c| (c as usize) < b.domain.size()));
    }

    #[test]
    fn constant_column_gets_single_usable_bin() {
        let values = vec![7.0; 50];
        let b = bin_numeric(&values, BinStrategy::EqualWidth(5));
        assert!(b.codes.iter().all(|&c| c == 0));
    }

    #[test]
    fn empty_input_is_safe() {
        let b = bin_numeric(&[], BinStrategy::Quantile(3));
        assert!(b.codes.is_empty());
        assert_eq!(b.domain.size(), 1);
    }

    #[test]
    fn out_of_range_and_nonfinite_values_clamp() {
        let values = [0.0, 1.0, 2.0];
        let b = bin_numeric(&values, BinStrategy::EqualWidth(2));
        assert_eq!(code_for(-100.0, &b.edges), 0);
        assert_eq!(code_for(100.0, &b.edges), 1);
        assert_eq!(code_for(f64::NEG_INFINITY, &b.edges), 0);
        assert_eq!(code_for(f64::INFINITY, &b.edges), 1);
    }

    #[test]
    #[should_panic(expected = "0 bins")]
    fn zero_bins_panics() {
        bin_numeric(&[1.0], BinStrategy::EqualWidth(0));
    }
}
