//! Error type for the data substrate.

use std::fmt;

/// Errors raised while building or manipulating datasets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A row had a different arity than the schema.
    ArityMismatch {
        /// Expected number of attributes.
        expected: usize,
        /// Number of values in the offending row.
        got: usize,
    },
    /// A value code was outside its attribute's domain.
    ValueOutOfDomain {
        /// Attribute name.
        attribute: String,
        /// Offending code.
        code: u32,
        /// Domain size of the attribute.
        domain_size: usize,
    },
    /// An attribute name was not found in the schema.
    UnknownAttribute(String),
    /// A domain was constructed with fewer than one value.
    EmptyDomain(String),
    /// Two datasets or histograms with incompatible schemas/domains were combined.
    SchemaMismatch(String),
    /// CSV input was malformed.
    Csv {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "row has {got} values but schema has {expected} attributes"
                )
            }
            DataError::ValueOutOfDomain {
                attribute,
                code,
                domain_size,
            } => write!(
                f,
                "value code {code} out of domain for attribute '{attribute}' (size {domain_size})"
            ),
            DataError::UnknownAttribute(name) => write!(f, "unknown attribute '{name}'"),
            DataError::EmptyDomain(name) => {
                write!(
                    f,
                    "domain of attribute '{name}' must have at least one value"
                )
            }
            DataError::SchemaMismatch(msg) => write!(f, "schema mismatch: {msg}"),
            DataError::Csv { line, message } => write!(f, "CSV error at line {line}: {message}"),
        }
    }
}

impl std::error::Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_details() {
        let e = DataError::ValueOutOfDomain {
            attribute: "age".into(),
            code: 99,
            domain_size: 8,
        };
        let s = e.to_string();
        assert!(s.contains("age") && s.contains("99") && s.contains('8'));
    }
}
