//! Conjunctive predicates over coded tuples.
//!
//! The building block for ad-hoc counting queries in interactive sessions
//! (PINQ-style "how many tuples satisfy `age = [60,70) AND diag_1 =
//! Circulatory`?"). A [`Filter`] is a conjunction of `attribute = value`
//! clauses; counting matches has sensitivity 1, so a session can release it
//! with any 1-sensitive mechanism.

use crate::dataset::Dataset;
use crate::error::DataError;
use crate::schema::Schema;

/// A conjunction of equality clauses `attribute = value` (coded).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Filter {
    clauses: Vec<(usize, u32)>,
}

impl Filter {
    /// The empty filter (matches every tuple).
    pub fn all() -> Self {
        Filter::default()
    }

    /// Adds a clause by attribute index and value code, validating both
    /// against the schema.
    pub fn and(mut self, schema: &Schema, attr: usize, value: u32) -> Result<Self, DataError> {
        if attr >= schema.arity() {
            return Err(DataError::UnknownAttribute(format!("#{attr}")));
        }
        let dom = &schema.attribute(attr).domain;
        if !dom.contains(value) {
            return Err(DataError::ValueOutOfDomain {
                attribute: schema.attribute(attr).name.clone(),
                code: value,
                domain_size: dom.size(),
            });
        }
        self.clauses.push((attr, value));
        Ok(self)
    }

    /// Adds a clause by attribute name and value label.
    pub fn and_named(self, schema: &Schema, attr: &str, label: &str) -> Result<Self, DataError> {
        let idx = schema.index_of(attr)?;
        let code = schema
            .attribute(idx)
            .domain
            .code_of(label)
            .ok_or_else(|| DataError::UnknownAttribute(format!("{attr}={label}")))?;
        self.and(schema, idx, code)
    }

    /// Number of clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// Whether the filter has no clauses (matches everything).
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Whether a coded row satisfies every clause.
    pub fn matches(&self, row: &[u32]) -> bool {
        self.clauses.iter().all(|&(a, v)| row[a] == v)
    }

    /// Counts matching tuples in `data` (columnar evaluation; no row
    /// materialization). This query has sensitivity 1 under add/remove-one
    /// neighbors.
    pub fn count(&self, data: &Dataset) -> u64 {
        if self.clauses.is_empty() {
            return data.n_rows() as u64;
        }
        // Evaluate clause-by-clause over columns, short-circuiting a bitmask.
        let mut keep: Vec<bool> = vec![true; data.n_rows()];
        for &(a, v) in &self.clauses {
            for (slot, &x) in keep.iter_mut().zip(data.column(a)) {
                *slot = *slot && x == v;
            }
        }
        keep.iter().filter(|&&k| k).count() as u64
    }

    /// Row indices of matching tuples.
    pub fn select(&self, data: &Dataset) -> Vec<usize> {
        (0..data.n_rows())
            .filter(|&r| self.clauses.iter().all(|&(a, v)| data.column(a)[r] == v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Domain};

    fn world() -> (Schema, Dataset) {
        let schema = Schema::new(vec![
            Attribute::new("age", Domain::categorical(["young", "old"])).unwrap(),
            Attribute::new("diag", Domain::categorical(["a", "b", "c"])).unwrap(),
        ])
        .unwrap();
        let rows = vec![vec![0, 0], vec![0, 1], vec![1, 1], vec![1, 2], vec![0, 1]];
        let data = Dataset::from_rows(schema.clone(), &rows).unwrap();
        (schema, data)
    }

    #[test]
    fn empty_filter_counts_everything() {
        let (_, data) = world();
        assert_eq!(Filter::all().count(&data), 5);
        assert!(Filter::all().is_empty());
    }

    #[test]
    fn single_clause_counts() {
        let (schema, data) = world();
        let f = Filter::all().and(&schema, 0, 0).unwrap();
        assert_eq!(f.count(&data), 3);
        assert_eq!(f.select(&data), vec![0, 1, 4]);
    }

    #[test]
    fn conjunction_counts() {
        let (schema, data) = world();
        let f = Filter::all()
            .and_named(&schema, "age", "young")
            .unwrap()
            .and_named(&schema, "diag", "b")
            .unwrap();
        assert_eq!(f.len(), 2);
        assert_eq!(f.count(&data), 2);
        assert!(f.matches(&[0, 1]));
        assert!(!f.matches(&[1, 1]));
    }

    #[test]
    fn contradictory_clauses_count_zero() {
        let (schema, data) = world();
        let f = Filter::all()
            .and(&schema, 0, 0)
            .unwrap()
            .and(&schema, 0, 1)
            .unwrap();
        assert_eq!(f.count(&data), 0);
    }

    #[test]
    fn invalid_clauses_rejected() {
        let (schema, _) = world();
        assert!(Filter::all().and(&schema, 9, 0).is_err());
        assert!(Filter::all().and(&schema, 0, 9).is_err());
        assert!(Filter::all().and_named(&schema, "age", "ancient").is_err());
        assert!(Filter::all().and_named(&schema, "nope", "a").is_err());
    }

    #[test]
    fn count_matches_select_len() {
        let (schema, data) = world();
        for a in 0..2usize {
            for v in 0..schema.attribute(a).domain.size() as u32 {
                let f = Filter::all().and(&schema, a, v).unwrap();
                assert_eq!(f.count(&data) as usize, f.select(&data).len());
            }
        }
    }
}
