//! Cartesian-product attributes for two-dimensional histograms.
//!
//! The paper's future-work discussion (§8) proposes extending DPClustX to
//! higher-dimensional histograms "by considering the Cartesian product of the
//! domains". This module provides exactly that composition: two coded columns
//! merge into one column over the product domain `dom(A) × dom(B)`, which is
//! still discrete, finite, and data-independent — so every DP histogram and
//! quality-function result applies unchanged (the product is just another
//! attribute). The caveat the paper raises is real and observable here:
//! product domains are large, so per-cell counts shrink and DP noise hurts
//! more.

use crate::dataset::Dataset;
use crate::error::DataError;
use crate::schema::{Attribute, Domain};

/// A composed product attribute: the coded column plus its product domain.
#[derive(Debug, Clone)]
pub struct ProductColumn {
    /// Combined attribute (named `"a×b"`) over the product domain.
    pub attribute: Attribute,
    /// Product codes: `code = code_a · |dom(B)| + code_b`.
    pub codes: Vec<u32>,
    /// Domain size of the second attribute (for decoding).
    pub dom_b: usize,
}

impl ProductColumn {
    /// Decodes a product code back into `(code_a, code_b)`.
    #[inline]
    pub fn decode(&self, code: u32) -> (u32, u32) {
        (code / self.dom_b as u32, code % self.dom_b as u32)
    }
}

/// Composes attributes `a` and `b` of `data` into a product column.
///
/// The product domain's labels are `"la×lb"` in row-major (`a`-major) order.
pub fn product_column(data: &Dataset, a: usize, b: usize) -> Result<ProductColumn, DataError> {
    let schema = data.schema();
    if a >= schema.arity() || b >= schema.arity() {
        return Err(DataError::UnknownAttribute(format!(
            "attribute index {} out of range",
            a.max(b)
        )));
    }
    let attr_a = schema.attribute(a);
    let attr_b = schema.attribute(b);
    let dom_a = attr_a.domain.size();
    let dom_b = attr_b.domain.size();
    let labels: Vec<String> = (0..dom_a)
        .flat_map(|va| {
            let la = attr_a
                .domain
                .label(va as u32)
                .expect("va < dom_a")
                .to_string();
            let domain_b = &attr_b.domain;
            (0..dom_b)
                .map(move |vb| format!("{la}×{}", domain_b.label(vb as u32).expect("vb < dom_b")))
        })
        .collect();
    let codes: Vec<u32> = data
        .column(a)
        .iter()
        .zip(data.column(b))
        .map(|(&va, &vb)| va * dom_b as u32 + vb)
        .collect();
    let attribute = Attribute::new(
        format!("{}×{}", attr_a.name, attr_b.name),
        Domain::categorical(labels),
    )?;
    Ok(ProductColumn {
        attribute,
        codes,
        dom_b,
    })
}

/// Builds a dataset whose attributes are the given products of `data`'s
/// attributes — ready to feed the standard DPClustX pipeline for 2-D
/// explanations.
pub fn product_dataset(
    data: &Dataset,
    pairs: &[(usize, usize)],
) -> Result<(Dataset, Vec<ProductColumn>), DataError> {
    if pairs.is_empty() {
        return Err(DataError::SchemaMismatch(
            "need at least one attribute pair".into(),
        ));
    }
    let products: Vec<ProductColumn> = pairs
        .iter()
        .map(|&(a, b)| product_column(data, a, b))
        .collect::<Result<_, _>>()?;
    let schema =
        crate::schema::Schema::new(products.iter().map(|p| p.attribute.clone()).collect())?;
    let columns = products.iter().map(|p| p.codes.clone()).collect();
    let dataset = Dataset::from_columns(schema, columns)?;
    Ok((dataset, products))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn dataset() -> Dataset {
        let schema = Schema::new(vec![
            Attribute::new("x", Domain::categorical(["x0", "x1"])).unwrap(),
            Attribute::new("y", Domain::categorical(["y0", "y1", "y2"])).unwrap(),
        ])
        .unwrap();
        Dataset::from_rows(schema, &[vec![0, 0], vec![0, 2], vec![1, 1], vec![1, 2]]).unwrap()
    }

    #[test]
    fn product_codes_and_labels() {
        let data = dataset();
        let p = product_column(&data, 0, 1).unwrap();
        assert_eq!(p.attribute.name, "x×y");
        assert_eq!(p.attribute.domain.size(), 6);
        assert_eq!(p.codes, vec![0, 2, 4, 5]);
        assert_eq!(p.attribute.domain.label(4), Some("x1×y1"));
        assert_eq!(p.decode(4), (1, 1));
        assert_eq!(p.decode(2), (0, 2));
    }

    #[test]
    fn product_dataset_feeds_standard_machinery() {
        let data = dataset();
        let (prod, cols) = product_dataset(&data, &[(0, 1), (1, 0)]).unwrap();
        assert_eq!(prod.schema().arity(), 2);
        assert_eq!(prod.n_rows(), 4);
        assert_eq!(prod.schema().attribute(0).name, "x×y");
        assert_eq!(prod.schema().attribute(1).name, "y×x");
        assert_eq!(cols[1].decode(prod.column(1)[2]), (1, 1));
        // Histogram over the product domain counts joint occurrences.
        let h = prod.histogram(0);
        assert_eq!(h.count(0), 1); // (x0, y0)
        assert_eq!(h.count(2), 1); // (x0, y2)
        assert_eq!(h.count(1), 0); // (x0, y1) unseen
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn invalid_indices_rejected() {
        let data = dataset();
        assert!(product_column(&data, 0, 7).is_err());
        assert!(product_dataset(&data, &[]).is_err());
    }

    #[test]
    fn self_product_is_diagonal() {
        let data = dataset();
        let p = product_column(&data, 0, 0).unwrap();
        // Codes land on the diagonal of the 2×2 product.
        assert!(p.codes.iter().all(|&c| {
            let (a, b) = p.decode(c);
            a == b
        }));
    }
}
