//! Columnar datasets of domain-coded values.
//!
//! A [`Dataset`] is a bag of tuples over a [`Schema`] (§2 of the paper),
//! stored column-major: quality functions and histogram construction only ever
//! touch one or two columns at a time, so the columnar layout keeps those
//! scans cache-friendly (per the databases performance guidance) and makes
//! projection `π_A(D)` a zero-copy slice borrow.

use crate::error::DataError;
use crate::fingerprint::Fnv1a;
use crate::histogram::Histogram;
use crate::schema::Schema;

/// A dataset (bag of tuples) over a fixed schema, stored column-major.
#[derive(Debug, Clone)]
pub struct Dataset {
    schema: Schema,
    /// `columns[a][row]` is the code of attribute `a` in tuple `row`.
    columns: Vec<Vec<u32>>,
    n_rows: usize,
}

impl Dataset {
    /// Creates an empty dataset over `schema`.
    pub fn empty(schema: Schema) -> Self {
        let columns = vec![Vec::new(); schema.arity()];
        Dataset {
            schema,
            columns,
            n_rows: 0,
        }
    }

    /// Creates a dataset from row-major coded tuples, validating every value
    /// against its domain.
    pub fn from_rows(schema: Schema, rows: &[Vec<u32>]) -> Result<Self, DataError> {
        let mut ds = Dataset::empty(schema);
        ds.reserve(rows.len());
        for row in rows {
            ds.push_row(row)?;
        }
        Ok(ds)
    }

    /// Creates a dataset directly from columns. Validates lengths and domains.
    pub fn from_columns(schema: Schema, columns: Vec<Vec<u32>>) -> Result<Self, DataError> {
        if columns.len() != schema.arity() {
            return Err(DataError::ArityMismatch {
                expected: schema.arity(),
                got: columns.len(),
            });
        }
        let n_rows = columns.first().map_or(0, Vec::len);
        for (a, col) in columns.iter().enumerate() {
            if col.len() != n_rows {
                return Err(DataError::SchemaMismatch(format!(
                    "column '{}' has {} rows, expected {}",
                    schema.attribute(a).name,
                    col.len(),
                    n_rows
                )));
            }
            let dom = &schema.attribute(a).domain;
            if let Some(&bad) = col.iter().find(|&&v| !dom.contains(v)) {
                return Err(DataError::ValueOutOfDomain {
                    attribute: schema.attribute(a).name.clone(),
                    code: bad,
                    domain_size: dom.size(),
                });
            }
        }
        Ok(Dataset {
            schema,
            columns,
            n_rows,
        })
    }

    /// Pre-allocates space for `additional` more rows.
    pub fn reserve(&mut self, additional: usize) {
        for col in &mut self.columns {
            col.reserve(additional);
        }
    }

    /// Appends one tuple, validating arity and domains.
    pub fn push_row(&mut self, row: &[u32]) -> Result<(), DataError> {
        if row.len() != self.schema.arity() {
            return Err(DataError::ArityMismatch {
                expected: self.schema.arity(),
                got: row.len(),
            });
        }
        for (a, &v) in row.iter().enumerate() {
            let dom = &self.schema.attribute(a).domain;
            if !dom.contains(v) {
                return Err(DataError::ValueOutOfDomain {
                    attribute: self.schema.attribute(a).name.clone(),
                    code: v,
                    domain_size: dom.size(),
                });
            }
        }
        for (col, &v) in self.columns.iter_mut().zip(row) {
            col.push(v);
        }
        self.n_rows += 1;
        Ok(())
    }

    /// The schema of this dataset.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of tuples `|D|`.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Whether the dataset has no tuples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// A stable 64-bit content fingerprint over the schema (attribute names,
    /// domain labels) and every cell, in column order. Two datasets share a
    /// fingerprint iff they are equal up to FNV-1a collisions, which makes it
    /// suitable as a cache key (e.g. the explanation engine's counts cache)
    /// but not as a cryptographic commitment. Cost is one full scan, so
    /// callers should compute it once and reuse it.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_usize(self.schema.arity());
        for attr in self.schema.attributes() {
            h.write_str(&attr.name);
            h.write_usize(attr.domain.size());
            for (_, label) in attr.domain.iter() {
                h.write_str(label);
            }
        }
        h.write_usize(self.n_rows);
        for col in &self.columns {
            for &v in col {
                h.write_u32(v);
            }
        }
        h.finish()
    }

    /// The projection `π_A(D)` of the dataset onto attribute index `a`, as a
    /// borrowed column slice.
    #[inline]
    pub fn column(&self, a: usize) -> &[u32] {
        &self.columns[a]
    }

    /// Projection by attribute name.
    pub fn column_by_name(&self, name: &str) -> Result<&[u32], DataError> {
        Ok(self.column(self.schema.index_of(name)?))
    }

    /// Reconstructs tuple `row` (row-major view); mainly for tests and I/O.
    pub fn row(&self, row: usize) -> Vec<u32> {
        self.columns.iter().map(|c| c[row]).collect()
    }

    /// `cnt_{A=a}(D)`: occurrences of code `value` in attribute `a`'s column.
    pub fn count(&self, a: usize, value: u32) -> u64 {
        self.columns[a].iter().filter(|&&v| v == value).count() as u64
    }

    /// The exact histogram `h_A(D)` over the full domain of attribute `a`.
    pub fn histogram(&self, a: usize) -> Histogram {
        Histogram::from_codes(self.column(a), self.schema.attribute(a).domain.size())
    }

    /// The active domain `dom_D(A)`: codes appearing at least once.
    pub fn active_domain(&self, a: usize) -> Vec<u32> {
        let h = self.histogram(a);
        (0..self.schema.attribute(a).domain.size() as u32)
            .filter(|&v| h.count(v) > 0)
            .collect()
    }

    /// Restricts the dataset to the given row indices (a sampled or filtered
    /// sub-bag). Indices may repeat (bags allow duplicates).
    pub fn select_rows(&self, rows: &[usize]) -> Dataset {
        let columns = self
            .columns
            .iter()
            .map(|col| rows.iter().map(|&r| col[r]).collect())
            .collect();
        Dataset {
            schema: self.schema.clone(),
            columns,
            n_rows: rows.len(),
        }
    }

    /// Projects the dataset onto a subset of attribute indices, producing a
    /// dataset over the projected schema (Fig. 9c's attribute sampling).
    pub fn select_attributes(&self, attrs: &[usize]) -> Dataset {
        let schema = self.schema.project(attrs);
        let columns = attrs.iter().map(|&a| self.columns[a].clone()).collect();
        Dataset {
            schema,
            columns,
            n_rows: self.n_rows,
        }
    }

    /// Concatenates `delta`'s rows after this dataset's rows, returning a new
    /// dataset (the registry's append path; the originals are untouched so
    /// concurrent readers of the old `Arc<Dataset>` keep a consistent
    /// snapshot). Both datasets must share an identical schema.
    pub fn concat(&self, delta: &Dataset) -> Result<Dataset, DataError> {
        if self.schema != delta.schema {
            return Err(DataError::SchemaMismatch(
                "appended rows must share the dataset's schema".to_string(),
            ));
        }
        let columns = self
            .columns
            .iter()
            .zip(&delta.columns)
            .map(|(a, b)| {
                let mut col = Vec::with_capacity(a.len() + b.len());
                col.extend_from_slice(a);
                col.extend_from_slice(b);
                col
            })
            .collect();
        Ok(Dataset {
            schema: self.schema.clone(),
            columns,
            n_rows: self.n_rows + delta.n_rows,
        })
    }

    /// Appends extra columns (e.g. correlated twins), returning a new dataset.
    pub fn with_extra_columns(
        &self,
        extra: Vec<(crate::schema::Attribute, Vec<u32>)>,
    ) -> Result<Dataset, DataError> {
        let (attrs, cols): (Vec<_>, Vec<_>) = extra.into_iter().unzip();
        for (attr, col) in attrs.iter().zip(&cols) {
            if col.len() != self.n_rows {
                return Err(DataError::SchemaMismatch(format!(
                    "extra column '{}' has {} rows, expected {}",
                    attr.name,
                    col.len(),
                    self.n_rows
                )));
            }
            if let Some(&bad) = col.iter().find(|&&v| !attr.domain.contains(v)) {
                return Err(DataError::ValueOutOfDomain {
                    attribute: attr.name.clone(),
                    code: bad,
                    domain_size: attr.domain.size(),
                });
            }
        }
        let schema = self.schema.extend(attrs)?;
        let mut columns = self.columns.clone();
        columns.extend(cols);
        Ok(Dataset {
            schema,
            columns,
            n_rows: self.n_rows,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Domain};

    fn small_schema() -> Schema {
        Schema::new(vec![
            Attribute::new("a", Domain::indexed(3)).unwrap(),
            Attribute::new("b", Domain::indexed(2)).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn push_and_read_back_rows() {
        let mut ds = Dataset::empty(small_schema());
        ds.push_row(&[0, 1]).unwrap();
        ds.push_row(&[2, 0]).unwrap();
        assert_eq!(ds.n_rows(), 2);
        assert_eq!(ds.row(0), vec![0, 1]);
        assert_eq!(ds.row(1), vec![2, 0]);
        assert_eq!(ds.column(0), &[0, 2]);
    }

    #[test]
    fn push_validates_arity_and_domain() {
        let mut ds = Dataset::empty(small_schema());
        assert!(matches!(
            ds.push_row(&[0]),
            Err(DataError::ArityMismatch { .. })
        ));
        assert!(matches!(
            ds.push_row(&[3, 0]),
            Err(DataError::ValueOutOfDomain { .. })
        ));
        assert_eq!(ds.n_rows(), 0, "failed pushes must not mutate");
    }

    #[test]
    fn from_columns_validates() {
        let s = small_schema();
        assert!(Dataset::from_columns(s.clone(), vec![vec![0, 1]]).is_err());
        assert!(Dataset::from_columns(s.clone(), vec![vec![0, 1], vec![0]]).is_err());
        assert!(Dataset::from_columns(s.clone(), vec![vec![0, 9], vec![0, 1]]).is_err());
        let ok = Dataset::from_columns(s, vec![vec![0, 1], vec![0, 1]]).unwrap();
        assert_eq!(ok.n_rows(), 2);
    }

    #[test]
    fn fingerprint_tracks_schema_and_cells() {
        let ds = Dataset::from_rows(small_schema(), &[vec![0, 1], vec![2, 0]]).unwrap();
        let base = ds.fingerprint();
        let same = Dataset::from_rows(small_schema(), &[vec![0, 1], vec![2, 0]]).unwrap();
        assert_eq!(same.fingerprint(), base, "equal data → equal fingerprint");

        let cell = Dataset::from_rows(small_schema(), &[vec![0, 1], vec![2, 1]]).unwrap();
        assert_ne!(cell.fingerprint(), base, "one changed cell must show");

        let swapped = Dataset::from_rows(small_schema(), &[vec![2, 0], vec![0, 1]]).unwrap();
        assert_ne!(swapped.fingerprint(), base, "row order must show");

        let renamed = Schema::new(vec![
            Attribute::new("a", Domain::indexed(3)).unwrap(),
            Attribute::new("c", Domain::indexed(2)).unwrap(),
        ])
        .unwrap();
        let other = Dataset::from_rows(renamed, &[vec![0, 1], vec![2, 0]]).unwrap();
        assert_ne!(other.fingerprint(), base, "schema must show");
    }

    #[test]
    fn count_and_histogram_agree() {
        let ds = Dataset::from_rows(
            small_schema(),
            &[vec![0, 0], vec![0, 1], vec![1, 1], vec![0, 0]],
        )
        .unwrap();
        assert_eq!(ds.count(0, 0), 3);
        assert_eq!(ds.count(0, 2), 0);
        let h = ds.histogram(0);
        assert_eq!(h.count(0), 3);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.count(2), 0);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn active_domain_skips_unused_codes() {
        let ds = Dataset::from_rows(small_schema(), &[vec![0, 0], vec![2, 0]]).unwrap();
        assert_eq!(ds.active_domain(0), vec![0, 2]);
        assert_eq!(ds.active_domain(1), vec![0]);
    }

    #[test]
    fn select_rows_allows_duplicates() {
        let ds = Dataset::from_rows(small_schema(), &[vec![0, 0], vec![1, 1]]).unwrap();
        let sub = ds.select_rows(&[1, 1, 0]);
        assert_eq!(sub.n_rows(), 3);
        assert_eq!(sub.column(0), &[1, 1, 0]);
    }

    #[test]
    fn select_attributes_projects_schema_and_data() {
        let ds = Dataset::from_rows(small_schema(), &[vec![2, 1]]).unwrap();
        let proj = ds.select_attributes(&[1]);
        assert_eq!(proj.schema().arity(), 1);
        assert_eq!(proj.schema().attribute(0).name, "b");
        assert_eq!(proj.column(0), &[1]);
        assert_eq!(proj.n_rows(), 1);
    }

    #[test]
    fn with_extra_columns_validates_and_appends() {
        let ds = Dataset::from_rows(small_schema(), &[vec![0, 0], vec![1, 1]]).unwrap();
        let attr = Attribute::new("c", Domain::indexed(2)).unwrap();
        let out = ds
            .with_extra_columns(vec![(attr.clone(), vec![1, 0])])
            .unwrap();
        assert_eq!(out.schema().arity(), 3);
        assert_eq!(out.column_by_name("c").unwrap(), &[1, 0]);
        // wrong length rejected
        assert!(ds.with_extra_columns(vec![(attr, vec![1])]).is_err());
    }

    #[test]
    fn concat_appends_rows_and_checks_schema() {
        let a = Dataset::from_rows(small_schema(), &[vec![0, 0], vec![1, 1]]).unwrap();
        let b = Dataset::from_rows(small_schema(), &[vec![2, 0]]).unwrap();
        let out = a.concat(&b).unwrap();
        assert_eq!(out.n_rows(), 3);
        assert_eq!(out.column(0), &[0, 1, 2]);
        assert_eq!(out.row(2), vec![2, 0]);
        // Concat equals building from all rows at once — same fingerprint.
        let whole =
            Dataset::from_rows(small_schema(), &[vec![0, 0], vec![1, 1], vec![2, 0]]).unwrap();
        assert_eq!(out.fingerprint(), whole.fingerprint());
        // Schema mismatch rejected.
        let other = Schema::new(vec![Attribute::new("z", Domain::indexed(2)).unwrap()]).unwrap();
        let bad = Dataset::empty(other);
        assert!(matches!(
            a.concat(&bad),
            Err(DataError::SchemaMismatch { .. })
        ));
    }

    #[test]
    fn column_by_name_unknown_errors() {
        let ds = Dataset::empty(small_schema());
        assert!(ds.column_by_name("nope").is_err());
    }

    #[test]
    fn empty_dataset_histogram_is_all_zero() {
        let ds = Dataset::empty(small_schema());
        let h = ds.histogram(0);
        assert_eq!(h.total(), 0);
        assert_eq!(h.len(), 3);
    }
}
