//! Interactive session mode — the demonstration system's main loop.
//!
//! `dpclustx-cli session --data … --schema … --budget ε` drops the analyst
//! into a prompt where every command draws from one shared privacy budget,
//! exactly like the paper's demo: cluster privately, explain, probe
//! histograms and counts, inspect the audit trail, and get refused once the
//! budget runs dry.

use crate::args::Cli;
use crate::CliError;
use dpclustx::framework::DpClustXConfig;
use dpclustx::quality::score::Weights;
use dpclustx::session::Session;
use dpclustx::text;
use dpx_data::csv::read_csv;
use dpx_data::filter::Filter;
use dpx_data::schema_io::read_schema;
use dpx_data::Schema;
use dpx_dp::budget::Epsilon;
use std::fs::File;
use std::io::{BufRead, BufReader};

/// Help text for the interactive prompt.
pub const SESSION_HELP: &str = "\
commands (every data-touching command spends privacy budget):
  cluster <k> <eps>                    DP-k-means into k clusters
  explain <eps>                        DPClustX explanation (ε split 3 ways)
  hist <attribute> <eps>               noisy histogram of one attribute
  count <eps> <attr>=<label> [...]     noisy count of a conjunctive predicate
  budget                               spent / remaining ε
  audit                                itemized spend
  help                                 this text
  quit                                 end the session
";

/// Runs the interactive loop, reading commands from `input` and writing to
/// `out` (stdin/stdout in production; buffers in tests).
pub fn run_session<I: BufRead, W: std::io::Write>(
    cli: &Cli,
    input: I,
    out: &mut W,
) -> Result<(), CliError> {
    let schema_path = cli.required("schema")?.to_string();
    let data_path = cli.required("data")?.to_string();
    let schema = read_schema(BufReader::new(File::open(&schema_path)?))?;
    let data = read_csv(schema.clone(), BufReader::new(File::open(&data_path)?))?;
    let budget = cli.f64("budget", 1.0)?;
    let seed = cli.u64("seed", 2025)?;
    let cap =
        Epsilon::new(budget).map_err(|_| CliError::Usage("--budget must be positive".into()))?;
    let mut session = Session::new(data, cap, seed);
    session.set_stage2_kernel(cli.stage2_kernel()?);

    writeln!(
        out,
        "session over {} tuples × {} attributes, budget ε = {budget}",
        session.n_rows(),
        schema.arity()
    )?;
    writeln!(out, "{SESSION_HELP}")?;

    for line in input.lines() {
        let line = line?;
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let Some((&command, rest)) = tokens.split_first() else {
            continue;
        };
        match command {
            "quit" | "exit" => break,
            "help" => writeln!(out, "{SESSION_HELP}")?,
            "budget" => writeln!(
                out,
                "spent ε = {:.4}, remaining ε = {:.4}",
                session.spent(),
                (budget - session.spent()).max(0.0)
            )?,
            "audit" => writeln!(out, "{}", session.audit())?,
            "cluster" => match parse_cluster(rest) {
                Ok((k, eps)) => match session.cluster_dp_kmeans(k, eps) {
                    Ok(()) => writeln!(out, "clustered into {k} clusters (ε = {})", eps.get())?,
                    Err(e) => writeln!(out, "refused: {e}")?,
                },
                Err(msg) => writeln!(out, "usage: cluster <k> <eps> — {msg}")?,
            },
            "explain" => match parse_eps(rest.first()) {
                Ok(eps) => {
                    let config = DpClustXConfig {
                        k: 3,
                        eps_cand_set: eps.get() / 3.0,
                        eps_top_comb: eps.get() / 3.0,
                        eps_hist: Some(eps.get() / 3.0),
                        weights: Weights::equal(),
                        consistency: false,
                    };
                    match session.explain(config) {
                        Ok(explanation) => {
                            for e in &explanation.per_cluster {
                                writeln!(out, "cluster {} → `{}`", e.cluster, e.attribute_name)?;
                                writeln!(out, "  {}", text::describe(e))?;
                            }
                        }
                        Err(e) => writeln!(out, "refused: {e}")?,
                    }
                }
                Err(msg) => writeln!(out, "usage: explain <eps> — {msg}")?,
            },
            "hist" => match parse_hist(rest, &schema) {
                Ok((attr, eps)) => match session.noisy_histogram(attr, eps) {
                    Ok(noisy) => {
                        let dom = &schema.attribute(attr).domain;
                        for (code, label) in dom.iter() {
                            writeln!(out, "  {label:>20} {:8.0}", noisy[code as usize])?;
                        }
                    }
                    Err(e) => writeln!(out, "refused: {e}")?,
                },
                Err(msg) => writeln!(out, "usage: hist <attribute> <eps> — {msg}")?,
            },
            "count" => match parse_count(rest, &schema) {
                Ok((filter, eps)) => match session.noisy_count(&filter, eps) {
                    Ok(c) => writeln!(out, "noisy count ≈ {c:.0}")?,
                    Err(e) => writeln!(out, "refused: {e}")?,
                },
                Err(msg) => writeln!(out, "usage: count <eps> <attr>=<label> [...] — {msg}")?,
            },
            other => writeln!(out, "unknown command '{other}' (try 'help')")?,
        }
    }
    writeln!(out, "session closed. final audit:\n{}", session.audit())?;
    Ok(())
}

fn parse_eps(token: Option<&&str>) -> Result<Epsilon, String> {
    let raw = token.ok_or("missing ε")?;
    let value: f64 = raw
        .parse()
        .map_err(|_| format!("'{raw}' is not a number"))?;
    Epsilon::new(value).map_err(|e| e.to_string())
}

fn parse_cluster(rest: &[&str]) -> Result<(usize, Epsilon), String> {
    let k: usize = rest
        .first()
        .ok_or("missing k")?
        .parse()
        .map_err(|_| "k must be an integer".to_string())?;
    if k == 0 {
        return Err("k must be positive".into());
    }
    Ok((k, parse_eps(rest.get(1))?))
}

fn parse_hist(rest: &[&str], schema: &Schema) -> Result<(usize, Epsilon), String> {
    let name = rest.first().ok_or("missing attribute")?;
    let attr = schema.index_of(name).map_err(|e| e.to_string())?;
    Ok((attr, parse_eps(rest.get(1))?))
}

fn parse_count(rest: &[&str], schema: &Schema) -> Result<(Filter, Epsilon), String> {
    let eps = parse_eps(rest.first())?;
    let mut filter = Filter::all();
    for clause in &rest[1..] {
        let (attr, label) = clause
            .split_once('=')
            .ok_or_else(|| format!("clause '{clause}' is not attr=label"))?;
        filter = filter
            .and_named(schema, attr, label)
            .map_err(|e| e.to_string())?;
    }
    Ok((filter, eps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpx_data::csv::write_csv;
    use dpx_data::schema_io::write_schema;
    use dpx_data::synth;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::io::BufWriter;

    fn world() -> (String, String) {
        let dir = std::env::temp_dir().join(format!("dpclustx-repl-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let data = synth::diabetes::spec(2).generate(1_200, &mut rng).data;
        let csv = dir.join("t.csv");
        let schema = dir.join("t.schema");
        write_csv(&data, &mut BufWriter::new(File::create(&csv).unwrap())).unwrap();
        write_schema(
            data.schema(),
            &mut BufWriter::new(File::create(&schema).unwrap()),
        )
        .unwrap();
        (
            csv.to_str().unwrap().to_string(),
            schema.to_str().unwrap().to_string(),
        )
    }

    fn run(script: &str, budget: &str) -> String {
        let (csv, schema) = world();
        let cli = Cli::parse(
            [
                "session", "--data", &csv, "--schema", &schema, "--budget", budget,
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        let mut out = Vec::new();
        run_session(&cli, script.as_bytes(), &mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn scripted_session_clusters_and_explains() {
        let text = run(
            "cluster 2 0.5\nexplain 0.3\nbudget\nhist age 0.1\naudit\nquit\n",
            "1.5",
        );
        assert!(text.contains("clustered into 2 clusters"));
        assert!(text.contains("cluster 0 →"));
        assert!(text.contains("spent ε = 0.8000"));
        assert!(text.contains("[90,100)")); // age histogram labels
        assert!(text.contains("session/001/dp-kmeans"));
        assert!(text.contains("session closed"));
    }

    #[test]
    fn budget_refusals_are_graceful() {
        let text = run("cluster 2 0.5\nexplain 0.9\nbudget\nquit\n", "1.0");
        assert!(text.contains("refused: privacy budget exceeded"));
        assert!(text.contains("spent ε = 0.5000"));
    }

    #[test]
    fn count_command_with_predicate() {
        let text = run("count 0.5 gender=Female\nquit\n", "1.0");
        assert!(text.contains("noisy count ≈"));
    }

    #[test]
    fn malformed_commands_report_usage() {
        let text = run(
            "cluster\nexplain nope\nhist nothere 0.1\ncount 0.1 bad-clause\nfrobnicate\nquit\n",
            "1.0",
        );
        assert!(text.contains("usage: cluster"));
        assert!(text.contains("usage: explain"));
        assert!(text.contains("usage: hist"));
        assert!(text.contains("usage: count"));
        assert!(text.contains("unknown command 'frobnicate'"));
    }

    #[test]
    fn empty_lines_and_eof_are_fine() {
        let text = run("\n\n", "1.0");
        assert!(text.contains("session closed"));
    }
}
