//! # dpclustx-cli — the DPClustX demonstration front end
//!
//! The SIGMOD demo presents DPClustX as an interactive system: load a
//! sensitive table, pick a clustering method and a privacy budget, and read
//! the private explanation. This crate is that system as a CLI:
//!
//! ```text
//! dpclustx-cli generate --dataset diabetes --rows 20000 --out patients
//! dpclustx-cli explain  --data patients.csv --schema patients.schema \
//!                   --method dp-kmeans --clusters 3 --eps-hist 0.1
//! dpclustx-cli evaluate --data patients.csv --schema patients.schema --clusters 3
//! dpclustx-cli rank     --data patients.csv --schema patients.schema --clusters 3 --cluster 0
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod repl;

use std::fmt;

/// Top-level CLI error.
#[derive(Debug)]
pub enum CliError {
    /// Bad command-line usage; the string is a user-facing message.
    Usage(String),
    /// I/O failure.
    Io(std::io::Error),
    /// Data-layer failure (CSV/schema parsing, domain violations).
    Data(dpx_data::DataError),
    /// DP pipeline failure.
    Dp(dpx_dp::DpError),
    /// Durable ε ledger failure (corrupt file, wrong magic, failed fsync).
    Ledger(dpx_dp::LedgerError),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m}"),
            // The kind keeps NotFound vs PermissionDenied (etc.)
            // distinguishable once the error is flattened to a log line.
            CliError::Io(e) => write!(f, "io error ({:?}): {e}", e.kind()),
            CliError::Data(e) => write!(f, "data error: {e}"),
            CliError::Dp(e) => write!(f, "privacy error: {e}"),
            CliError::Ledger(e) => write!(f, "ledger error: {e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<dpx_data::DataError> for CliError {
    fn from(e: dpx_data::DataError) -> Self {
        CliError::Data(e)
    }
}

impl From<dpx_dp::DpError> for CliError {
    fn from(e: dpx_dp::DpError) -> Self {
        CliError::Dp(e)
    }
}

impl From<dpx_dp::LedgerError> for CliError {
    fn from(e: dpx_dp::LedgerError) -> Self {
        CliError::Ledger(e)
    }
}

/// The usage text printed by `dpclustx-cli help`.
pub const USAGE: &str = "\
dpclustx — differentially private explanations for clusters

USAGE:
  dpclustx-cli generate --dataset <diabetes|census|stackoverflow> [--rows N]
                    [--groups K] [--seed S] --out <prefix>
      Writes <prefix>.csv and <prefix>.schema with synthetic data.

  dpclustx-cli explain  --data <file.csv> --schema <file.schema> --clusters K
                    [--method <kmeans|dp-kmeans|kmodes|agglomerative|gmm>]
                    [--clust-eps E] [--eps-cand E] [--eps-comb E] [--eps-hist E]
                    [--k N] [--weights INT,SUF,DIV] [--seed S] [--timings]
                    [--stage2-kernel <seq|counter|counter-par[/N]>]
      Clusters the data and prints the DP explanation with a privacy audit.
      --timings additionally prints the staged-engine report: per-stage wall
      time, ε charged per ledger label, and stage metrics.
      --stage2-kernel picks the Stage-2 search: 'seq' streams Gumbel noise
      from the session RNG (default; reproduces historical seeds), 'counter'
      derives per-combination noise from a keyed counter PRF (enables exact
      pruning), 'counter-par[/N]' adds a range-partitioned parallel sweep
      with bit-identical output for any N (bare form auto-detects).

  dpclustx-cli evaluate ... (same flags as explain)
      Additionally compares against the non-private TabEE reference
      (requires raw data access; offline analysis only).

  dpclustx-cli session  --data <file.csv> --schema <file.schema> [--budget E]
                    [--stage2-kernel <seq|counter|counter-par[/N]>]
      Interactive analyst session: every command spends one shared budget.

  dpclustx-cli report   ... --report-out <file.md> [--title T]
      Writes the explanation (+ audit) as a shareable markdown report.

  dpclustx-cli serve-batch --data <file.csv> --schema <file.schema>
                    --requests <reqs.jsonl> --out <resps.jsonl>
                    [--workers N] [--budget E] [--name NAME]
                    [--ledger-dir <dir>] [--checkpoint-every N] [--resume]
                    [--deadline-ms MS] [--group-commit-max-wait-us US]
                    [--group-commit-max-batch N]
      Executes a batch of explanation requests (one JSON object per line;
      'id' required, everything else defaulted: dataset, seed, cluster_by,
      n_clusters, k, eps_cand, eps_comb, eps_hist, weights, stage2_kernel,
      consistency, deadline_ms) against the loaded dataset on an N-worker
      pool. All requests share one counts cache and one atomically-charged
      privacy accountant (--budget caps the dataset's total ε; requests that
      would breach it are rejected with nothing recorded). Responses are
      written sorted by id and are byte-identical for every --workers value.
      --ledger-dir makes accounting durable and sharded: each dataset gets
      its own write-ahead ledger (<dir>/<dataset>.wal), every grant is
      fsynced before its request runs, and a restarted serve-batch with the
      same --ledger-dir recovers each shard at its exact spend instead of
      double-charging the cap. --checkpoint-every N (requires --ledger-dir)
      compacts a shard's ledger to a single checkpoint record after every N
      grants, so recovery replays at most N records instead of the full
      history. --resume (requires --ledger-dir) additionally keeps
      already-written response lines in --out and skips re-spending for
      request ids that hold a recovered grant. The summary reports each
      shard's ledger stats (records replayed, torn bytes truncated,
      checkpoint age) alongside the ε accounting.
      --group-commit-max-wait-us US / --group-commit-max-batch N (require
      --ledger-dir; either flag opts in, the other takes its default of
      200us/64) batch concurrent grants into one fsync: the first spender to
      reach the ledger leads, waits up to US microseconds (or until N grants
      queue), appends the whole batch under a single fsync, and wakes the
      others — every request still acks only after its own grant is durable.
      --group-commit-max-batch 0 or 1 keeps the per-grant commit path.
      --deadline-ms bounds each request's wall clock (per-request
      'deadline_ms' overrides it), covering admission too: a request whose
      deadline expires before its grant commits is rejected with reason
      deadline_exceeded and spends NO ε; once the grant is durable, a later
      timeout keeps the reserved ε spent. A request line with 'op':'append'
      and 'rows':[[..],..] appends coded rows to the named dataset instead
      of explaining: it spends no ε, refreshes every served clustering's
      cached count tables incrementally (O(delta), never a rebuild), and is
      an ordering barrier — explains after it in the input observe the grown
      dataset. On --resume, append requests are always re-executed (they
      rebuild in-memory dataset state deterministically and for free).

  dpclustx-cli serve-daemon --data <file.csv> --schema <file.schema>
                    --out <resps.jsonl> [--requests <reqs.jsonl> | --socket <path>]
                    [--workers N] [--queue-capacity N] [--drain-deadline-ms MS]
                    [--metrics-out <stats.json>] [--metrics-every N]
                    [--budget E] [--name NAME] [--ledger-dir <dir>]
                    [--checkpoint-every N] [--resume] [--deadline-ms MS]
                    [--group-commit-max-wait-us US] [--group-commit-max-batch N]
      Runs the explanation service as a resident daemon: requests stream in
      over stdin (default), a JSONL file (--requests), or a Unix socket
      (--socket, one handler per connection, replies echoed per line), are
      admitted into a bounded per-tenant queue (--queue-capacity slots per
      dataset, weighted round-robin dequeue), and execute on --workers
      threads. Admission rejects *before* any ε is touched, each reject
      typed on the response stream: budget_exceeded (+eps_remaining) when
      the request's ε exceeds the shard's live headroom, deadline_exceeded
      when the deadline is infeasible behind the current queue at the
      rolling latency estimate, overloaded (+retry_after_ms backpressure
      hint) when the tenant's lane is full, draining once shutdown began.
      A shed id is NOT consumed — retrying the identical request after the
      hint is the contract. Two control ops answer on the transport only
      (never the durable stream): {'id':N,'op':'stats'} returns the rolling
      metrics snapshot (queue depth, p50/p99 latency, per-stage means, per-
      dataset ε burn, rejects by class; --metrics-out dumps the same JSON
      every --metrics-every completions), {'id':N,'op':'shutdown'} — or
      transport EOF, the SIGTERM-equivalent for this no-unsafe binary —
      closes admission and drains: queued work finishes under
      --drain-deadline-ms (unstarted work past it is shed at zero ε,
      in-flight work has its deadline capped), every shard ledger is
      checkpointed, and the exit summary reports served/shed/rejected, per-
      dataset ε, and accounting probe violations. Responses append-and-
      flush as they land and are rewritten sorted by id on a clean drain;
      a kill anywhere mid-drain recovers with --resume byte-identically
      (--resume requires --requests and --ledger-dir).

  dpclustx-cli rank     ... --cluster C
      Prints the exact (non-private!) ranked candidate attributes of one
      cluster — the paper's Figure 4 view, for debugging and demos.

  dpclustx-cli help
      Prints this text.
";
