//! `dpclustx` binary entry point.

use dpclustx_cli::args::Cli;
use dpclustx_cli::commands::run;

fn main() {
    let cli = match Cli::parse(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}\n\n{}", dpclustx_cli::USAGE);
            std::process::exit(2);
        }
    };
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    if let Err(e) = run(&cli, &mut out) {
        eprintln!("{e}");
        std::process::exit(1);
    }
}
