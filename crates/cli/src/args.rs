//! Subcommand + `--flag value` argument parsing, with bare `--flag`
//! booleans.

use crate::CliError;
use std::collections::HashMap;

/// A parsed command line: the subcommand plus its flags.
#[derive(Debug, Clone)]
pub struct Cli {
    /// The subcommand (`generate`, `explain`, `evaluate`, `rank`, `help`).
    pub command: String,
    flags: HashMap<String, String>,
}

impl Cli {
    /// Parses an iterator of arguments (excluding the program name).
    ///
    /// A flag followed by a non-flag token takes that token as its value; a
    /// flag followed by another `--flag` (or by nothing) is a bare boolean
    /// and stores `"true"` — so `explain --timings --seed 7` and
    /// `explain --seed 7 --timings` both work.
    pub fn parse<I: IntoIterator<Item = String>>(iter: I) -> Result<Cli, CliError> {
        let mut iter = iter.into_iter().peekable();
        let command = iter
            .next()
            .ok_or_else(|| CliError::Usage("missing subcommand (try 'help')".into()))?;
        let mut flags = HashMap::new();
        while let Some(arg) = iter.next() {
            let name = arg
                .strip_prefix("--")
                .ok_or_else(|| CliError::Usage(format!("expected --flag, got '{arg}'")))?;
            let value = match iter.peek() {
                Some(next) if !next.starts_with("--") => iter.next().expect("just peeked"),
                _ => "true".to_string(),
            };
            flags.insert(name.to_string(), value);
        }
        Ok(Cli { command, flags })
    }

    /// A boolean flag: `true` when present bare (`--timings`) or set to
    /// anything but `false`/`0`, `false` when absent.
    pub fn bool(&self, name: &str) -> bool {
        match self.flags.get(name) {
            None => false,
            Some(v) => v != "false" && v != "0",
        }
    }

    /// A required string flag.
    pub fn required(&self, name: &str) -> Result<&str, CliError> {
        self.flags
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| CliError::Usage(format!("missing required flag --{name}")))
    }

    /// An optional string flag with a default.
    pub fn string(&self, name: &str, default: &str) -> String {
        self.flags
            .get(name)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// A `usize` flag with a default.
    pub fn usize(&self, name: &str, default: usize) -> Result<usize, CliError> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("--{name} expects an integer, got '{v}'"))),
        }
    }

    /// A required `usize` flag.
    pub fn required_usize(&self, name: &str) -> Result<usize, CliError> {
        self.required(name)?
            .parse()
            .map_err(|_| CliError::Usage(format!("--{name} expects an integer")))
    }

    /// An `f64` flag with a default.
    pub fn f64(&self, name: &str, default: f64) -> Result<f64, CliError> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("--{name} expects a number, got '{v}'"))),
        }
    }

    /// A `u64` flag with a default (seeds).
    pub fn u64(&self, name: &str, default: u64) -> Result<u64, CliError> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("--{name} expects an integer, got '{v}'"))),
        }
    }

    /// An optional string flag (`None` when absent).
    pub fn opt_string(&self, name: &str) -> Option<String> {
        self.flags.get(name).cloned()
    }

    /// An optional `u64` flag (`None` when absent).
    pub fn opt_u64(&self, name: &str) -> Result<Option<u64>, CliError> {
        match self.flags.get(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| CliError::Usage(format!("--{name} expects an integer, got '{v}'"))),
        }
    }

    /// Parses `--stage2-kernel` (`seq` | `counter` | `counter-par[/N]`;
    /// defaults to the streaming sequential-RNG kernel, which preserves the
    /// historical seeded outputs).
    pub fn stage2_kernel(&self) -> Result<dpclustx::Stage2Kernel, CliError> {
        match self.flags.get("stage2-kernel") {
            None => Ok(dpclustx::Stage2Kernel::default()),
            Some(v) => dpclustx::Stage2Kernel::parse(v).map_err(CliError::Usage),
        }
    }

    /// Parses `--weights INT,SUF,DIV` (defaults to equal thirds).
    pub fn weights(&self) -> Result<dpclustx::quality::score::Weights, CliError> {
        match self.flags.get("weights") {
            None => Ok(dpclustx::quality::score::Weights::equal()),
            Some(v) => {
                let parts: Vec<f64> = v
                    .split(',')
                    .map(|s| {
                        s.trim().parse().map_err(|_| {
                            CliError::Usage(format!("--weights expects three numbers, got '{v}'"))
                        })
                    })
                    .collect::<Result<_, _>>()?;
                if parts.len() != 3 {
                    return Err(CliError::Usage(
                        "--weights expects INT,SUF,DIV (three numbers)".into(),
                    ));
                }
                let sum: f64 = parts.iter().sum();
                if sum <= 0.0 || parts.iter().any(|&w| w < 0.0) {
                    return Err(CliError::Usage(
                        "--weights must be non-negative with positive sum".into(),
                    ));
                }
                Ok(dpclustx::quality::score::Weights::new(
                    parts[0] / sum,
                    parts[1] / sum,
                    parts[2] / sum,
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cli(args: &[&str]) -> Result<Cli, CliError> {
        Cli::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_subcommand_and_flags() {
        let c = cli(&["explain", "--clusters", "3", "--eps-hist", "0.2"]).unwrap();
        assert_eq!(c.command, "explain");
        assert_eq!(c.required_usize("clusters").unwrap(), 3);
        assert!((c.f64("eps-hist", 0.1).unwrap() - 0.2).abs() < 1e-12);
        assert_eq!(c.usize("k", 3).unwrap(), 3);
    }

    #[test]
    fn missing_subcommand_errors() {
        assert!(cli(&[]).is_err());
    }

    #[test]
    fn bare_boolean_flags_parse_in_any_position() {
        let c = cli(&["explain", "--timings", "--clusters", "3"]).unwrap();
        assert!(c.bool("timings"));
        assert_eq!(c.required_usize("clusters").unwrap(), 3);
        let c = cli(&["explain", "--clusters", "3", "--timings"]).unwrap();
        assert!(c.bool("timings"));
        assert!(!c.bool("absent"));
        let c = cli(&["explain", "--timings", "false"]).unwrap();
        assert!(!c.bool("timings"));
    }

    #[test]
    fn missing_required_flag_errors() {
        let c = cli(&["explain"]).unwrap();
        assert!(c.required("data").is_err());
    }

    #[test]
    fn weights_normalize() {
        let c = cli(&["explain", "--weights", "2,1,1"]).unwrap();
        let w = c.weights().unwrap();
        assert!((w.int - 0.5).abs() < 1e-12);
        assert!((w.suf - 0.25).abs() < 1e-12);
    }

    #[test]
    fn bad_weights_rejected() {
        assert!(cli(&["x", "--weights", "1,2"]).unwrap().weights().is_err());
        assert!(cli(&["x", "--weights", "a,b,c"])
            .unwrap()
            .weights()
            .is_err());
        assert!(cli(&["x", "--weights", "-1,1,1"])
            .unwrap()
            .weights()
            .is_err());
    }

    #[test]
    fn stage2_kernel_flag_parses_and_defaults() {
        use dpclustx::Stage2Kernel;
        let c = cli(&["explain"]).unwrap();
        assert_eq!(c.stage2_kernel().unwrap(), Stage2Kernel::SequentialRng);
        let c = cli(&["explain", "--stage2-kernel", "counter"]).unwrap();
        assert_eq!(c.stage2_kernel().unwrap(), Stage2Kernel::CounterSerial);
        let c = cli(&["explain", "--stage2-kernel", "counter-par/4"]).unwrap();
        assert_eq!(c.stage2_kernel().unwrap(), Stage2Kernel::CounterParallel(4));
        let c = cli(&["explain", "--stage2-kernel", "counter-par"]).unwrap();
        assert_eq!(c.stage2_kernel().unwrap(), Stage2Kernel::CounterParallel(0));
        let c = cli(&["explain", "--stage2-kernel", "gumbel"]).unwrap();
        assert!(matches!(c.stage2_kernel(), Err(CliError::Usage(_))));
    }

    #[test]
    fn optional_flags_distinguish_absent_from_set() {
        let c = cli(&[
            "serve-batch",
            "--ledger-dir",
            "wals",
            "--deadline-ms",
            "250",
        ])
        .unwrap();
        assert_eq!(c.opt_string("ledger-dir").as_deref(), Some("wals"));
        assert_eq!(c.opt_u64("deadline-ms").unwrap(), Some(250));
        let c = cli(&["serve-batch"]).unwrap();
        assert_eq!(c.opt_string("ledger-dir"), None);
        assert_eq!(c.opt_u64("deadline-ms").unwrap(), None);
        let c = cli(&["serve-batch", "--deadline-ms", "soon"]).unwrap();
        assert!(c.opt_u64("deadline-ms").is_err());
    }

    #[test]
    fn default_weights_are_equal() {
        let w = cli(&["x"]).unwrap().weights().unwrap();
        assert!((w.int - 1.0 / 3.0).abs() < 1e-12);
    }
}
