//! Subcommand implementations.

use crate::args::Cli;
use crate::CliError;
use dpclustx::baselines::tabee;
use dpclustx::counts::ScoreTable;
use dpclustx::engine::{CollectingObserver, ExplainEngine, NoopObserver};
use dpclustx::eval::{mae, QualityEvaluator};
use dpclustx::framework::{DpClustX, DpClustXConfig};
use dpclustx::parallel::default_threads;
use dpclustx::stage1::rank_attributes;
use dpclustx::text;
use dpx_clustering::ClusteringMethod;
use dpx_data::contingency::ClusteredCounts;
use dpx_data::csv::{read_csv, write_csv};
use dpx_data::schema_io::{read_schema, write_schema};
use dpx_data::synth;
use dpx_data::Dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fs::File;
use std::io::{BufReader, BufWriter};

/// Dispatches a parsed command line. Output goes to `out` (stdout in main;
/// a buffer in tests).
pub fn run<W: std::io::Write>(cli: &Cli, out: &mut W) -> Result<(), CliError> {
    match cli.command.as_str() {
        "generate" => generate(cli, out),
        "explain" => explain(cli, out, false),
        "evaluate" => explain(cli, out, true),
        "rank" => rank(cli, out),
        "report" => report(cli, out),
        "serve-batch" => serve_batch(cli, out),
        "serve-daemon" => serve_daemon(cli, out),
        "session" => {
            let stdin = std::io::stdin();
            crate::repl::run_session(cli, stdin.lock(), out)
        }
        "help" | "--help" | "-h" => {
            writeln!(out, "{}", crate::USAGE)?;
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown subcommand '{other}' (try 'help')"
        ))),
    }
}

fn generate<W: std::io::Write>(cli: &Cli, out: &mut W) -> Result<(), CliError> {
    let dataset = cli.required("dataset")?.to_string();
    let prefix = cli.required("out")?.to_string();
    let groups = cli.usize("groups", 3)?;
    let seed = cli.u64("seed", 2025)?;
    let spec = match dataset.as_str() {
        "diabetes" => synth::diabetes::spec(groups),
        "census" => synth::census::spec(groups),
        "stackoverflow" | "so" => synth::stackoverflow::spec(groups),
        other => {
            return Err(CliError::Usage(format!(
                "unknown dataset '{other}' (diabetes|census|stackoverflow)"
            )))
        }
    };
    let rows = cli.usize("rows", 20_000)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let data = spec.generate(rows, &mut rng).data;

    let csv_path = format!("{prefix}.csv");
    let schema_path = format!("{prefix}.schema");
    write_csv(&data, &mut BufWriter::new(File::create(&csv_path)?))?;
    write_schema(
        data.schema(),
        &mut BufWriter::new(File::create(&schema_path)?),
    )?;
    writeln!(
        out,
        "wrote {} tuples × {} attributes to {csv_path} (+ {schema_path})",
        data.n_rows(),
        data.schema().arity()
    )?;
    Ok(())
}

fn load(cli: &Cli) -> Result<Dataset, CliError> {
    let schema_path = cli.required("schema")?.to_string();
    let data_path = cli.required("data")?.to_string();
    let schema = read_schema(BufReader::new(File::open(&schema_path)?))?;
    Ok(read_csv(schema, BufReader::new(File::open(&data_path)?))?)
}

fn parse_method(cli: &Cli) -> Result<ClusteringMethod, CliError> {
    let clust_eps = cli.f64("clust-eps", 1.0)?;
    match cli.string("method", "kmeans").as_str() {
        "kmeans" => Ok(ClusteringMethod::KMeans),
        "dp-kmeans" => Ok(ClusteringMethod::DpKMeans { epsilon: clust_eps }),
        "kmodes" => Ok(ClusteringMethod::KModes),
        "agglomerative" => Ok(ClusteringMethod::Agglomerative),
        "gmm" => Ok(ClusteringMethod::Gmm),
        other => Err(CliError::Usage(format!(
            "unknown method '{other}' (kmeans|dp-kmeans|kmodes|agglomerative|gmm)"
        ))),
    }
}

fn explain<W: std::io::Write>(cli: &Cli, out: &mut W, evaluate: bool) -> Result<(), CliError> {
    let data = load(cli)?;
    let n_clusters = cli.required_usize("clusters")?;
    if n_clusters == 0 {
        return Err(CliError::Usage("--clusters must be positive".into()));
    }
    let method = parse_method(cli)?;
    let seed = cli.u64("seed", 2025)?;
    let config = DpClustXConfig {
        k: cli.usize("k", 3)?,
        eps_cand_set: cli.f64("eps-cand", 0.1)?,
        eps_top_comb: cli.f64("eps-comb", 0.1)?,
        eps_hist: Some(cli.f64("eps-hist", 0.1)?),
        weights: cli.weights()?,
        consistency: cli.string("consistency", "off") == "on",
    };

    let mut rng = StdRng::seed_from_u64(seed);
    let model = method.fit(&data, n_clusters, &mut rng);
    let labels = model.assign_all(&data);
    writeln!(
        out,
        "clustered {} tuples with {} into {} clusters",
        data.n_rows(),
        method.name(),
        n_clusters
    )?;

    let timings = cli.bool("timings");
    let kernel = cli.stage2_kernel()?;
    let mut observer = CollectingObserver::new();
    let engine = ExplainEngine::new(config).with_stage2_kernel(kernel);
    let outcome = if timings {
        engine.explain_uncached(
            &data,
            &labels,
            n_clusters,
            &dpx_dp::histogram::GeometricHistogram,
            &mut rng,
            &mut observer,
        )?
    } else if kernel == dpclustx::Stage2Kernel::default() {
        DpClustX::new(config).explain(&data, &labels, n_clusters, &mut rng)?
    } else {
        engine.explain_uncached(
            &data,
            &labels,
            n_clusters,
            &dpx_dp::histogram::GeometricHistogram,
            &mut rng,
            &mut NoopObserver,
        )?
    };
    writeln!(
        out,
        "\nselected attributes: {:?}",
        outcome.explanation.attribute_names()
    )?;
    if timings {
        writeln!(out, "\nstage timings:\n{}", observer.report())?;
    }
    writeln!(out, "\nprivacy audit:\n{}", outcome.accountant.audit())?;
    for e in &outcome.explanation.per_cluster {
        writeln!(out, "{}", e.render())?;
        writeln!(out, "  {}\n", text::describe(e))?;
    }

    if evaluate {
        let counts = ClusteredCounts::build_parallel(
            &data,
            &labels,
            n_clusters,
            default_threads(data.n_rows()),
        );
        let st = ScoreTable::from_clustered_counts(&counts);
        let evaluator = QualityEvaluator::new(&st, config.weights);
        let reference = tabee::select(&st, config.k, config.weights);
        let q_dp = evaluator.quality(&outcome.assignment);
        let q_ref = evaluator.quality(&reference);
        writeln!(out, "--- offline evaluation (uses raw data; not DP) ---")?;
        writeln!(
            out,
            "Quality: DPClustX {q_dp:.4}, TabEE {q_ref:.4}; MAE {:.4}",
            mae(&outcome.assignment, &reference)
        )?;
        writeln!(
            out,
            "TabEE attributes: {:?}",
            reference
                .iter()
                .map(|&a| data.schema().attribute(a).name.as_str())
                .collect::<Vec<_>>()
        )?;
    }
    Ok(())
}

fn report<W: std::io::Write>(cli: &Cli, out: &mut W) -> Result<(), CliError> {
    use dpclustx::report::{markdown_report, ReportOptions};
    let data = load(cli)?;
    let n_clusters = cli.required_usize("clusters")?;
    if n_clusters == 0 {
        return Err(CliError::Usage("--clusters must be positive".into()));
    }
    let method = parse_method(cli)?;
    let seed = cli.u64("seed", 2025)?;
    let out_path = cli.required("report-out")?.to_string();
    let config = DpClustXConfig {
        k: cli.usize("k", 3)?,
        eps_cand_set: cli.f64("eps-cand", 0.1)?,
        eps_top_comb: cli.f64("eps-comb", 0.1)?,
        eps_hist: Some(cli.f64("eps-hist", 0.1)?),
        weights: cli.weights()?,
        consistency: cli.string("consistency", "off") == "on",
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let model = method.fit(&data, n_clusters, &mut rng);
    let labels = model.assign_all(&data);
    let outcome = DpClustX::new(config).explain(&data, &labels, n_clusters, &mut rng)?;
    let mut md = markdown_report(
        &cli.string("title", "DPClustX explanation"),
        &outcome.explanation,
        Some(&outcome.accountant),
        ReportOptions::default(),
    );
    let mut distinct = outcome.assignment.clone();
    distinct.sort_unstable();
    distinct.dedup();
    if let Some(note) = dpclustx::report::accuracy_note(&config, distinct.len()) {
        md.push_str(&format!("\n*{note}*\n"));
    }
    std::fs::write(&out_path, md)?;
    writeln!(out, "wrote markdown report to {out_path}")?;
    Ok(())
}

/// Executes a JSONL request batch against one registered dataset on a worker
/// pool (see `dpx-serve`). Responses are written sorted by request id, and
/// every serialized field is deterministic, so the output file is
/// byte-identical for any `--workers` value.
///
/// `--ledger-dir` attaches a durable sharded ε ledger: each dataset gets its
/// own write-ahead file (`<dir>/<dataset>.wal`), every grant is fsynced
/// before its request runs, and a restarted invocation recovers each shard at
/// its exact spend. `--checkpoint-every N` compacts a shard's WAL to a
/// checkpoint record after every N grants, bounding recovery replay.
/// `--resume` (requires `--ledger-dir`) keeps the response lines an
/// interrupted run already flushed to `--out` and skips re-spending for
/// request ids that hold a recovered grant, so kill-and-rerun converges on
/// exactly the uninterrupted output without double-charging.
/// What the serving subcommands (`serve-batch`, `serve-daemon`) share:
/// ledger/durability flag validation, the loaded dataset, and the (possibly
/// durable) registry with its recovered grant set.
struct ServingSetup {
    registry: std::sync::Arc<dpx_serve::DatasetRegistry>,
    entry: std::sync::Arc<dpx_serve::DatasetEntry>,
    granted: std::collections::HashSet<u64>,
    ledger_dir: Option<String>,
    resume: bool,
    deadline_ms: Option<u64>,
    checkpoint_every: Option<u64>,
}

/// Validates the shared durability flags, loads the dataset, and opens the
/// registry — recovering each shard's write-ahead ledger when --ledger-dir
/// is given.
fn open_serving_setup(cli: &Cli) -> Result<ServingSetup, CliError> {
    use dpx_serve::{AccountantShards, DatasetRegistry, ShardConfig};
    use std::sync::Arc;

    if cli.opt_string("ledger").is_some() {
        return Err(CliError::Usage(
            "--ledger <file> was replaced by --ledger-dir <dir> \
             (one write-ahead ledger per dataset: <dir>/<dataset>.wal)"
                .into(),
        ));
    }
    let ledger_dir = cli.opt_string("ledger-dir");
    let resume = cli.bool("resume");
    let deadline_ms = cli.opt_u64("deadline-ms")?;
    let checkpoint_every = cli.opt_u64("checkpoint-every")?;
    let group_wait_us = cli.opt_u64("group-commit-max-wait-us")?;
    let group_max_batch = cli.opt_u64("group-commit-max-batch")?;
    if resume && ledger_dir.is_none() {
        return Err(CliError::Usage(
            "--resume requires --ledger-dir (there is no grant log to resume from)".into(),
        ));
    }
    if let Some(every) = checkpoint_every {
        if ledger_dir.is_none() {
            return Err(CliError::Usage(
                "--checkpoint-every requires --ledger-dir (nothing to checkpoint in memory)".into(),
            ));
        }
        if every == 0 {
            return Err(CliError::Usage(
                "--checkpoint-every must be positive".into(),
            ));
        }
    }
    // Group commit batches concurrent grant fsyncs; either flag opts in and
    // the other takes its default. A max batch of 0 or 1 degenerates to the
    // per-grant path (the documented way to measure the baseline with the
    // flag still on the command line).
    let group_commit = match (group_wait_us, group_max_batch) {
        (None, None) => None,
        (wait, batch) => {
            if ledger_dir.is_none() {
                return Err(CliError::Usage(
                    "--group-commit-max-wait-us/--group-commit-max-batch require --ledger-dir \
                     (group commit batches durable fsyncs; there is none in memory)"
                        .into(),
                ));
            }
            Some(dpx_dp::GroupCommitPolicy {
                max_wait_us: wait.unwrap_or(200),
                max_batch: batch.unwrap_or(64),
            })
        }
    };

    let data = load(cli)?;
    let cap = match cli.f64("budget", f64::INFINITY)? {
        b if b.is_infinite() => None,
        b => Some(dpx_dp::budget::Epsilon::new(b)?),
    };

    let registry = match &ledger_dir {
        Some(dir) => Arc::new(DatasetRegistry::with_shards(Arc::new(
            AccountantShards::in_dir(std::path::Path::new(dir))?,
        ))),
        None => Arc::new(DatasetRegistry::new()),
    };
    let name = cli.string("name", "default");
    let entry = match &ledger_dir {
        Some(_) => {
            let config = ShardConfig {
                cap,
                checkpoint_every,
                group_commit,
            };
            registry.register_sharded(name, Arc::new(data), config)?
        }
        None => registry.register(name, Arc::new(data), cap),
    };
    let granted = entry.accountant().granted_ids().into_iter().collect();
    Ok(ServingSetup {
        registry,
        entry,
        granted,
        ledger_dir,
        resume,
        deadline_ms,
        checkpoint_every,
    })
}

/// Prints each durable shard's recovery/checkpoint/group-commit statistics
/// (shared by the serving subcommands' human summaries).
fn print_ledger_stats<W: std::io::Write>(
    out: &mut W,
    registry: &dpx_serve::DatasetRegistry,
) -> Result<(), CliError> {
    for (shard, stats) in registry.shards().stats() {
        let origin = if stats.recovered_from_checkpoint {
            format!(
                "from checkpoint (+{} tail records)",
                stats.checkpoint_age_at_recovery
            )
        } else {
            "full history".to_string()
        };
        writeln!(
            out,
            "ledger '{shard}': replayed {} records ({origin}), truncated {} torn bytes, \
             {} checkpoints written ({} failed), {} grants since last checkpoint",
            stats.records_replayed,
            stats.truncated_bytes,
            stats.checkpoints_written,
            stats.checkpoint_failures,
            stats.appends_since_checkpoint
        )?;
        if stats.append_batches > 0 {
            writeln!(
                out,
                "ledger '{shard}': {} grants over {} fsync batches ({:.2} grants/fsync)",
                stats.grants_appended,
                stats.append_batches,
                stats.grants_appended as f64 / stats.append_batches as f64
            )?;
        }
    }
    Ok(())
}

fn serve_batch<W: std::io::Write>(cli: &Cli, out: &mut W) -> Result<(), CliError> {
    use dpx_runtime::faultpoint::{self, SERVICE_POST_RESPOND};
    use dpx_serve::{parse_requests_lenient, reject_response, BatchOptions, ExplainService};
    use std::collections::HashSet;
    use std::io::Write as _;
    use std::sync::{Arc, Mutex, PoisonError};

    let ServingSetup {
        registry,
        entry,
        granted,
        ledger_dir,
        resume,
        deadline_ms,
        checkpoint_every,
    } = open_serving_setup(cli)?;
    let requests_path = cli.required("requests")?.to_string();
    let out_path = cli.required("out")?.to_string();
    let workers = cli.usize("workers", default_threads(usize::MAX))?;
    // Lenient wire parsing: a hostile line that declares an id is answered
    // with a per-request error response echoing that id (shaped like a
    // budget rejection, eps_remaining included on capped datasets). A line
    // with no parseable id cannot be answered on the id-keyed response
    // stream, so it fails the batch like it always did.
    let (requests, rejects) = parse_requests_lenient(BufReader::new(File::open(&requests_path)?))
        .map_err(|e| CliError::Usage(e.to_string()))?;
    if let Some(bad) = rejects.iter().find(|r| r.id.is_none()) {
        return Err(CliError::Usage(format!(
            "bad request on line {}: {}",
            bad.line, bad.message
        )));
    }
    let n_requests = requests.len() + rejects.len();
    // Synthesized now — before any request runs — so the headroom a reject
    // echoes is the recovered pre-batch reading, not a mid-storm race.
    let reject_responses: Vec<dpx_serve::ExplainResponse> = rejects
        .iter()
        .filter_map(|reject| reject_response(reject, &registry))
        .collect();

    // --resume keeps whatever response lines the interrupted run already
    // flushed (a torn final line is dropped) and only re-runs the rest.
    // Append requests are the exception: their effect is in-memory dataset
    // state that every restart rebuilds from scratch, so they always
    // re-execute (free — no ε, deterministic) and any kept line for an
    // append id is discarded in favor of the fresh one.
    let append_ids: HashSet<u64> = requests
        .iter()
        .filter(|r| r.is_append())
        .map(|r| r.id)
        .collect();
    // Wire-reject answers are likewise dropped from the kept set: the
    // request file is their only source of truth and they are re-synthesized
    // on every run (a reject's id may collide with the request that
    // legitimately owns it, so resuming them by id would be ambiguous).
    let kept: Vec<(u64, String)> = if resume {
        read_kept_responses(&out_path)?
            .into_iter()
            .filter(|(id, _)| !append_ids.contains(id))
            .filter(|(_, line)| !is_wire_reject_line(line))
            .collect()
    } else {
        Vec::new()
    };
    let kept_ids: HashSet<u64> = kept.iter().map(|(id, _)| *id).collect();
    let to_run: Vec<_> = requests
        .into_iter()
        .filter(|r| !kept_ids.contains(&r.id))
        .collect();

    let opts = BatchOptions {
        deadline_ms,
        granted,
        checkpoint_every,
    };
    let service = ExplainService::new(Arc::clone(&registry)).with_workers(workers);

    // Stream every response append-and-flush (kept lines re-written first) so
    // a crash loses at most the in-flight requests; the canonical sorted
    // rewrite happens once the batch completes.
    let mut stream = BufWriter::new(File::create(&out_path)?);
    for (_, line) in &kept {
        writeln!(stream, "{line}")?;
    }
    // Reject answers are durable before the batch starts: they depend only
    // on the request file and the recovered budget, not on the run.
    for response in &reject_responses {
        writeln!(stream, "{}", response.to_json_line())?;
    }
    stream.flush()?;
    let stream = Mutex::new(stream);
    let responses = service.run_batch_streamed(
        to_run,
        &opts,
        &dpx_dp::histogram::GeometricHistogram,
        Some(&|response: &dpx_serve::ExplainResponse| {
            let mut w = stream.lock().unwrap_or_else(PoisonError::into_inner);
            let _ = writeln!(w, "{}", response.to_json_line());
            let _ = w.flush();
            faultpoint::hit(SERVICE_POST_RESPOND);
        }),
    );
    drop(stream);

    let ok = responses.iter().filter(|r| r.is_ok()).count()
        + kept
            .iter()
            .filter(|(_, line)| line.contains("\"ok\":true"))
            .count();

    let mut lines: Vec<(u64, String)> = kept;
    lines.extend(responses.iter().map(|r| (r.id, r.to_json_line())));
    // Rejects sort after the executed response when an id collides (a
    // duplicate-id reject shares its id with the request that owns it);
    // the sort is stable, so the order is deterministic.
    lines.extend(reject_responses.iter().map(|r| (r.id, r.to_json_line())));
    lines.sort_by_key(|&(id, _)| id);
    let mut writer = BufWriter::new(File::create(&out_path)?);
    for (_, line) in &lines {
        writeln!(writer, "{line}")?;
    }
    writer.flush()?;

    if resume {
        writeln!(
            out,
            "resumed: kept {} previously written responses, re-ran {}",
            kept_ids.len(),
            lines.len() - kept_ids.len()
        )?;
    }
    if !reject_responses.is_empty() {
        writeln!(
            out,
            "rejected {} hostile request lines at the wire (answered on the response stream)",
            reject_responses.len()
        )?;
    }
    writeln!(
        out,
        "served {n_requests} requests on {} workers: {ok} ok, {} failed",
        service.workers(),
        n_requests - ok
    )?;
    let headroom = match entry.accountant().remaining() {
        Some(rem) => format!(", ε remaining = {rem:.6}"),
        None => String::new(),
    };
    writeln!(
        out,
        "dataset '{}' spent ε = {:.6} over {} accepted requests{headroom} -> {out_path}",
        entry.name(),
        entry.accountant().spent(),
        entry.accountant().num_charges()
    )?;
    // Scheduling-dependent counters live here in the human summary, never in
    // the response stream (which must stay byte-identical across worker
    // counts).
    writeln!(
        out,
        "counts cache: {} single-flight waits joined an in-flight build",
        entry.cache().singleflight_hits()
    )?;
    if ledger_dir.is_some() {
        print_ledger_stats(out, &registry)?;
    }
    Ok(())
}

fn serve_daemon<W: std::io::Write>(cli: &Cli, out: &mut W) -> Result<(), CliError> {
    use dpx_runtime::faultpoint::{self, SERVICE_POST_RESPOND};
    use dpx_serve::daemon::{serve_lines, serve_socket, Daemon, DaemonConfig, DaemonReply};
    use dpx_serve::parse_requests_lenient;
    use std::collections::HashSet;
    use std::io::Write as _;
    use std::sync::{Arc, Mutex, PoisonError};

    // Daemon-specific flag validation comes before the (expensive) dataset
    // load so a bad invocation fails fast.
    let requests_path = cli.opt_string("requests");
    let socket_path = cli.opt_string("socket");
    let workers = cli.usize("workers", 2)?.max(1);
    let queue_capacity = cli.usize("queue-capacity", 32)?;
    let drain_deadline_ms = cli.u64("drain-deadline-ms", 10_000)?;
    let metrics_out = cli.opt_string("metrics-out");
    let metrics_every = cli.u64("metrics-every", 64)?;
    if queue_capacity == 0 {
        return Err(CliError::Usage(
            "--queue-capacity must be positive (a zero-slot daemon can admit nothing)".into(),
        ));
    }
    if requests_path.is_some() && socket_path.is_some() {
        return Err(CliError::Usage(
            "--requests and --socket are mutually exclusive transports (pick one; \
             with neither, the daemon reads stdin)"
                .into(),
        ));
    }
    if cli.bool("resume") && requests_path.is_none() {
        return Err(CliError::Usage(
            "--resume requires --requests (the request file is replayed with already-served \
             ids skipped; a socket or stdin stream cannot be replayed)"
                .into(),
        ));
    }
    let setup = open_serving_setup(cli)?;
    let out_path = cli.required("out")?.to_string();

    // --resume keeps served (ok) response lines and skips their ids on the
    // replayed request stream. Error lines are never kept: admission
    // rejects depend on queue state, so re-running them is the only
    // deterministic choice (they spend no ε either way). Appends always
    // re-execute — their effect is in-memory dataset state.
    let append_ids: HashSet<u64> = match (&requests_path, setup.resume) {
        (Some(path), true) => {
            let (requests, _) = parse_requests_lenient(BufReader::new(File::open(path)?))
                .map_err(|e| CliError::Usage(e.to_string()))?;
            requests
                .iter()
                .filter(|r| r.is_append())
                .map(|r| r.id)
                .collect()
        }
        _ => HashSet::new(),
    };
    let kept: Vec<(u64, String)> = if setup.resume {
        read_kept_responses(&out_path)?
            .into_iter()
            .filter(|(id, _)| !append_ids.contains(id))
            .filter(|(_, line)| line.contains("\"ok\":true"))
            .collect()
    } else {
        Vec::new()
    };
    let skip_ids: HashSet<u64> = kept.iter().map(|(id, _)| *id).collect();

    let config = DaemonConfig {
        workers,
        queue_capacity,
        drain_deadline_ms,
        deadline_ms: setup.deadline_ms,
        granted: setup.granted.clone(),
        checkpoint_every: setup.checkpoint_every,
        metrics_out: metrics_out.as_ref().map(std::path::PathBuf::from),
        metrics_every,
        ..Default::default()
    };
    let daemon = Daemon::new(Arc::clone(&setup.registry), config);
    let handles = daemon.start();

    // The durable response stream: kept lines are re-written first, then
    // every response-class reply is appended and flushed as it lands — a
    // crash loses at most the in-flight lines. Control replies (stats and
    // shutdown acks) are buffered for the human summary instead; they are
    // scheduling-dependent snapshots and must never touch this stream.
    let mut stream = BufWriter::new(File::create(&out_path)?);
    for (_, line) in &kept {
        writeln!(stream, "{line}")?;
    }
    stream.flush()?;
    let stream = Arc::new(Mutex::new(stream));
    let collected: Arc<Mutex<Vec<(u64, String)>>> = Arc::new(Mutex::new(Vec::new()));
    let controls: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let durable: dpx_serve::ReplySink = {
        let stream = Arc::clone(&stream);
        let collected = Arc::clone(&collected);
        let controls = Arc::clone(&controls);
        Arc::new(move |reply: DaemonReply<'_>| match reply {
            DaemonReply::Response(response) => {
                let line = response.to_json_line();
                {
                    let mut w = stream.lock().unwrap_or_else(PoisonError::into_inner);
                    let _ = writeln!(w, "{line}");
                    let _ = w.flush();
                }
                collected
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push((response.id, line));
                faultpoint::hit(SERVICE_POST_RESPOND);
            }
            DaemonReply::Control(control) => controls
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(control.render()),
        })
    };

    match (&requests_path, &socket_path) {
        (Some(path), None) => {
            serve_lines(
                &daemon,
                BufReader::new(File::open(path)?),
                &durable,
                &skip_ids,
            )?;
        }
        (None, Some(path)) => {
            writeln!(
                out,
                "daemon listening on {path} (send {{\"op\":\"shutdown\"}} to drain)"
            )?;
            serve_socket(&daemon, std::path::Path::new(path), &durable)?;
        }
        (None, None) => {
            let stdin = std::io::stdin();
            serve_lines(&daemon, stdin.lock(), &durable, &skip_ids)?;
        }
        (Some(_), Some(_)) => unreachable!("rejected above"),
    }
    let summary = daemon.drain_and_join(handles);

    // Clean drain: rewrite the durable stream sorted by id — the canonical
    // form a resumed or batch run produces. (After a crash the appended
    // unsorted prefix is what survives, and --resume converges it.)
    let mut lines: Vec<(u64, String)> = kept;
    lines.extend(
        collected
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .cloned(),
    );
    lines.sort_by_key(|&(id, _)| id);
    drop(stream);
    let mut writer = BufWriter::new(File::create(&out_path)?);
    for (_, line) in &lines {
        writeln!(writer, "{line}")?;
    }
    writer.flush()?;

    if setup.resume {
        writeln!(
            out,
            "resumed: kept {} previously served responses, re-ran {}",
            skip_ids.len(),
            lines.len() - skip_ids.len()
        )?;
    }
    for control in controls
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
    {
        writeln!(out, "control: {control}")?;
    }
    write!(out, "{}", summary.render())?;
    writeln!(
        out,
        "responses -> {out_path} ({} lines, sorted by id)",
        lines.len()
    )?;
    writeln!(
        out,
        "counts cache: {} single-flight waits joined an in-flight build",
        setup.entry.cache().singleflight_hits()
    )?;
    if setup.ledger_dir.is_some() {
        print_ledger_stats(out, &setup.registry)?;
    }
    if !summary.clean() {
        return Err(CliError::Usage(format!(
            "daemon drain was not clean: {} checkpoint failure(s), {} probe violation(s)",
            summary.checkpoint_errors.len(),
            summary.probe_violations.len()
        )));
    }
    Ok(())
}

/// Whether a kept response line is a synthesized wire-reject answer
/// (duplicate id, invalid ε, undecodable line). Those are never resumed:
/// the request file is their only source of truth, they cost no ε to
/// re-synthesize, and a duplicate-id reject shares its id with the request
/// that legitimately owns it — resuming by id would swallow the real one.
fn is_wire_reject_line(line: &str) -> bool {
    use dpx_serve::reject_reason;
    [
        reject_reason::DUPLICATE_ID,
        reject_reason::INVALID_EPSILON,
        reject_reason::BAD_LINE,
    ]
    .iter()
    .any(|class| line.contains(&format!("\"reason\":\"{class}\"")))
}

/// Reads the response lines an interrupted `serve-batch` already wrote to
/// `path` (missing file → nothing kept). A final line that is torn — no
/// trailing newline, or unparseable — is dropped: the crash landed mid-write
/// and its request will simply be re-served. An unparseable *interior* line
/// means the file is not a response stream at all, which is an error rather
/// than something to silently overwrite.
fn read_kept_responses(path: &str) -> Result<Vec<(u64, String)>, CliError> {
    use dpx_serve::Json;
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(CliError::Io(e)),
    };
    let mut lines: Vec<&str> = text.lines().collect();
    if !text.ends_with('\n') {
        lines.pop();
    }
    let last = lines.len();
    let mut kept = Vec::with_capacity(lines.len());
    for (i, line) in lines.into_iter().enumerate() {
        let id = Json::parse(line)
            .ok()
            .and_then(|json| json.get("id").and_then(Json::as_u64));
        match id {
            Some(id) => kept.push((id, line.to_string())),
            None if i + 1 == last => {} // torn tail despite its newline
            None => {
                return Err(CliError::Usage(format!(
                    "--resume: line {} of {path} is not a response line; refusing to overwrite",
                    i + 1
                )))
            }
        }
    }
    Ok(kept)
}

fn rank<W: std::io::Write>(cli: &Cli, out: &mut W) -> Result<(), CliError> {
    let data = load(cli)?;
    let n_clusters = cli.required_usize("clusters")?;
    let cluster = cli.required_usize("cluster")?;
    if cluster >= n_clusters {
        return Err(CliError::Usage(format!(
            "--cluster {cluster} out of range (clusters = {n_clusters})"
        )));
    }
    let method = parse_method(cli)?;
    let seed = cli.u64("seed", 2025)?;
    let top = cli.usize("top", 10)?;

    let mut rng = StdRng::seed_from_u64(seed);
    let model = method.fit(&data, n_clusters, &mut rng);
    let labels = model.assign_all(&data);
    let counts =
        ClusteredCounts::build_parallel(&data, &labels, n_clusters, default_threads(data.n_rows()));
    let st = ScoreTable::from_clustered_counts(&counts);
    let gamma = cli.weights()?.gamma();

    writeln!(
        out,
        "⚠ exact scores computed from raw data (not DP) — diagnostics only\n"
    )?;
    writeln!(out, "ranked candidates for cluster {cluster}:")?;
    for (rank, (attr, score)) in rank_attributes(&st, cluster, gamma)
        .into_iter()
        .take(top)
        .enumerate()
    {
        writeln!(
            out,
            "  {:>2}. {:<24} SScore = {score:.2}",
            rank + 1,
            data.schema().attribute(attr).name
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Cli;

    fn run_cli(args: &[&str]) -> Result<String, CliError> {
        let cli = Cli::parse(args.iter().map(|s| s.to_string()))?;
        let mut out = Vec::new();
        run(&cli, &mut out)?;
        Ok(String::from_utf8(out).expect("utf8 output"))
    }

    fn tmpdir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dpclustx-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn help_prints_usage() {
        let text = run_cli(&["help"]).unwrap();
        assert!(text.contains("generate"));
        assert!(text.contains("explain"));
    }

    #[test]
    fn unknown_subcommand_is_usage_error() {
        assert!(matches!(run_cli(&["frobnicate"]), Err(CliError::Usage(_))));
    }

    #[test]
    fn generate_then_explain_then_evaluate_and_rank() {
        let dir = tmpdir();
        let prefix = dir.join("patients");
        let prefix_s = prefix.to_str().unwrap();
        let text = run_cli(&[
            "generate",
            "--dataset",
            "diabetes",
            "--rows",
            "1500",
            "--out",
            prefix_s,
        ])
        .unwrap();
        assert!(text.contains("1500 tuples"));
        let csv = format!("{prefix_s}.csv");
        let schema = format!("{prefix_s}.schema");

        let text = run_cli(&[
            "explain",
            "--data",
            &csv,
            "--schema",
            &schema,
            "--clusters",
            "3",
            "--method",
            "kmeans",
        ])
        .unwrap();
        assert!(text.contains("privacy audit"));
        assert!(text.contains("total ε = 0.3"));
        assert!(text.contains("Cluster 0"));

        let text = run_cli(&[
            "evaluate",
            "--data",
            &csv,
            "--schema",
            &schema,
            "--clusters",
            "3",
        ])
        .unwrap();
        assert!(text.contains("Quality: DPClustX"));
        assert!(text.contains("TabEE"));

        let text = run_cli(&[
            "rank",
            "--data",
            &csv,
            "--schema",
            &schema,
            "--clusters",
            "3",
            "--cluster",
            "1",
            "--top",
            "5",
        ])
        .unwrap();
        assert!(text.contains("ranked candidates for cluster 1"));
        assert_eq!(text.matches("SScore").count(), 5);
    }

    #[test]
    fn explain_timings_reports_all_four_stages() {
        let dir = tmpdir();
        let prefix = dir.join("timed");
        let prefix_s = prefix.to_str().unwrap();
        run_cli(&[
            "generate",
            "--dataset",
            "diabetes",
            "--rows",
            "1000",
            "--out",
            prefix_s,
        ])
        .unwrap();
        let csv = format!("{prefix_s}.csv");
        let schema = format!("{prefix_s}.schema");
        let text = run_cli(&[
            "explain",
            "--data",
            &csv,
            "--schema",
            &schema,
            "--clusters",
            "3",
            "--timings",
        ])
        .unwrap();
        assert!(text.contains("stage timings:"));
        for stage in [
            "build-counts",
            "candidate-selection",
            "combination-selection",
            "histogram-release",
        ] {
            assert!(text.contains(stage), "missing stage '{stage}' in:\n{text}");
        }
        assert!(text.contains("stage1/select-candidates"));
        assert!(text.contains("privacy audit"));
    }

    #[test]
    fn explain_stage2_kernels_agree_and_bad_kernel_is_rejected() {
        let dir = tmpdir();
        let prefix = dir.join("kern");
        let prefix_s = prefix.to_str().unwrap();
        run_cli(&[
            "generate",
            "--dataset",
            "diabetes",
            "--rows",
            "1200",
            "--out",
            prefix_s,
        ])
        .unwrap();
        let csv = format!("{prefix_s}.csv");
        let schema = format!("{prefix_s}.schema");
        let explain = |kernel: &str| {
            run_cli(&[
                "explain",
                "--data",
                &csv,
                "--schema",
                &schema,
                "--clusters",
                "3",
                "--stage2-kernel",
                kernel,
            ])
            .unwrap()
        };
        // Counter-serial and counter-parallel are bit-identical by design, so
        // the whole explanation (selected attributes, histograms, audit)
        // printed for the same seed must match verbatim.
        assert_eq!(explain("counter"), explain("counter-par/3"));
        assert!(explain("counter").contains("privacy audit"));
        assert!(matches!(
            run_cli(&[
                "explain",
                "--data",
                &csv,
                "--schema",
                &schema,
                "--clusters",
                "3",
                "--stage2-kernel",
                "fourier",
            ]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn serve_batch_is_byte_identical_across_worker_counts() {
        let dir = tmpdir();
        let prefix = dir.join("served");
        let prefix_s = prefix.to_str().unwrap();
        run_cli(&[
            "generate",
            "--dataset",
            "diabetes",
            "--rows",
            "900",
            "--out",
            prefix_s,
        ])
        .unwrap();
        let csv = format!("{prefix_s}.csv");
        let schema = format!("{prefix_s}.schema");
        let reqs = dir.join("served-reqs.jsonl");
        // Unsorted ids, a shared clustering (cache reuse), a per-request
        // kernel override, and one bad request that must fail alone.
        std::fs::write(
            &reqs,
            concat!(
                "{\"id\": 7, \"seed\": 1, \"n_clusters\": 3}\n",
                "# comment line\n",
                "{\"id\": 2, \"seed\": 2, \"n_clusters\": 3}\n",
                "{\"id\": 5, \"seed\": 3, \"n_clusters\": 2, \"stage2_kernel\": \"counter\"}\n",
                "{\"id\": 1, \"seed\": 4, \"cluster_by\": 9999}\n",
            ),
        )
        .unwrap();
        let mut outputs = Vec::new();
        for workers in ["1", "2", "7"] {
            let resp = dir.join(format!("served-resp-{workers}.jsonl"));
            let resp_s = resp.to_str().unwrap();
            let text = run_cli(&[
                "serve-batch",
                "--data",
                &csv,
                "--schema",
                &schema,
                "--requests",
                reqs.to_str().unwrap(),
                "--out",
                resp_s,
                "--workers",
                workers,
            ])
            .unwrap();
            assert!(text.contains("served 4 requests"), "{text}");
            assert!(text.contains("3 ok, 1 failed"), "{text}");
            outputs.push(std::fs::read(&resp).unwrap());
        }
        assert_eq!(outputs[0], outputs[1], "workers 1 vs 2 diverged");
        assert_eq!(outputs[0], outputs[2], "workers 1 vs 7 diverged");
        let text = String::from_utf8(outputs[0].clone()).unwrap();
        let ids: Vec<&str> = text.lines().map(|l| l.split(',').next().unwrap()).collect();
        assert_eq!(
            ids,
            vec!["{\"id\":1", "{\"id\":2", "{\"id\":5", "{\"id\":7"],
            "responses sorted by id"
        );
        assert!(text.lines().next().unwrap().contains("out of range"));
    }

    #[test]
    fn serve_daemon_drains_cleanly_and_matches_serve_batch_bytes() {
        let dir = tmpdir();
        let prefix = dir.join("daemon");
        let prefix_s = prefix.to_str().unwrap();
        run_cli(&[
            "generate",
            "--dataset",
            "diabetes",
            "--rows",
            "700",
            "--out",
            prefix_s,
        ])
        .unwrap();
        let csv = format!("{prefix_s}.csv");
        let schema = format!("{prefix_s}.schema");
        let explains = concat!(
            "{\"id\": 7, \"seed\": 1, \"n_clusters\": 3}\n",
            "{\"id\": 2, \"seed\": 2, \"n_clusters\": 3}\n",
            "{\"id\": 5, \"seed\": 3, \"n_clusters\": 2}\n",
        );
        let daemon_reqs = dir.join("daemon-reqs.jsonl");
        std::fs::write(
            &daemon_reqs,
            format!(
                "{explains}{}\n{}\n",
                "{\"id\": 90, \"op\": \"stats\"}", "{\"id\": 91, \"op\": \"shutdown\"}"
            ),
        )
        .unwrap();
        let batch_reqs = dir.join("batch-reqs.jsonl");
        std::fs::write(&batch_reqs, explains).unwrap();

        let daemon_resp = dir.join("daemon-resp.jsonl");
        let metrics = dir.join("daemon-stats.json");
        let text = run_cli(&[
            "serve-daemon",
            "--data",
            &csv,
            "--schema",
            &schema,
            "--requests",
            daemon_reqs.to_str().unwrap(),
            "--out",
            daemon_resp.to_str().unwrap(),
            "--workers",
            "2",
            "--metrics-out",
            metrics.to_str().unwrap(),
        ])
        .unwrap();
        assert!(text.contains("daemon drained (shutdown op)"), "{text}");
        assert!(text.contains("served 3, rejected 0, shed 0"), "{text}");
        assert!(text.contains("probe violations: 0"), "{text}");
        // Control acks surface in the human summary, never the stream.
        assert!(text.contains("\"op\":\"stats\""), "{text}");
        assert!(text.contains("\"queue_depth\":"), "{text}");

        // The daemon's durable stream is byte-identical to a serve-batch
        // run over the same explains: same responses, sorted by id.
        let batch_resp = dir.join("batch-resp.jsonl");
        run_cli(&[
            "serve-batch",
            "--data",
            &csv,
            "--schema",
            &schema,
            "--requests",
            batch_reqs.to_str().unwrap(),
            "--out",
            batch_resp.to_str().unwrap(),
            "--workers",
            "1",
        ])
        .unwrap();
        assert_eq!(
            std::fs::read(&daemon_resp).unwrap(),
            std::fs::read(&batch_resp).unwrap(),
            "daemon and batch streams diverged"
        );
        let body = std::fs::read_to_string(&daemon_resp).unwrap();
        assert!(
            !body.contains("\"op\":"),
            "control lines leaked onto the durable stream:\n{body}"
        );

        // --metrics-out got the final deterministic snapshot at drain.
        let stats = std::fs::read_to_string(&metrics).unwrap();
        for key in [
            "\"served\":3",
            "\"queue_depth\":",
            "\"latency_ms\":",
            "\"rejects\":",
        ] {
            assert!(stats.contains(key), "stats file misses {key}: {stats}");
        }
    }

    #[test]
    fn serve_daemon_validates_its_transport_and_queue_flags() {
        let err = run_cli(&["serve-daemon", "--queue-capacity", "0"]).unwrap_err();
        match err {
            CliError::Usage(m) => assert!(m.contains("--queue-capacity"), "{m}"),
            other => panic!("want usage error, got {other:?}"),
        }
        let err = run_cli(&[
            "serve-daemon",
            "--requests",
            "a.jsonl",
            "--socket",
            "b.sock",
        ])
        .unwrap_err();
        match err {
            CliError::Usage(m) => assert!(m.contains("mutually exclusive"), "{m}"),
            other => panic!("want usage error, got {other:?}"),
        }
        let err = run_cli(&["serve-daemon", "--resume", "--ledger-dir", "x"]).unwrap_err();
        match err {
            CliError::Usage(m) => assert!(m.contains("--resume requires --requests"), "{m}"),
            other => panic!("want usage error, got {other:?}"),
        }
    }

    #[test]
    fn serve_batch_budget_cap_limits_accepted_requests() {
        let dir = tmpdir();
        let prefix = dir.join("capped");
        let prefix_s = prefix.to_str().unwrap();
        run_cli(&[
            "generate",
            "--dataset",
            "diabetes",
            "--rows",
            "400",
            "--out",
            prefix_s,
        ])
        .unwrap();
        let reqs = dir.join("capped-reqs.jsonl");
        std::fs::write(
            &reqs,
            "{\"id\": 1}\n{\"id\": 2}\n{\"id\": 3}\n{\"id\": 4}\n",
        )
        .unwrap();
        let resp = dir.join("capped-resp.jsonl");
        // Each default request costs ε = 0.3; a 0.65 cap admits exactly 2.
        let text = run_cli(&[
            "serve-batch",
            "--data",
            &format!("{prefix_s}.csv"),
            "--schema",
            &format!("{prefix_s}.schema"),
            "--requests",
            reqs.to_str().unwrap(),
            "--out",
            resp.to_str().unwrap(),
            "--workers",
            "1",
            "--budget",
            "0.65",
        ])
        .unwrap();
        assert!(text.contains("2 ok, 2 failed"), "{text}");
        assert!(text.contains("2 accepted requests"), "{text}");
        let body = std::fs::read_to_string(&resp).unwrap();
        assert_eq!(
            body.matches("budget rejected").count(),
            2,
            "rejections surface in responses:\n{body}"
        );
    }

    #[test]
    fn serve_batch_answers_duplicate_id_and_invalid_epsilon_lines() {
        let dir = tmpdir();
        let prefix = dir.join("hostile");
        let prefix_s = prefix.to_str().unwrap();
        run_cli(&[
            "generate",
            "--dataset",
            "diabetes",
            "--rows",
            "400",
            "--out",
            prefix_s,
        ])
        .unwrap();
        let reqs = dir.join("hostile-reqs.jsonl");
        // id 1 is claimed, replayed (must reject, original still served),
        // and id 9 asks for a negative ε (must reject at the wire).
        std::fs::write(
            &reqs,
            concat!(
                "{\"id\": 1, \"seed\": 3}\n",
                "{\"id\": 2}\n",
                "{\"id\": 1, \"seed\": 99}\n",
                "{\"id\": 9, \"eps_cand\": -0.5}\n",
            ),
        )
        .unwrap();
        let resp = dir.join("hostile-resp.jsonl");
        let mut outputs = Vec::new();
        for workers in ["1", "3"] {
            let text = run_cli(&[
                "serve-batch",
                "--data",
                &format!("{prefix_s}.csv"),
                "--schema",
                &format!("{prefix_s}.schema"),
                "--requests",
                reqs.to_str().unwrap(),
                "--out",
                resp.to_str().unwrap(),
                "--workers",
                workers,
                "--budget",
                "2.0",
            ])
            .unwrap();
            assert!(text.contains("rejected 2 hostile request lines"), "{text}");
            assert!(text.contains("served 4 requests"), "{text}");
            assert!(text.contains("2 ok, 2 failed"), "{text}");
            outputs.push(std::fs::read(&resp).unwrap());
        }
        assert_eq!(outputs[0], outputs[1], "rejects broke worker determinism");
        let body = String::from_utf8(outputs[0].clone()).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 4, "one answer per request line:\n{body}");
        // id 1: the original execution first, then the replay's reject —
        // echoing the id, the typed reason, and the capped headroom.
        assert!(
            lines[0].starts_with("{\"id\":1,\"ok\":true"),
            "{}",
            lines[0]
        );
        assert!(
            lines[1].starts_with("{\"id\":1,\"ok\":false"),
            "{}",
            lines[1]
        );
        assert!(
            lines[1].contains("\"reason\":\"duplicate_id\""),
            "{}",
            lines[1]
        );
        assert!(lines[1].contains("\"eps_remaining\":"), "{}", lines[1]);
        assert!(lines[1].contains("duplicate request id 1"), "{}", lines[1]);
        assert!(
            lines[2].starts_with("{\"id\":2,\"ok\":true"),
            "{}",
            lines[2]
        );
        assert!(
            lines[3].starts_with("{\"id\":9,\"ok\":false"),
            "{}",
            lines[3]
        );
        assert!(
            lines[3].contains("\"reason\":\"invalid_epsilon\""),
            "{}",
            lines[3]
        );
        assert!(lines[3].contains("\"eps_remaining\":2"), "{}", lines[3]);
    }

    #[test]
    fn serve_batch_appends_grow_the_dataset_and_always_rerun_on_resume() {
        let dir = tmpdir();
        let prefix = dir.join("grown");
        let prefix_s = prefix.to_str().unwrap();
        run_cli(&[
            "generate",
            "--dataset",
            "diabetes",
            "--rows",
            "400",
            "--out",
            prefix_s,
        ])
        .unwrap();
        let csv = format!("{prefix_s}.csv");
        let schema = format!("{prefix_s}.schema");
        // A row of zeros is valid for every attribute (codes start at 0);
        // the CSV header tells us the arity.
        let header = std::fs::read_to_string(&csv)
            .unwrap()
            .lines()
            .next()
            .unwrap()
            .to_string();
        let arity = header.split(',').count();
        let row = format!("[{}]", vec!["0"; arity].join(","));
        let reqs = dir.join("grown-reqs.jsonl");
        std::fs::write(
            &reqs,
            format!(
                "{{\"id\": 1, \"n_clusters\": 3}}\n\
                 {{\"id\": 2, \"op\": \"append\", \"rows\": [{row}, {row}]}}\n\
                 {{\"id\": 3, \"n_clusters\": 3, \"seed\": 9}}\n"
            ),
        )
        .unwrap();
        // Byte-identical across worker counts, with the append as a barrier.
        let mut outputs = Vec::new();
        for workers in ["1", "3"] {
            let resp = dir.join(format!("grown-resp-{workers}.jsonl"));
            let text = run_cli(&[
                "serve-batch",
                "--data",
                &csv,
                "--schema",
                &schema,
                "--requests",
                reqs.to_str().unwrap(),
                "--out",
                resp.to_str().unwrap(),
                "--workers",
                workers,
            ])
            .unwrap();
            assert!(text.contains("3 ok, 0 failed"), "{text}");
            outputs.push(std::fs::read(&resp).unwrap());
        }
        assert_eq!(outputs[0], outputs[1], "workers 1 vs 3 diverged");
        let body = String::from_utf8(outputs[0].clone()).unwrap();
        let append_line = body.lines().find(|l| l.contains("\"id\":2")).unwrap();
        assert!(append_line.contains("\"op\":\"append\""), "{append_line}");
        assert!(append_line.contains("\"appended\":2"), "{append_line}");
        assert!(append_line.contains("\"total_rows\":402"), "{append_line}");

        // A resumed run keeps the explain lines but always re-executes the
        // append (the grown dataset lives in memory only), converging on the
        // same output without re-spending the kept explains' ε.
        let ledger = dir.join("grown-ledger");
        let resp = dir.join("grown-resp-durable.jsonl");
        let durable = |resume: bool| {
            let mut args = vec![
                "serve-batch",
                "--data",
                &csv,
                "--schema",
                &schema,
                "--requests",
                reqs.to_str().unwrap(),
                "--out",
                resp.to_str().unwrap(),
                "--workers",
                "2",
                "--ledger-dir",
                ledger.to_str().unwrap(),
            ];
            if resume {
                args.push("--resume");
            }
            run_cli(&args).unwrap()
        };
        durable(false);
        let first = std::fs::read(&resp).unwrap();
        let text = durable(true);
        assert!(
            text.contains("resumed: kept 2 previously written responses, re-ran 1"),
            "{text}"
        );
        assert!(text.contains("3 ok, 0 failed"), "{text}");
        assert_eq!(
            std::fs::read(&resp).unwrap(),
            first,
            "resume converged on the uninterrupted output"
        );
    }

    #[test]
    fn serve_batch_ledger_recovers_and_resume_completes_a_torn_run() {
        let dir = tmpdir();
        let prefix = dir.join("durable");
        let prefix_s = prefix.to_str().unwrap();
        run_cli(&[
            "generate",
            "--dataset",
            "diabetes",
            "--rows",
            "400",
            "--out",
            prefix_s,
        ])
        .unwrap();
        let reqs = dir.join("durable-reqs.jsonl");
        std::fs::write(
            &reqs,
            "{\"id\": 1}\n{\"id\": 2}\n{\"id\": 3}\n{\"id\": 4}\n",
        )
        .unwrap();
        let resp = dir.join("durable-resp.jsonl");
        let ledger_dir = dir.join("durable-ledger");
        let args = |extra: &[&str]| -> Vec<String> {
            let mut v: Vec<String> = [
                "serve-batch",
                "--data",
                &format!("{prefix_s}.csv"),
                "--schema",
                &format!("{prefix_s}.schema"),
                "--requests",
                reqs.to_str().unwrap(),
                "--out",
                resp.to_str().unwrap(),
                "--workers",
                "2",
                "--budget",
                "10",
                "--ledger-dir",
                ledger_dir.to_str().unwrap(),
                "--checkpoint-every",
                "3",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect();
            v.extend(extra.iter().map(|s| s.to_string()));
            v
        };
        let run = |extra: &[&str]| {
            let argv = args(extra);
            run_cli(&argv.iter().map(String::as_str).collect::<Vec<_>>())
        };

        let text = run(&[]).unwrap();
        assert!(text.contains("4 ok, 0 failed"), "{text}");
        assert!(text.contains("ε remaining = 8.800000"), "{text}");
        // Satellite: the summary reports per-shard ledger stats. A fresh run
        // replays nothing; with --checkpoint-every 3 one checkpoint lands.
        assert!(
            text.contains("ledger 'default': replayed 0 records (full history)"),
            "{text}"
        );
        assert!(text.contains("1 checkpoints written (0 failed)"), "{text}");
        assert!(
            ledger_dir.join("default.wal").is_file(),
            "per-dataset WAL lives under the ledger dir"
        );
        let reference = std::fs::read_to_string(&resp).unwrap();

        // Simulate a crash: keep two complete response lines plus a torn
        // third. The ledger still holds all four fsynced grants, so the
        // resumed run must reproduce the rest without any new spending.
        let mut torn: String = reference
            .lines()
            .take(2)
            .map(|l| format!("{l}\n"))
            .collect();
        torn.push_str("{\"id\":9"); // mid-write fragment, no newline
        std::fs::write(&resp, &torn).unwrap();

        let text = run(&["--resume"]).unwrap();
        assert!(
            text.contains("resumed: kept 2 previously written responses, re-ran 2"),
            "{text}"
        );
        assert!(text.contains("4 ok, 0 failed"), "{text}");
        // Replayed grants, no double-charging: spend is still 4 × 0.3.
        assert!(text.contains("spent ε = 1.200000"), "{text}");
        assert!(text.contains("ε remaining = 8.800000"), "{text}");
        // Satellite: resume output carries the ledger stats too — recovery
        // started from the checkpoint and replayed only the 1-grant tail.
        assert!(
            text.contains(
                "ledger 'default': replayed 2 records (from checkpoint (+1 tail records))"
            ),
            "{text}"
        );
        assert_eq!(
            std::fs::read_to_string(&resp).unwrap(),
            reference,
            "resume converged on the uninterrupted output"
        );
    }

    #[test]
    fn serve_batch_resume_requires_a_ledger() {
        let err = run_cli(&["serve-batch", "--resume"]).unwrap_err();
        match err {
            CliError::Usage(m) => assert!(m.contains("--resume requires --ledger-dir"), "{m}"),
            other => panic!("expected usage error, got {other:?}"),
        }
    }

    #[test]
    fn serve_batch_rejects_the_removed_single_file_ledger_flag() {
        let err = run_cli(&["serve-batch", "--ledger", "x.wal"]).unwrap_err();
        match err {
            CliError::Usage(m) => assert!(m.contains("--ledger-dir"), "{m}"),
            other => panic!("expected usage error, got {other:?}"),
        }
    }

    #[test]
    fn serve_batch_checkpoint_every_requires_a_ledger_dir() {
        let err = run_cli(&["serve-batch", "--checkpoint-every", "4"]).unwrap_err();
        match err {
            CliError::Usage(m) => assert!(m.contains("requires --ledger-dir"), "{m}"),
            other => panic!("expected usage error, got {other:?}"),
        }
    }

    #[test]
    fn serve_batch_group_commit_flags_validate_and_preserve_output() {
        let dir = tmpdir();
        let prefix = dir.join("grouped");
        let prefix_s = prefix.to_str().unwrap();
        run_cli(&[
            "generate",
            "--dataset",
            "diabetes",
            "--rows",
            "400",
            "--out",
            prefix_s,
        ])
        .unwrap();
        let reqs = dir.join("grouped-reqs.jsonl");
        let lines: String = (1..=6).map(|id| format!("{{\"id\": {id}}}\n")).collect();
        std::fs::write(&reqs, lines).unwrap();
        let csv = format!("{prefix_s}.csv");
        let schema = format!("{prefix_s}.schema");
        let serve = |resp: &str, ledger: &str, extra: &[&str]| {
            let mut args = vec![
                "serve-batch",
                "--data",
                &csv,
                "--schema",
                &schema,
                "--requests",
                reqs.to_str().unwrap(),
                "--out",
                resp,
                "--workers",
                "4",
                "--ledger-dir",
                ledger,
            ];
            args.extend_from_slice(extra);
            run_cli(&args).unwrap()
        };
        // Per-grant reference vs group-committed run: the response stream
        // must be byte-identical (batching changes fsync scheduling, never
        // results), and both recover to the same durable spend.
        let base_resp = dir.join("grouped-base.jsonl");
        let grouped_resp = dir.join("grouped-batched.jsonl");
        let text = serve(
            base_resp.to_str().unwrap(),
            dir.join("grouped-ledger-base").to_str().unwrap(),
            &[],
        );
        assert!(text.contains("6 ok, 0 failed"), "{text}");
        let text = serve(
            grouped_resp.to_str().unwrap(),
            dir.join("grouped-ledger-gc").to_str().unwrap(),
            &["--group-commit-max-wait-us", "2000"],
        );
        assert!(text.contains("6 ok, 0 failed"), "{text}");
        assert!(text.contains("grants/fsync"), "{text}");
        assert!(text.contains("single-flight waits"), "{text}");
        assert_eq!(
            std::fs::read(&base_resp).unwrap(),
            std::fs::read(&grouped_resp).unwrap(),
            "group commit must not change served bytes"
        );

        // The flags are durable-only.
        let err = run_cli(&["serve-batch", "--group-commit-max-batch", "8"]).unwrap_err();
        match err {
            CliError::Usage(m) => assert!(m.contains("require --ledger-dir"), "{m}"),
            other => panic!("expected usage error, got {other:?}"),
        }
    }

    #[test]
    fn serve_batch_deadline_times_out_requests_without_spending() {
        let dir = tmpdir();
        let prefix = dir.join("deadline");
        let prefix_s = prefix.to_str().unwrap();
        run_cli(&[
            "generate",
            "--dataset",
            "diabetes",
            "--rows",
            "400",
            "--out",
            prefix_s,
        ])
        .unwrap();
        let reqs = dir.join("deadline-reqs.jsonl");
        std::fs::write(&reqs, "{\"id\": 1}\n{\"id\": 2}\n").unwrap();
        let resp = dir.join("deadline-resp.jsonl");
        let text = run_cli(&[
            "serve-batch",
            "--data",
            &format!("{prefix_s}.csv"),
            "--schema",
            &format!("{prefix_s}.schema"),
            "--requests",
            reqs.to_str().unwrap(),
            "--out",
            resp.to_str().unwrap(),
            "--workers",
            "1",
            "--budget",
            "1.0",
            "--deadline-ms",
            "0",
        ])
        .unwrap();
        assert!(text.contains("0 ok, 2 failed"), "{text}");
        // An already-expired deadline is caught before the grant commits:
        // the requests are turned away with the cap's full headroom intact.
        assert!(text.contains("spent ε = 0.000000"), "{text}");
        assert!(text.contains("ε remaining = 1.000000"), "{text}");
        let body = std::fs::read_to_string(&resp).unwrap();
        assert_eq!(body.matches("\"reason\":\"deadline_exceeded\"").count(), 2);
        assert!(body.contains("\"eps_remaining\":"), "{body}");
    }

    #[test]
    fn serve_batch_rejects_malformed_request_files() {
        let dir = tmpdir();
        let prefix = dir.join("badreq");
        let prefix_s = prefix.to_str().unwrap();
        run_cli(&[
            "generate",
            "--dataset",
            "so",
            "--rows",
            "200",
            "--out",
            prefix_s,
        ])
        .unwrap();
        let reqs = dir.join("badreq.jsonl");
        std::fs::write(&reqs, "{\"id\": 1}\nnot json at all\n").unwrap();
        let err = run_cli(&[
            "serve-batch",
            "--data",
            &format!("{prefix_s}.csv"),
            "--schema",
            &format!("{prefix_s}.schema"),
            "--requests",
            reqs.to_str().unwrap(),
            "--out",
            dir.join("badreq-out.jsonl").to_str().unwrap(),
        ])
        .unwrap_err();
        match err {
            CliError::Usage(m) => assert!(m.contains("line 2"), "{m}"),
            other => panic!("expected usage error, got {other:?}"),
        }
    }

    #[test]
    fn report_writes_markdown_file() {
        let dir = tmpdir();
        let prefix = dir.join("rep");
        let prefix_s = prefix.to_str().unwrap();
        run_cli(&[
            "generate",
            "--dataset",
            "diabetes",
            "--rows",
            "800",
            "--out",
            prefix_s,
        ])
        .unwrap();
        let csv = format!("{prefix_s}.csv");
        let schema = format!("{prefix_s}.schema");
        let md_path = dir.join("report.md");
        let md_path_s = md_path.to_str().unwrap();
        let text = run_cli(&[
            "report",
            "--data",
            &csv,
            "--schema",
            &schema,
            "--clusters",
            "2",
            "--report-out",
            md_path_s,
            "--title",
            "Ward 7 clusters",
        ])
        .unwrap();
        assert!(text.contains("wrote markdown report"));
        let md = std::fs::read_to_string(md_path).unwrap();
        assert!(md.starts_with("# Ward 7 clusters"));
        assert!(md.contains("## Privacy audit"));
    }

    #[test]
    fn explain_rejects_bad_method_and_cluster_count() {
        let dir = tmpdir();
        let prefix = dir.join("tiny");
        let prefix_s = prefix.to_str().unwrap();
        run_cli(&[
            "generate",
            "--dataset",
            "so",
            "--rows",
            "200",
            "--out",
            prefix_s,
        ])
        .unwrap();
        let csv = format!("{prefix_s}.csv");
        let schema = format!("{prefix_s}.schema");
        assert!(matches!(
            run_cli(&[
                "explain",
                "--data",
                &csv,
                "--schema",
                &schema,
                "--clusters",
                "2",
                "--method",
                "dbscan",
            ]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_cli(&[
                "explain",
                "--data",
                &csv,
                "--schema",
                &schema,
                "--clusters",
                "0"
            ]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn missing_files_are_io_errors() {
        assert!(matches!(
            run_cli(&[
                "explain",
                "--data",
                "/nonexistent.csv",
                "--schema",
                "/nonexistent.schema",
                "--clusters",
                "2",
            ]),
            Err(CliError::Io(_))
        ));
    }

    #[test]
    fn generate_rejects_unknown_dataset() {
        assert!(matches!(
            run_cli(&["generate", "--dataset", "mnist", "--out", "/tmp/x"]),
            Err(CliError::Usage(_))
        ));
    }
}
