//! The crash matrix: `serve-batch` under every single-point kill.
//!
//! For each named fault point on the serving path, a child `dpclustx-cli`
//! process is armed (via `DPX_CRASH_AT=point:nth`) to abort — no unwinding,
//! no flushes — at a seeded hit count, then restarted with `--resume` against
//! the same sharded ledger directory. Every run checkpoints aggressively
//! (`--checkpoint-every 2`), so the kill schedule also lands *inside* the
//! checkpoint's compact-and-truncate (before and after the atomic rename that
//! replaces the WAL). After every kill the matrix asserts the recovery
//! invariants the design document promises:
//!
//! 1. the recovered spend covers every response the crashed run managed to
//!    flush (no output without a durable grant) and never exceeds the cap —
//!    whether recovery starts from a checkpoint record or full history;
//! 2. the union of pre-crash and post-recovery responses is byte-identical
//!    to an uninterrupted run — at 1 worker and at 4.
//!
//! Everything is seeded; nothing asserts wall-clock time, so the matrix is
//! deterministic in CI.

use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_dpclustx-cli");
const CAP: f64 = 10.0;
/// Default ε split per request: eps_cand + eps_comb + eps_hist = 0.3.
const EPS_PER_REQUEST: f64 = 0.3;
const N_REQUESTS: usize = 5;

const POINTS: [&str; 8] = [
    "ledger.pre_fsync",
    "ledger.post_fsync",
    "ledger.ckpt_pre_rename",
    "ledger.ckpt_post_rename",
    "shard.pre_append",
    "service.pre_spend",
    "service.post_spend",
    "service.post_respond",
];

/// Fault points inside the group-commit leader's single-fsync append: between
/// writing the batch's records and syncing them, and between the sync and the
/// followers' wakeup. A kill at either lands while every ack of the batch is
/// still pending.
const GROUP_POINTS: [&str; 2] = ["ledger.group_pre_fsync", "ledger.group_post_fsync"];

/// Seeded nth-hit choices (no `rand` in the test: a bare LCG is plenty).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

fn tmpdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dpx-crash-matrix-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_ok(args: &[&str]) -> Output {
    let output = Command::new(BIN).args(args).output().expect("spawn cli");
    assert!(
        output.status.success(),
        "{:?} failed:\n{}",
        args,
        String::from_utf8_lossy(&output.stderr)
    );
    output
}

fn serve_args(
    csv: &str,
    schema: &str,
    reqs: &Path,
    out: &Path,
    workers: usize,
    ledger: Option<&Path>,
    resume: bool,
) -> Vec<String> {
    let mut args = vec![
        "serve-batch".to_string(),
        "--data".into(),
        csv.to_string(),
        "--schema".into(),
        schema.to_string(),
        "--requests".into(),
        reqs.to_str().unwrap().to_string(),
        "--out".into(),
        out.to_str().unwrap().to_string(),
        "--workers".into(),
        workers.to_string(),
        "--budget".into(),
        CAP.to_string(),
    ];
    if let Some(ledger) = ledger {
        args.push("--ledger-dir".into());
        args.push(ledger.to_str().unwrap().to_string());
        args.push("--checkpoint-every".into());
        args.push("2".into());
    }
    if resume {
        args.push("--resume".into());
    }
    args
}

/// The ids of complete, ok-marked response lines in a possibly-torn file.
fn flushed_ok_ids(out: &Path) -> HashSet<u64> {
    let text = match std::fs::read_to_string(out) {
        Ok(text) => text,
        Err(_) => return HashSet::new(), // crash before the first response
    };
    let mut lines: Vec<&str> = text.lines().collect();
    if !text.ends_with('\n') {
        lines.pop(); // torn final line
    }
    lines
        .iter()
        .filter_map(|line| {
            let json = dpx_serve::Json::parse(line).ok()?;
            if json.get("ok").and_then(dpx_serve::Json::as_bool)? {
                json.get("id").and_then(dpx_serve::Json::as_u64)
            } else {
                None
            }
        })
        .collect()
}

#[test]
fn every_single_point_kill_recovers_to_the_uninterrupted_output() {
    let dir = tmpdir();
    let prefix = dir.join("matrix");
    let prefix_s = prefix.to_str().unwrap().to_string();
    run_ok(&[
        "generate",
        "--dataset",
        "diabetes",
        "--rows",
        "400",
        "--out",
        &prefix_s,
    ]);
    let csv = format!("{prefix_s}.csv");
    let schema = format!("{prefix_s}.schema");
    let reqs = dir.join("matrix-reqs.jsonl");
    std::fs::write(
        &reqs,
        (1..=N_REQUESTS)
            .map(|id| format!("{{\"id\": {id}, \"seed\": {id}}}\n"))
            .collect::<String>(),
    )
    .unwrap();

    // Uninterrupted reference: byte-identical at 1 and 4 workers.
    let reference = {
        let mut outs = Vec::new();
        for workers in [1usize, 4] {
            let out = dir.join(format!("reference-w{workers}.jsonl"));
            let args = serve_args(&csv, &schema, &reqs, &out, workers, None, false);
            let argv: Vec<&str> = args.iter().map(String::as_str).collect();
            run_ok(&argv);
            outs.push(std::fs::read(&out).unwrap());
        }
        assert_eq!(outs[0], outs[1], "reference diverged across worker counts");
        outs.remove(0)
    };

    let mut lcg = Lcg(0x5eed_2026);
    let mut scenarios = 0usize;
    let mut crashed = 0usize;
    for workers in [1usize, 4] {
        for point in POINTS {
            // Two seeded hit counts per point; dedup keeps the run count flat.
            let nths: HashSet<u64> = (0..2).map(|_| 1 + lcg.next() % 4).collect();
            for nth in nths {
                scenarios += 1;
                let tag = format!("w{workers}-{}-{nth}", point.replace('.', "_"));
                let out = dir.join(format!("{tag}.jsonl"));
                let ledger_dir = dir.join(format!("{tag}-ledger"));
                let wal = ledger_dir.join("default.wal");
                let _ = std::fs::remove_file(&out);
                let _ = std::fs::remove_dir_all(&ledger_dir);

                let args = serve_args(&csv, &schema, &reqs, &out, workers, Some(&ledger_dir), true);
                let killed = Command::new(BIN)
                    .args(&args)
                    .env("DPX_CRASH_AT", format!("{point}:{nth}"))
                    .output()
                    .expect("spawn armed cli");
                if killed.status.success() {
                    // The point was hit fewer than nth times: nothing to
                    // recover, but the completed run must match the reference.
                    assert_eq!(
                        std::fs::read(&out).unwrap(),
                        reference,
                        "[{tag}] un-triggered run diverged"
                    );
                } else {
                    crashed += 1;
                    let stderr = String::from_utf8_lossy(&killed.stderr);
                    assert!(
                        stderr.contains("injected crash at"),
                        "[{tag}] died without the injection marker:\n{stderr}"
                    );
                }

                // Invariant 1: whatever the kill left behind, the shard's
                // ledger covers every flushed response and respects the cap
                // — via its checkpoint record, its grant tail, or both.
                let recovery = dpx_dp::ledger::recover(&wal).expect("ledger recovers");
                let spent = recovery.spent();
                assert!(
                    spent <= CAP + 1e-9,
                    "[{tag}] recovered spend {spent} exceeds cap {CAP}"
                );
                let grant_ids: HashSet<u64> = recovery.granted_ids().collect();
                let ok_ids = flushed_ok_ids(&out);
                for id in &ok_ids {
                    assert!(
                        grant_ids.contains(id),
                        "[{tag}] response {id} was flushed without a durable grant"
                    );
                }
                assert!(
                    spent + 1e-9 >= EPS_PER_REQUEST * ok_ids.len() as f64,
                    "[{tag}] spend {spent} does not cover {} flushed responses",
                    ok_ids.len()
                );

                // Invariant 2: resume converges on the uninterrupted bytes.
                let argv: Vec<&str> = args.iter().map(String::as_str).collect();
                run_ok(&argv);
                assert_eq!(
                    std::fs::read(&out).unwrap(),
                    reference,
                    "[{tag}] resumed output diverged from the uninterrupted run"
                );
                let settled = dpx_dp::ledger::recover(&wal).expect("ledger recovers");
                let expected = EPS_PER_REQUEST * N_REQUESTS as f64;
                assert!(
                    (settled.spent() - expected).abs() < 1e-9,
                    "[{tag}] settled spend {} != {expected} (double-spend?)",
                    settled.spent()
                );
                let settled_ids: HashSet<u64> = settled.granted_ids().collect();
                assert_eq!(
                    settled_ids,
                    (1..=N_REQUESTS as u64).collect::<HashSet<u64>>(),
                    "[{tag}] each request holds exactly one grant"
                );
            }
        }
    }
    assert!(
        crashed >= scenarios / 2,
        "only {crashed}/{scenarios} schedules actually fired — the matrix is \
         not exercising the kill paths"
    );
}

/// Kills mid-batch under group commit. A kill at either group fault point
/// happens while the leader still holds the accountant lock and **no** spend
/// of the batch has acked, so the batched grants' responses are all-or-none:
/// the crashed run can never have flushed a response whose grant is not
/// durable, the recovered spend is a whole number of grants (no torn,
/// half-counted record) under the cap, and `--resume` converges on the
/// uninterrupted bytes without double-charging.
#[test]
fn group_commit_kill_mid_batch_recovers_all_or_none() {
    let dir = tmpdir();
    let prefix = dir.join("gcmatrix");
    let prefix_s = prefix.to_str().unwrap().to_string();
    run_ok(&[
        "generate",
        "--dataset",
        "diabetes",
        "--rows",
        "400",
        "--out",
        &prefix_s,
    ]);
    let csv = format!("{prefix_s}.csv");
    let schema = format!("{prefix_s}.schema");
    let reqs = dir.join("gcmatrix-reqs.jsonl");
    std::fs::write(
        &reqs,
        (1..=N_REQUESTS)
            .map(|id| format!("{{\"id\": {id}, \"seed\": {id}}}\n"))
            .collect::<String>(),
    )
    .unwrap();
    // A generous window so 4 concurrent workers reliably share fsyncs.
    let group_flags = ["--group-commit-max-wait-us", "50000"];

    // Uninterrupted reference at 4 workers, per-grant commits — group commit
    // must reproduce these bytes exactly, crash or no crash.
    let reference = {
        let out = dir.join("gc-reference.jsonl");
        let args = serve_args(&csv, &schema, &reqs, &out, 4, None, false);
        let argv: Vec<&str> = args.iter().map(String::as_str).collect();
        run_ok(&argv);
        std::fs::read(&out).unwrap()
    };
    {
        // Sanity: an uninterrupted grouped run matches and actually batched.
        let out = dir.join("gc-grouped.jsonl");
        let ledger_dir = dir.join("gc-grouped-ledger");
        let mut args = serve_args(&csv, &schema, &reqs, &out, 4, Some(&ledger_dir), false);
        args.extend(group_flags.iter().map(|s| s.to_string()));
        let argv: Vec<&str> = args.iter().map(String::as_str).collect();
        let output = run_ok(&argv);
        assert_eq!(std::fs::read(&out).unwrap(), reference);
        let stdout = String::from_utf8_lossy(&output.stdout);
        assert!(
            stdout.contains("grants/fsync"),
            "group commit never engaged:\n{stdout}"
        );
    }

    let mut crashed = 0usize;
    let mut scenarios = 0usize;
    for point in GROUP_POINTS {
        // Early hits only: with 5 requests over a wide window the run commits
        // few batches, and the matrix must land inside one.
        for nth in [1u64, 2] {
            scenarios += 1;
            let tag = format!("gc-{}-{nth}", point.replace('.', "_"));
            let out = dir.join(format!("{tag}.jsonl"));
            let ledger_dir = dir.join(format!("{tag}-ledger"));
            let wal = ledger_dir.join("default.wal");
            let mut args = serve_args(&csv, &schema, &reqs, &out, 4, Some(&ledger_dir), true);
            args.extend(group_flags.iter().map(|s| s.to_string()));
            let killed = Command::new(BIN)
                .args(&args)
                .env("DPX_CRASH_AT", format!("{point}:{nth}"))
                .output()
                .expect("spawn armed cli");
            if killed.status.success() {
                assert_eq!(
                    std::fs::read(&out).unwrap(),
                    reference,
                    "[{tag}] un-triggered run diverged"
                );
            } else {
                crashed += 1;
                let stderr = String::from_utf8_lossy(&killed.stderr);
                assert!(
                    stderr.contains("injected crash at"),
                    "[{tag}] died without the injection marker:\n{stderr}"
                );
            }

            let recovery = dpx_dp::ledger::recover(&wal).expect("ledger recovers");
            let spent = recovery.spent();
            assert!(
                spent <= CAP + 1e-9,
                "[{tag}] recovered spend {spent} exceeds cap {CAP}"
            );
            // All-or-none at grant granularity: the recovered spend is an
            // integral number of whole 0.3-ε grants.
            let grants = spent / EPS_PER_REQUEST;
            assert!(
                (grants - grants.round()).abs() < 1e-6,
                "[{tag}] recovered spend {spent} is not a whole number of grants"
            );
            // All-or-none at response granularity: every flushed ok response
            // has a durable grant (a mid-batch kill precedes every ack of
            // that batch, so its responses are *none*; earlier batches that
            // fully acked may be *all* flushed).
            let grant_ids: HashSet<u64> = recovery.granted_ids().collect();
            let ok_ids = flushed_ok_ids(&out);
            for id in &ok_ids {
                assert!(
                    grant_ids.contains(id),
                    "[{tag}] response {id} was flushed without a durable grant"
                );
            }
            assert!(
                spent + 1e-9 >= EPS_PER_REQUEST * ok_ids.len() as f64,
                "[{tag}] spend {spent} does not cover {} flushed responses",
                ok_ids.len()
            );

            // Resume (still under group commit) converges: reference bytes,
            // exactly one grant per request, no double-spend.
            let argv: Vec<&str> = args.iter().map(String::as_str).collect();
            run_ok(&argv);
            assert_eq!(
                std::fs::read(&out).unwrap(),
                reference,
                "[{tag}] resumed output diverged from the uninterrupted run"
            );
            let settled = dpx_dp::ledger::recover(&wal).expect("ledger recovers");
            let expected = EPS_PER_REQUEST * N_REQUESTS as f64;
            assert!(
                (settled.spent() - expected).abs() < 1e-9,
                "[{tag}] settled spend {} != {expected} (double-spend?)",
                settled.spent()
            );
            let settled_ids: HashSet<u64> = settled.granted_ids().collect();
            assert_eq!(
                settled_ids,
                (1..=N_REQUESTS as u64).collect::<HashSet<u64>>(),
                "[{tag}] each request holds exactly one grant"
            );
        }
    }
    assert!(
        crashed >= scenarios / 2,
        "only {crashed}/{scenarios} group-commit kills actually fired"
    );
}

/// Kills at the group-commit fault points while an **abuse storm** — not a
/// quiet batch — is in flight: honest small requests racing a budget whale
/// (a 1.2-ε request), already-expired zero-deadline straddlers, and a
/// duplicate-id replay line. The recovery invariants are unchanged from the
/// quiet matrix, but now over hostile traffic:
///
/// 1. every grant the ledger recovers belongs to a request that is allowed
///    to spend (straddlers and the replay can never hold one), and the
///    recovered spend equals the per-id ε sum over exactly those grants —
///    computed from the request file, since mixed ε breaks whole-multiple
///    checks;
/// 2. every flushed ok response has a durable grant;
/// 3. `--resume` converges on the uninterrupted bytes, including the
///    deterministic straddler rejections and the replay's wire reject line.
///
/// The run is deliberately uncapped: a cap would attach admission-order-
/// dependent `eps_remaining` values to the straddler error lines and break
/// the byte-identity assertion.
#[test]
fn group_commit_kill_during_abuse_storm_recovers_cleanly() {
    let dir = tmpdir();
    let prefix = dir.join("stormmatrix");
    let prefix_s = prefix.to_str().unwrap().to_string();
    run_ok(&[
        "generate",
        "--dataset",
        "diabetes",
        "--rows",
        "400",
        "--out",
        &prefix_s,
    ]);
    let csv = format!("{prefix_s}.csv");
    let schema = format!("{prefix_s}.schema");
    let reqs = dir.join("stormmatrix-reqs.jsonl");
    let mut traffic = String::new();
    for id in 1..=6u64 {
        traffic.push_str(&format!("{{\"id\": {id}, \"seed\": {id}}}\n"));
    }
    // The whale: one request asking for 4x the default budget.
    traffic.push_str(
        "{\"id\": 100, \"seed\": 100, \"eps_cand\": 0.4, \"eps_comb\": 0.4, \"eps_hist\": 0.4}\n",
    );
    // Straddlers: already expired on arrival, must never reach the ledger.
    traffic.push_str("{\"id\": 200, \"deadline_ms\": 0}\n");
    traffic.push_str("{\"id\": 201, \"deadline_ms\": 0}\n");
    // A replay of id 1: rejected at the wire, answered on the stream.
    traffic.push_str("{\"id\": 1, \"seed\": 77}\n");
    std::fs::write(&reqs, traffic).unwrap();

    // ε per id that may legally hold a grant; straddlers and the replay
    // line must never appear in the ledger at all.
    let eps_of = |id: u64| -> Option<f64> {
        match id {
            1..=6 => Some(EPS_PER_REQUEST),
            100 => Some(1.2),
            _ => None,
        }
    };
    let settled_expected: HashSet<u64> = (1..=6u64).chain([100]).collect();
    let settled_eps = 6.0 * EPS_PER_REQUEST + 1.2;

    let storm_args = |out: &Path, workers: usize, ledger: Option<&Path>| -> Vec<String> {
        let mut args = vec![
            "serve-batch".to_string(),
            "--data".into(),
            csv.clone(),
            "--schema".into(),
            schema.clone(),
            "--requests".into(),
            reqs.to_str().unwrap().to_string(),
            "--out".into(),
            out.to_str().unwrap().to_string(),
            "--workers".into(),
            workers.to_string(),
        ];
        if let Some(ledger) = ledger {
            for flag in [
                "--ledger-dir",
                ledger.to_str().unwrap(),
                "--checkpoint-every",
                "2",
                "--group-commit-max-wait-us",
                "50000",
                "--resume",
            ] {
                args.push(flag.to_string());
            }
        }
        args
    };

    // Uninterrupted reference: the storm's answer stream is byte-identical
    // at 1 and 4 workers, hostile lines included.
    let reference = {
        let mut outs = Vec::new();
        for workers in [1usize, 4] {
            let out = dir.join(format!("storm-reference-w{workers}.jsonl"));
            let args = storm_args(&out, workers, None);
            let argv: Vec<&str> = args.iter().map(String::as_str).collect();
            run_ok(&argv);
            outs.push(std::fs::read(&out).unwrap());
        }
        assert_eq!(outs[0], outs[1], "storm reference diverged across workers");
        outs.remove(0)
    };
    let reference_text = String::from_utf8(reference.clone()).unwrap();
    assert!(
        reference_text.contains("\"reason\":\"duplicate_id\""),
        "the storm's replay line never surfaced:\n{reference_text}"
    );
    assert!(
        reference_text.contains("\"reason\":\"deadline_exceeded\""),
        "the storm's straddlers never surfaced:\n{reference_text}"
    );

    let mut crashed = 0usize;
    let mut scenarios = 0usize;
    for point in GROUP_POINTS {
        for nth in [1u64, 2] {
            scenarios += 1;
            let tag = format!("storm-{}-{nth}", point.replace('.', "_"));
            let out = dir.join(format!("{tag}.jsonl"));
            let ledger_dir = dir.join(format!("{tag}-ledger"));
            let wal = ledger_dir.join("default.wal");
            let args = storm_args(&out, 4, Some(&ledger_dir));
            let killed = Command::new(BIN)
                .args(&args)
                .env("DPX_CRASH_AT", format!("{point}:{nth}"))
                .output()
                .expect("spawn armed cli");
            if killed.status.success() {
                assert_eq!(
                    std::fs::read(&out).unwrap(),
                    reference,
                    "[{tag}] un-triggered run diverged"
                );
            } else {
                crashed += 1;
                let stderr = String::from_utf8_lossy(&killed.stderr);
                assert!(
                    stderr.contains("injected crash at"),
                    "[{tag}] died without the injection marker:\n{stderr}"
                );
            }

            // Invariant 1: only spend-eligible ids hold grants, and the
            // recovered spend is exactly the per-id ε sum over them.
            let recovery = dpx_dp::ledger::recover(&wal).expect("ledger recovers");
            let grant_ids: HashSet<u64> = recovery.granted_ids().collect();
            let mut expected_spend = 0.0;
            for id in &grant_ids {
                match eps_of(*id) {
                    Some(eps) => expected_spend += eps,
                    None => panic!("[{tag}] id {id} must never hold a grant"),
                }
            }
            let spent = recovery.spent();
            assert!(
                (spent - expected_spend).abs() < 1e-9,
                "[{tag}] recovered spend {spent} != per-id sum {expected_spend}"
            );

            // Invariant 2: no flushed ok response without a durable grant.
            let ok_ids = flushed_ok_ids(&out);
            for id in &ok_ids {
                assert!(
                    grant_ids.contains(id),
                    "[{tag}] response {id} was flushed without a durable grant"
                );
            }

            // Invariant 3: resume converges on the uninterrupted bytes and
            // settles on exactly one grant per spend-eligible request.
            let argv: Vec<&str> = args.iter().map(String::as_str).collect();
            run_ok(&argv);
            assert_eq!(
                std::fs::read(&out).unwrap(),
                reference,
                "[{tag}] resumed storm output diverged"
            );
            let settled = dpx_dp::ledger::recover(&wal).expect("ledger recovers");
            assert!(
                (settled.spent() - settled_eps).abs() < 1e-9,
                "[{tag}] settled spend {} != {settled_eps} (double-spend?)",
                settled.spent()
            );
            let settled_ids: HashSet<u64> = settled.granted_ids().collect();
            assert_eq!(
                settled_ids, settled_expected,
                "[{tag}] settled grants must cover exactly the spenders"
            );
        }
    }
    assert!(
        crashed >= scenarios / 2,
        "only {crashed}/{scenarios} storm kills actually fired"
    );
}

/// Fault points on the daemon's shutdown path, in drain order: after the
/// workers joined but before any shard checkpoint, inside the drain
/// checkpoint's compact-and-truncate (before and after the atomic rename),
/// plus one mid-serve kill (`service.post_respond:2`) for the pre-drain
/// contrast. No `--checkpoint-every` is passed, so the `ledger.ckpt_*`
/// points can only fire inside `{"op":"shutdown"}`'s drain checkpoint —
/// the kill provably lands mid-drain.
const DAEMON_POINTS: [(&str, u64); 4] = [
    ("service.post_respond", 2),
    ("daemon.pre_drain_checkpoint", 1),
    ("ledger.ckpt_pre_rename", 1),
    ("ledger.ckpt_post_rename", 1),
];

/// Kills `serve-daemon` at every point of its drain sequence. The daemon's
/// promise is that shutdown is just another crash the ledger already
/// survives: whether the kill lands mid-serve, after the workers drained
/// but before the checkpoint, or inside the checkpoint's rename, the WAL
/// recovers every flushed response's grant under the cap, and a `--resume`
/// run (same request file, shutdown op included) converges byte-identically
/// on the uninterrupted run's sorted response stream.
#[test]
fn daemon_kill_mid_drain_recovers_to_the_uninterrupted_output() {
    let dir = tmpdir();
    let prefix = dir.join("daemonmatrix");
    let prefix_s = prefix.to_str().unwrap().to_string();
    run_ok(&[
        "generate",
        "--dataset",
        "diabetes",
        "--rows",
        "400",
        "--out",
        &prefix_s,
    ]);
    let csv = format!("{prefix_s}.csv");
    let schema = format!("{prefix_s}.schema");
    let reqs = dir.join("daemonmatrix-reqs.jsonl");
    let mut traffic: String = (1..=N_REQUESTS)
        .map(|id| format!("{{\"id\": {id}, \"seed\": {id}}}\n"))
        .collect();
    // The daemon's SIGTERM equivalent: admission closes, the queue drains,
    // every shard checkpoints. The kill schedule lands inside that sequence.
    traffic.push_str("{\"id\": 99, \"op\": \"shutdown\"}\n");
    std::fs::write(&reqs, traffic).unwrap();

    let daemon_args = |out: &Path, ledger: Option<&Path>, resume: bool| -> Vec<String> {
        let mut args = vec![
            "serve-daemon".to_string(),
            "--data".into(),
            csv.clone(),
            "--schema".into(),
            schema.clone(),
            "--requests".into(),
            reqs.to_str().unwrap().to_string(),
            "--out".into(),
            out.to_str().unwrap().to_string(),
            "--workers".into(),
            "2".into(),
            "--budget".into(),
            CAP.to_string(),
        ];
        if let Some(ledger) = ledger {
            args.push("--ledger-dir".into());
            args.push(ledger.to_str().unwrap().to_string());
        }
        if resume {
            args.push("--resume".into());
        }
        args
    };

    // Uninterrupted reference: the daemon's sorted durable stream.
    let reference = {
        let out = dir.join("daemon-reference.jsonl");
        let args = daemon_args(&out, None, false);
        let argv: Vec<&str> = args.iter().map(String::as_str).collect();
        let output = run_ok(&argv);
        let stdout = String::from_utf8_lossy(&output.stdout);
        assert!(
            stdout.contains("daemon drained (shutdown op)"),
            "reference run never drained:\n{stdout}"
        );
        assert!(stdout.contains("probe violations: 0"), "{stdout}");
        std::fs::read(&out).unwrap()
    };

    let mut crashed = 0usize;
    for (point, nth) in DAEMON_POINTS {
        let tag = format!("daemon-{}-{nth}", point.replace('.', "_"));
        let out = dir.join(format!("{tag}.jsonl"));
        let ledger_dir = dir.join(format!("{tag}-ledger"));
        let wal = ledger_dir.join("default.wal");

        let args = daemon_args(&out, Some(&ledger_dir), false);
        let killed = Command::new(BIN)
            .args(&args)
            .env("DPX_CRASH_AT", format!("{point}:{nth}"))
            .output()
            .expect("spawn armed daemon");
        if killed.status.success() {
            assert_eq!(
                std::fs::read(&out).unwrap(),
                reference,
                "[{tag}] un-triggered run diverged"
            );
        } else {
            crashed += 1;
            let stderr = String::from_utf8_lossy(&killed.stderr);
            assert!(
                stderr.contains("injected crash at"),
                "[{tag}] died without the injection marker:\n{stderr}"
            );
        }

        // Invariant 1: wherever in the drain the kill landed, the WAL
        // recovers every flushed response's grant under the cap.
        let recovery = dpx_dp::ledger::recover(&wal).expect("ledger recovers");
        let spent = recovery.spent();
        assert!(
            spent <= CAP + 1e-9,
            "[{tag}] recovered spend {spent} exceeds cap {CAP}"
        );
        let grant_ids: HashSet<u64> = recovery.granted_ids().collect();
        let ok_ids = flushed_ok_ids(&out);
        for id in &ok_ids {
            assert!(
                grant_ids.contains(id),
                "[{tag}] response {id} was flushed without a durable grant"
            );
        }
        assert!(
            spent + 1e-9 >= EPS_PER_REQUEST * ok_ids.len() as f64,
            "[{tag}] spend {spent} does not cover {} flushed responses",
            ok_ids.len()
        );

        // Invariant 2: the resumed daemon keeps the served lines, re-runs
        // the rest, drains cleanly, and converges on the reference bytes.
        let args = daemon_args(&out, Some(&ledger_dir), true);
        let argv: Vec<&str> = args.iter().map(String::as_str).collect();
        let output = run_ok(&argv);
        let stdout = String::from_utf8_lossy(&output.stdout);
        assert!(
            stdout.contains("daemon drained (shutdown op)"),
            "[{tag}] resumed daemon never drained:\n{stdout}"
        );
        assert_eq!(
            std::fs::read(&out).unwrap(),
            reference,
            "[{tag}] resumed output diverged from the uninterrupted run"
        );
        let settled = dpx_dp::ledger::recover(&wal).expect("ledger recovers");
        let expected = EPS_PER_REQUEST * N_REQUESTS as f64;
        assert!(
            (settled.spent() - expected).abs() < 1e-9,
            "[{tag}] settled spend {} != {expected} (double-spend?)",
            settled.spent()
        );
        let settled_ids: HashSet<u64> = settled.granted_ids().collect();
        assert_eq!(
            settled_ids,
            (1..=N_REQUESTS as u64).collect::<HashSet<u64>>(),
            "[{tag}] each request holds exactly one grant"
        );
    }
    assert_eq!(
        crashed,
        DAEMON_POINTS.len(),
        "every daemon drain kill is deterministic and must fire"
    );
}
