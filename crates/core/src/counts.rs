//! Count tables feeding the quality functions.
//!
//! Every quality function — private or sensitive — is arithmetic over the
//! counts `cnt_{A=v}(D_c)` and `cnt_{A=v}(D)`. [`ScoreTable`] caches those per
//! attribute as `f64` so the *same* scoring code serves two regimes:
//!
//! * **exact counts** from a [`dpx_data::contingency::ClusteredCounts`] (used
//!   by DPClustX itself, whose privacy comes from noisy *selection*, and by
//!   the non-private TabEE baseline), and
//! * **noisy counts** reconstructed from DP histograms (used by the DP-Naive
//!   baseline, which privatizes all histograms up front and then selects by
//!   post-processing).

use dpx_data::contingency::ClusteredCounts;

/// Per-attribute count table in `f64`.
#[derive(Debug, Clone)]
pub struct AttrCounts {
    /// `cluster[c][v] ≈ cnt_{A=v}(D_c)`.
    cluster: Vec<Vec<f64>>,
    /// `marginal[v] ≈ cnt_{A=v}(D)`.
    marginal: Vec<f64>,
    /// `cluster_sizes[c] = Σ_v cluster[c][v]`.
    cluster_sizes: Vec<f64>,
    /// `Σ_v marginal[v]`.
    total: f64,
}

impl AttrCounts {
    /// Builds from per-cluster counts and a marginal. Negative entries (from
    /// noise) are clamped at zero — post-processing, free under DP.
    pub fn new(cluster: Vec<Vec<f64>>, marginal: Vec<f64>) -> Self {
        let dom = marginal.len();
        assert!(
            cluster.iter().all(|row| row.len() == dom),
            "cluster rows must match the marginal's domain size"
        );
        let cluster: Vec<Vec<f64>> = cluster
            .into_iter()
            .map(|row| row.into_iter().map(|v| v.max(0.0)).collect())
            .collect();
        let marginal: Vec<f64> = marginal.into_iter().map(|v| v.max(0.0)).collect();
        let cluster_sizes = cluster.iter().map(|row| row.iter().sum()).collect();
        let total = marginal.iter().sum();
        AttrCounts {
            cluster,
            marginal,
            cluster_sizes,
            total,
        }
    }

    /// Builds exact counts from a contingency table.
    pub fn from_contingency(t: &dpx_data::ContingencyTable) -> Self {
        let cluster = (0..t.n_clusters())
            .map(|c| t.cluster_row(c).iter().map(|&x| x as f64).collect())
            .collect();
        let marginal = t.marginal().iter().map(|&x| x as f64).collect();
        AttrCounts::new(cluster, marginal)
    }

    /// Number of clusters.
    #[inline]
    pub fn n_clusters(&self) -> usize {
        self.cluster.len()
    }

    /// Domain size.
    #[inline]
    pub fn domain_size(&self) -> usize {
        self.marginal.len()
    }

    /// `cnt_{A=v}(D_c)`.
    #[inline]
    pub fn cluster_count(&self, c: usize, v: usize) -> f64 {
        self.cluster[c][v]
    }

    /// Per-value counts of cluster `c`.
    #[inline]
    pub fn cluster_row(&self, c: usize) -> &[f64] {
        &self.cluster[c]
    }

    /// `cnt_{A=v}(D)`.
    #[inline]
    pub fn marginal_count(&self, v: usize) -> f64 {
        self.marginal[v]
    }

    /// Full-data per-value counts.
    #[inline]
    pub fn marginal(&self) -> &[f64] {
        &self.marginal
    }

    /// `|D_c|` as seen through this attribute's counts.
    #[inline]
    pub fn cluster_size(&self, c: usize) -> f64 {
        self.cluster_sizes[c]
    }

    /// `|D|` as seen through this attribute's counts.
    #[inline]
    pub fn total(&self) -> f64 {
        self.total
    }
}

/// Count tables for all attributes under one clustering.
#[derive(Debug, Clone)]
pub struct ScoreTable {
    attrs: Vec<AttrCounts>,
    n_clusters: usize,
}

impl ScoreTable {
    /// Builds from per-attribute tables.
    ///
    /// # Panics
    /// Panics if the tables disagree on cluster count or none are given.
    pub fn new(attrs: Vec<AttrCounts>) -> Self {
        assert!(!attrs.is_empty(), "need at least one attribute");
        let n_clusters = attrs[0].n_clusters();
        assert!(
            attrs.iter().all(|a| a.n_clusters() == n_clusters),
            "all attributes must share the cluster count"
        );
        ScoreTable { attrs, n_clusters }
    }

    /// Builds exact tables from clustered counts.
    pub fn from_clustered_counts(cc: &ClusteredCounts) -> Self {
        ScoreTable::new(
            (0..cc.n_attributes())
                .map(|a| AttrCounts::from_contingency(cc.table(a)))
                .collect(),
        )
    }

    /// The table for attribute `a`.
    #[inline]
    pub fn attr(&self, a: usize) -> &AttrCounts {
        &self.attrs[a]
    }

    /// Number of attributes `|A|`.
    #[inline]
    pub fn n_attributes(&self) -> usize {
        self.attrs.len()
    }

    /// Number of clusters `|C|`.
    #[inline]
    pub fn n_clusters(&self) -> usize {
        self.n_clusters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpx_data::schema::{Attribute, Domain, Schema};
    use dpx_data::Dataset;

    fn table() -> ScoreTable {
        let schema = Schema::new(vec![
            Attribute::new("x", Domain::indexed(3)).unwrap(),
            Attribute::new("y", Domain::indexed(2)).unwrap(),
        ])
        .unwrap();
        let rows = vec![vec![0, 0], vec![0, 1], vec![1, 1], vec![2, 1], vec![2, 0]];
        let data = Dataset::from_rows(schema, &rows).unwrap();
        let labels = vec![0usize, 0, 1, 1, 0];
        let cc = ClusteredCounts::build(&data, &labels, 2);
        ScoreTable::from_clustered_counts(&cc)
    }

    #[test]
    fn exact_counts_roundtrip() {
        let st = table();
        assert_eq!(st.n_attributes(), 2);
        assert_eq!(st.n_clusters(), 2);
        let x = st.attr(0);
        assert_eq!(x.cluster_count(0, 0), 2.0);
        assert_eq!(x.marginal_count(2), 2.0);
        assert_eq!(x.cluster_size(0), 3.0);
        assert_eq!(x.total(), 5.0);
    }

    #[test]
    fn negative_noisy_counts_are_clamped() {
        let a = AttrCounts::new(vec![vec![-2.0, 3.0]], vec![1.5, -0.5]);
        assert_eq!(a.cluster_count(0, 0), 0.0);
        assert_eq!(a.marginal_count(1), 0.0);
        assert_eq!(a.cluster_size(0), 3.0);
        assert_eq!(a.total(), 1.5);
    }

    #[test]
    #[should_panic(expected = "domain size")]
    fn mismatched_domain_panics() {
        AttrCounts::new(vec![vec![1.0]], vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "share the cluster count")]
    fn mismatched_cluster_count_panics() {
        let a = AttrCounts::new(vec![vec![1.0]], vec![1.0]);
        let b = AttrCounts::new(vec![vec![1.0], vec![2.0]], vec![3.0]);
        ScoreTable::new(vec![a, b]);
    }
}
