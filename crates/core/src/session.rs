//! Interactive analyst sessions with a hard privacy-budget cap.
//!
//! The demonstration system wraps DPClustX in an interactive loop: an analyst
//! loads a sensitive table, clusters it privately, asks for explanations,
//! pokes at individual noisy histograms — and every action draws from one
//! shared ε budget that must never overflow. [`Session`] is that loop's
//! backend:
//!
//! * the sensitive data is held privately inside the session;
//! * clusterings must be *privately computed* (DP-k-means, charged) or
//!   *data-independent* (a caller-supplied total function, free) — exactly
//!   the paper's deployment requirement (§6.1: "the clustering function must
//!   be either privately computed or data-independent";
//! * every mechanism invocation is routed through a capped
//!   [`Accountant`]; once the cap is reached, further requests fail with
//!   [`DpError::BudgetExceeded`] instead of silently degrading privacy.

use crate::engine::{ExplainContext, ExplainEngine, PipelineObserver};
use crate::explanation::GlobalExplanation;
use crate::framework::DpClustXConfig;
use crate::stage2::Stage2Kernel;
use dpx_clustering::dp_kmeans::{self, DpKMeansConfig};
use dpx_clustering::model::ClusterModel;
use dpx_data::Dataset;
use dpx_dp::budget::{Accountant, Epsilon, Sensitivity};
use dpx_dp::histogram::{clamp_non_negative, GeometricHistogram, HistogramMechanism};
use dpx_dp::sparse_vector::{above_threshold, SvtOutcome};
use dpx_dp::DpError;

/// A stateful, budget-capped analysis session over one sensitive dataset.
///
/// The dataset, the master RNG, and the memoized counts cache live in a
/// shared [`ExplainContext`]: asking for a second explanation of the same
/// clustering (e.g. at a different budget split) skips the data scan.
pub struct Session {
    ctx: ExplainContext,
    accountant: Accountant,
    /// Current clustering (labels + cluster count), if any.
    clustering: Option<(Vec<usize>, usize)>,
    charge_counter: usize,
    stage2_kernel: Stage2Kernel,
}

impl Session {
    /// Opens a session over `data` with a total privacy cap and a seed for
    /// reproducibility.
    pub fn new(data: Dataset, budget_cap: Epsilon, seed: u64) -> Self {
        Session {
            ctx: ExplainContext::new(data, seed),
            accountant: Accountant::with_cap(budget_cap),
            clustering: None,
            charge_counter: 0,
            stage2_kernel: Stage2Kernel::SequentialRng,
        }
    }

    /// Selects the Stage-2 combination-selection kernel for subsequent
    /// `explain` calls (default: the streaming `SequentialRng` reference,
    /// which preserves historical seeded outputs).
    pub fn set_stage2_kernel(&mut self, kernel: Stage2Kernel) {
        self.stage2_kernel = kernel;
    }

    /// The Stage-2 kernel in use.
    pub fn stage2_kernel(&self) -> Stage2Kernel {
        self.stage2_kernel
    }

    /// ε spent so far.
    pub fn spent(&self) -> f64 {
        self.accountant.spent()
    }

    /// The audit trail of every charge so far.
    pub fn audit(&self) -> String {
        self.accountant.audit()
    }

    /// Number of tuples in the session's dataset (metadata, not protected —
    /// the unbounded-DP model treats |D| as public only when released
    /// noisily; this accessor is for UI sizing and tests, mirroring how the
    /// demo shows table dimensions).
    pub fn n_rows(&self) -> usize {
        self.ctx.data().n_rows()
    }

    /// Number of clusterings whose count tables are memoized in the
    /// session's context (diagnostics; cache membership is derived from the
    /// data only through the already-installed clustering).
    pub fn counts_cache_len(&self) -> usize {
        self.ctx.cache_len()
    }

    fn next_label(&mut self, what: &str) -> String {
        self.charge_counter += 1;
        format!("session/{:03}/{}", self.charge_counter, what)
    }

    /// Privately clusters the data with DP-k-means, charging `epsilon`.
    /// The resulting labels become the session's current clustering.
    pub fn cluster_dp_kmeans(&mut self, k: usize, epsilon: Epsilon) -> Result<(), DpError> {
        // Check-then-spend: the accountant enforces the cap before the
        // mechanism touches the data.
        let label = self.next_label("dp-kmeans");
        self.accountant.charge(label, epsilon)?;
        let (data, rng) = self.ctx.data_and_rng();
        let model = dp_kmeans::fit(data, DpKMeansConfig::new(k, epsilon), rng);
        self.clustering = Some((model.assign_all(self.ctx.data()), k));
        Ok(())
    }

    /// Installs a *data-independent* clustering function (e.g. a user-defined
    /// predicate, or centers computed elsewhere under someone else's budget).
    /// Free of charge — the function may not depend on this session's data.
    pub fn set_clustering<M: ClusterModel + ?Sized>(&mut self, model: &M) {
        self.clustering = Some((model.assign_all(self.ctx.data()), model.n_clusters()));
    }

    /// Runs DPClustX on the current clustering, charging the configuration's
    /// total ε. Fails if no clustering is installed or the cap would be hit.
    pub fn explain(&mut self, config: DpClustXConfig) -> Result<GlobalExplanation, DpError> {
        self.explain_engine(config, None)
    }

    /// [`Self::explain`] with per-stage observation: wall time, ε charges,
    /// and stage metrics are reported to `observer` (the backend of the
    /// CLI's `explain --timings`).
    pub fn explain_observed(
        &mut self,
        config: DpClustXConfig,
        observer: &mut dyn PipelineObserver,
    ) -> Result<GlobalExplanation, DpError> {
        self.explain_engine(config, Some(observer))
    }

    fn explain_engine(
        &mut self,
        config: DpClustXConfig,
        observer: Option<&mut dyn PipelineObserver>,
    ) -> Result<GlobalExplanation, DpError> {
        let (labels, n_clusters) = self.clustering.clone().ok_or(DpError::EmptyCandidateSet)?;
        // Reserve the whole stage budget up front; the inner pipeline runs
        // its own accountant for the fine-grained audit.
        let total = Epsilon::new(config.total_epsilon())?;
        let label = self.next_label("dpclustx");
        self.accountant.charge(label, total)?;
        let engine = ExplainEngine::new(config).with_stage2_kernel(self.stage2_kernel);
        let outcome = match observer {
            Some(obs) => engine.explain_observed(&mut self.ctx, &labels, n_clusters, obs)?,
            None => engine.explain(&mut self.ctx, &labels, n_clusters)?,
        };
        Ok(outcome.explanation)
    }

    /// Releases one noisy histogram of attribute `attr` over the full data,
    /// charging `epsilon` (an ad-hoc EDA query).
    pub fn noisy_histogram(&mut self, attr: usize, epsilon: Epsilon) -> Result<Vec<f64>, DpError> {
        let label = self.next_label("histogram");
        self.accountant.charge(label, epsilon)?;
        let (data, rng) = self.ctx.data_and_rng();
        let h = data.histogram(attr);
        let mut noisy = GeometricHistogram.privatize(h.counts(), epsilon, rng);
        clamp_non_negative(&mut noisy);
        Ok(noisy)
    }

    /// Releases a noisy count of tuples matching a conjunctive predicate,
    /// charging `epsilon` (a PINQ-style ad-hoc query; sensitivity 1).
    pub fn noisy_count(
        &mut self,
        filter: &dpx_data::filter::Filter,
        epsilon: Epsilon,
    ) -> Result<f64, DpError> {
        let label = self.next_label("count");
        self.accountant.charge(label, epsilon)?;
        let (data, rng) = self.ctx.data_and_rng();
        let true_count = filter.count(data) as i64;
        let noisy =
            dpx_dp::geometric::geometric_mechanism(true_count, epsilon, Sensitivity::ONE, rng);
        Ok((noisy as f64).max(0.0))
    }

    /// Sparse-vector threshold probe: reports the first attribute (by index)
    /// whose count of `value` exceeds `threshold`, charging `epsilon` once
    /// for the whole scan.
    pub fn first_attribute_above(
        &mut self,
        value_per_attr: &[(usize, u32)],
        threshold: f64,
        epsilon: Epsilon,
    ) -> Result<SvtOutcome, DpError> {
        let label = self.next_label("above-threshold");
        self.accountant.charge(label, epsilon)?;
        let (data, rng) = self.ctx.data_and_rng();
        let counts: Vec<f64> = value_per_attr
            .iter()
            .map(|&(a, v)| data.count(a, v) as f64)
            .collect();
        above_threshold(&counts, threshold, epsilon, Sensitivity::ONE, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpx_clustering::model::PredicateModel;
    use dpx_data::schema::{Attribute, Domain, Schema};

    fn data() -> Dataset {
        let schema = Schema::new(vec![
            Attribute::new("x", Domain::indexed(2)).unwrap(),
            Attribute::new("y", Domain::indexed(3)).unwrap(),
            Attribute::new("z", Domain::indexed(4)).unwrap(),
            Attribute::new("w", Domain::indexed(2)).unwrap(),
        ])
        .unwrap();
        let rows: Vec<Vec<u32>> = (0..600)
            .map(|i| {
                vec![
                    (i % 2) as u32,
                    (i % 3) as u32,
                    (i % 4) as u32,
                    ((i / 3) % 2) as u32,
                ]
            })
            .collect();
        Dataset::from_rows(schema, &rows).unwrap()
    }

    #[test]
    fn full_session_within_budget() {
        let mut s = Session::new(data(), Epsilon::new(2.0).unwrap(), 7);
        s.cluster_dp_kmeans(2, Epsilon::new(1.0).unwrap()).unwrap();
        let explanation = s.explain(DpClustXConfig::default()).unwrap();
        assert_eq!(explanation.per_cluster.len(), 2);
        let hist = s.noisy_histogram(1, Epsilon::new(0.2).unwrap()).unwrap();
        assert_eq!(hist.len(), 3);
        assert!(hist.iter().all(|&v| v >= 0.0));
        assert!(
            (s.spent() - (1.0 + 0.3 + 0.2)).abs() < 1e-9,
            "spent {}",
            s.spent()
        );
        let audit = s.audit();
        assert!(audit.contains("dp-kmeans"));
        assert!(audit.contains("dpclustx"));
        assert!(audit.contains("histogram"));
    }

    #[test]
    fn cap_blocks_overdraft_and_preserves_state() {
        let mut s = Session::new(data(), Epsilon::new(0.5).unwrap(), 7);
        s.cluster_dp_kmeans(2, Epsilon::new(0.4).unwrap()).unwrap();
        // Default explain needs 0.3 > remaining 0.1.
        let err = s.explain(DpClustXConfig::default()).unwrap_err();
        assert!(matches!(err, DpError::BudgetExceeded { .. }));
        // The failed request must not have consumed anything.
        assert!((s.spent() - 0.4).abs() < 1e-9);
        // A smaller request still fits.
        let small = DpClustXConfig {
            eps_cand_set: 0.03,
            eps_top_comb: 0.03,
            eps_hist: Some(0.03),
            ..Default::default()
        };
        s.explain(small).unwrap();
        assert!(s.spent() <= 0.5 + 1e-9);
    }

    #[test]
    fn predicate_clustering_is_free() {
        let mut s = Session::new(data(), Epsilon::new(0.35).unwrap(), 7);
        let model = PredicateModel::new(2, |row: &[u32]| row[0] as usize);
        s.set_clustering(&model);
        assert_eq!(s.spent(), 0.0, "data-independent clustering costs nothing");
        s.explain(DpClustXConfig::default()).unwrap();
        assert!((s.spent() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn repeated_explains_reuse_memoized_counts() {
        let mut s = Session::new(data(), Epsilon::new(2.0).unwrap(), 7);
        let model = PredicateModel::new(2, |row: &[u32]| row[0] as usize);
        s.set_clustering(&model);
        assert_eq!(s.counts_cache_len(), 0);
        s.explain(DpClustXConfig::default()).unwrap();
        assert_eq!(s.counts_cache_len(), 1);
        // Same clustering, different budget split: no new cache entry.
        let other = DpClustXConfig {
            eps_cand_set: 0.2,
            ..Default::default()
        };
        s.explain(other).unwrap();
        assert_eq!(s.counts_cache_len(), 1, "second explain must hit the cache");
        // A different clustering builds (and memoizes) fresh tables.
        let flipped = PredicateModel::new(2, |row: &[u32]| 1 - row[0] as usize);
        s.set_clustering(&flipped);
        s.explain(DpClustXConfig::default()).unwrap();
        assert_eq!(s.counts_cache_len(), 2);
    }

    #[test]
    fn explain_without_clustering_fails() {
        let mut s = Session::new(data(), Epsilon::new(1.0).unwrap(), 7);
        assert!(s.explain(DpClustXConfig::default()).is_err());
        assert_eq!(s.spent(), 0.0);
    }

    #[test]
    fn svt_probe_charges_once_for_the_scan() {
        let mut s = Session::new(data(), Epsilon::new(1.0).unwrap(), 7);
        // Counts: x=0 → 300; y=2 → 200. Threshold 250 → attribute 0 first.
        let probes = vec![(0usize, 0u32), (1usize, 2u32)];
        let outcome = s
            .first_attribute_above(&probes, 250.0, Epsilon::new(0.8).unwrap())
            .unwrap();
        assert_eq!(outcome, SvtOutcome::Above(0));
        assert!((s.spent() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn noisy_count_charges_and_is_near_truth_at_high_eps() {
        let mut s = Session::new(data(), Epsilon::new(10.0).unwrap(), 7);
        let schema = Schema::new(vec![
            Attribute::new("x", Domain::indexed(2)).unwrap(),
            Attribute::new("y", Domain::indexed(3)).unwrap(),
            Attribute::new("z", Domain::indexed(4)).unwrap(),
            Attribute::new("w", Domain::indexed(2)).unwrap(),
        ])
        .unwrap();
        let f = dpx_data::filter::Filter::all().and(&schema, 0, 0).unwrap();
        let c = s.noisy_count(&f, Epsilon::new(8.0).unwrap()).unwrap();
        assert!((c - 300.0).abs() < 5.0, "count {c}");
        assert!((s.spent() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed: u64| {
            let mut s = Session::new(data(), Epsilon::new(1.0).unwrap(), seed);
            s.cluster_dp_kmeans(2, Epsilon::new(0.5).unwrap()).unwrap();
            s.explain(DpClustXConfig::default())
                .unwrap()
                .attribute_combination()
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn counter_kernel_session_is_deterministic_and_thread_invariant() {
        let run = |kernel: Stage2Kernel| {
            let mut s = Session::new(data(), Epsilon::new(1.0).unwrap(), 42);
            s.set_stage2_kernel(kernel);
            assert_eq!(s.stage2_kernel(), kernel);
            let model = PredicateModel::new(2, |row: &[u32]| row[0] as usize);
            s.set_clustering(&model);
            let expl = s.explain(DpClustXConfig::default()).unwrap();
            (expl.attribute_combination(), s.spent())
        };
        let serial = run(Stage2Kernel::CounterSerial);
        for threads in [1, 2, 5] {
            assert_eq!(
                run(Stage2Kernel::CounterParallel(threads)),
                serial,
                "threads={threads}"
            );
        }
    }
}
