//! DP-Naive: privatize everything first, select afterwards (§6.1).
//!
//! Given budget ε: every full-dataset histogram gets `ε/(2|A|)`, every
//! per-cluster histogram gets `ε/(2|A|)` per attribute (parallel composition
//! across disjoint clusters makes the per-cluster pass cost `ε/(2|A|)` per
//! attribute, `ε/2` total). TabEE then runs on the noisy counts — free
//! post-processing. The waste is structural: the budget is diluted over all
//! `|A|` attributes although only `|C|` histograms are ever shown.

use crate::baselines::tabee;
use crate::counts::{AttrCounts, ScoreTable};
use crate::explanation::AttributeCombination;
use crate::quality::score::Weights;
use dpx_data::contingency::ClusteredCounts;
use dpx_dp::budget::{Accountant, Epsilon};
use dpx_dp::histogram::HistogramMechanism;
use dpx_dp::DpError;
use rand::Rng;

/// Builds the all-noisy score table: every marginal and per-cluster histogram
/// privatized up front. Spends `eps` in total (recorded on `accountant`).
pub fn noisy_score_table<M: HistogramMechanism, R: Rng + ?Sized>(
    counts: &ClusteredCounts,
    eps: Epsilon,
    mechanism: &M,
    accountant: &mut Accountant,
    rng: &mut R,
) -> Result<ScoreTable, DpError> {
    let n_attrs = counts.n_attributes();
    let n_clusters = counts.n_clusters();
    let eps_each = eps.split(2)?.split(n_attrs)?;
    let mut attrs = Vec::with_capacity(n_attrs);
    for a in 0..n_attrs {
        let t = counts.table(a);
        let marginal = mechanism.privatize(t.marginal_histogram().counts(), eps_each, rng);
        accountant.charge(format!("dp-naive/full/{a}"), eps_each)?;
        let mut cluster = Vec::with_capacity(n_clusters);
        for c in 0..n_clusters {
            cluster.push(mechanism.privatize(t.cluster_histogram(c).counts(), eps_each, rng));
            accountant.charge_parallel(
                format!("dp-naive/cluster/{a}"),
                format!("c{c}"),
                eps_each,
            )?;
        }
        attrs.push(AttrCounts::new(cluster, marginal));
    }
    Ok(ScoreTable::new(attrs))
}

/// Runs DP-Naive: noisy histograms for everything at budget `eps`, then
/// TabEE's exact selection on the noisy counts.
pub fn select<M: HistogramMechanism, R: Rng + ?Sized>(
    counts: &ClusteredCounts,
    k: usize,
    weights: Weights,
    eps: Epsilon,
    mechanism: &M,
    rng: &mut R,
) -> Result<AttributeCombination, DpError> {
    let mut accountant = Accountant::new();
    let noisy = noisy_score_table(counts, eps, mechanism, &mut accountant, rng)?;
    debug_assert!(
        (accountant.spent() - eps.get()).abs() < 1e-9,
        "DP-Naive must spend exactly ε, spent {}",
        accountant.spent()
    );
    Ok(tabee::select(&noisy, k, weights))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpx_data::schema::{Attribute, Domain, Schema};
    use dpx_data::Dataset;
    use dpx_dp::histogram::GeometricHistogram;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dataset() -> (Dataset, Vec<usize>) {
        let schema = Schema::new(vec![
            Attribute::new("signal", Domain::indexed(2)).unwrap(),
            Attribute::new("noise", Domain::indexed(2)).unwrap(),
        ])
        .unwrap();
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..2000 {
            let c = i % 2;
            rows.push(vec![c as u32, (i / 2 % 2) as u32]);
            labels.push(c);
        }
        (Dataset::from_rows(schema, &rows).unwrap(), labels)
    }

    #[test]
    fn budget_accounting_is_exact() {
        let (data, labels) = dataset();
        let counts = ClusteredCounts::build(&data, &labels, 2);
        let mut acc = Accountant::new();
        let mut r = StdRng::seed_from_u64(1);
        let eps = Epsilon::new(0.8).unwrap();
        noisy_score_table(&counts, eps, &GeometricHistogram, &mut acc, &mut r).unwrap();
        assert!((acc.spent() - 0.8).abs() < 1e-9, "spent {}", acc.spent());
    }

    #[test]
    fn finds_signal_at_generous_epsilon() {
        let (data, labels) = dataset();
        let counts = ClusteredCounts::build(&data, &labels, 2);
        let mut r = StdRng::seed_from_u64(2);
        let ac = select(
            &counts,
            2,
            Weights::equal(),
            Epsilon::new(100.0).unwrap(),
            &GeometricHistogram,
            &mut r,
        )
        .unwrap();
        assert_eq!(ac, vec![0, 0], "the signal attribute should explain both");
    }

    #[test]
    fn noisy_table_shape_matches_exact() {
        let (data, labels) = dataset();
        let counts = ClusteredCounts::build(&data, &labels, 2);
        let mut acc = Accountant::new();
        let mut r = StdRng::seed_from_u64(3);
        let st = noisy_score_table(
            &counts,
            Epsilon::new(1.0).unwrap(),
            &GeometricHistogram,
            &mut acc,
            &mut r,
        )
        .unwrap();
        assert_eq!(st.n_attributes(), 2);
        assert_eq!(st.n_clusters(), 2);
        assert_eq!(st.attr(0).domain_size(), 2);
    }

    #[test]
    fn deterministic_under_seed() {
        let (data, labels) = dataset();
        let counts = ClusteredCounts::build(&data, &labels, 2);
        let run = |seed: u64| {
            let mut r = StdRng::seed_from_u64(seed);
            select(
                &counts,
                2,
                Weights::equal(),
                Epsilon::new(0.5).unwrap(),
                &GeometricHistogram,
                &mut r,
            )
            .unwrap()
        };
        assert_eq!(run(9), run(9));
    }
}
