//! TabEE: the non-private histogram-based explainer (Davidson et al.), the
//! paper's reference baseline.
//!
//! Two stages mirroring DPClustX, but exact and driven by the *sensitive*
//! quality functions: top-k candidates per cluster by
//! `γ_Int·TVD + γ_Suf·Suf`, then the combination maximizing the sensitive
//! global `Quality` over the candidate product space.

use super::{for_each_combination, sensitive_sscore};
use crate::counts::ScoreTable;
use crate::eval::QualityEvaluator;
use crate::explanation::AttributeCombination;
use crate::quality::score::Weights;

/// Exact top-`k` candidate attributes per cluster by sensitive single score.
pub fn candidate_sets(st: &ScoreTable, gamma: (f64, f64), k: usize) -> Vec<Vec<usize>> {
    let n_attrs = st.n_attributes();
    let k = k.min(n_attrs);
    (0..st.n_clusters())
        .map(|c| {
            let mut scored: Vec<(usize, f64)> = (0..n_attrs)
                .map(|a| (a, sensitive_sscore(st, c, a, gamma)))
                .collect();
            scored.sort_by(|x, y| y.1.total_cmp(&x.1));
            scored.into_iter().take(k).map(|(a, _)| a).collect()
        })
        .collect()
}

/// Runs TabEE: returns the attribute combination maximizing the sensitive
/// `Quality` over the candidate product space.
///
/// # Panics
/// Panics if `k == 0`.
pub fn select(st: &ScoreTable, k: usize, weights: Weights) -> AttributeCombination {
    assert!(k > 0, "k must be positive");
    let candidates = candidate_sets(st, weights.gamma(), k);
    let evaluator = QualityEvaluator::new(st, weights);
    let mut best: Option<(f64, AttributeCombination)> = None;
    for_each_combination(&candidates, |combo| {
        let q = evaluator.quality(combo);
        if best.as_ref().is_none_or(|(bq, _)| q > *bq) {
            best = Some((q, combo.to_vec()));
        }
    });
    best.expect("candidate space is non-empty").1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counts::AttrCounts;
    use crate::eval::quality;

    /// Clusters of sizes 100/200: attribute 0 is strictly the best
    /// single-cluster candidate for both, attribute 1 second, attribute 2
    /// flat. With diversity in play the global optimum pairs the two signal
    /// attributes ([0, 1] — strictly better than [1, 0] because cluster
    /// sizes differ, which breaks the sensitive-TVD symmetry).
    fn table() -> ScoreTable {
        let a0 = AttrCounts::new(
            vec![vec![90.0, 10.0], vec![80.0, 120.0]],
            vec![170.0, 130.0],
        );
        let a1 = AttrCounts::new(vec![vec![30.0, 70.0], vec![10.0, 190.0]], vec![40.0, 260.0]);
        let a2 = AttrCounts::new(
            vec![vec![50.0, 50.0], vec![100.0, 100.0]],
            vec![150.0, 150.0],
        );
        ScoreTable::new(vec![a0, a1, a2])
    }

    #[test]
    fn selects_signal_attributes() {
        let st = table();
        let ac = select(&st, 3, Weights::equal());
        assert_eq!(ac, vec![0, 1]);
    }

    #[test]
    fn selection_is_global_argmax_over_candidates() {
        let st = table();
        let w = Weights::equal();
        let ac = select(&st, 3, w);
        let best_q = quality(&st, &ac, w);
        for i in 0..3usize {
            for j in 0..3usize {
                assert!(
                    quality(&st, &[i, j], w) <= best_q + 1e-12,
                    "({i},{j}) beats TabEE's pick"
                );
            }
        }
    }

    #[test]
    fn candidate_sets_ranked_by_sensitive_score() {
        let st = table();
        let sets = candidate_sets(&st, (0.5, 0.5), 2);
        assert_eq!(sets[0], vec![0, 1]);
        assert_eq!(sets[1], vec![0, 1]);
    }

    #[test]
    fn k_one_restricts_choice() {
        let st = table();
        let ac = select(&st, 1, Weights::equal());
        // With k = 1 each cluster must take its own top candidate.
        let sets = candidate_sets(&st, Weights::equal().gamma(), 1);
        assert_eq!(ac, vec![sets[0][0], sets[1][0]]);
    }

    #[test]
    fn deterministic() {
        let st = table();
        assert_eq!(
            select(&st, 2, Weights::equal()),
            select(&st, 2, Weights::equal())
        );
    }
}
