//! The three comparison explainers of §6.1.
//!
//! * [`tabee`] — the non-private TabEE algorithm: exact two-stage selection
//!   with the original sensitive quality functions. The reference every DP
//!   method is measured against (its combination defines MAE = 0).
//! * [`dp_tabee`] — a direct DP adaptation of TabEE: the same sensitive
//!   quality functions, with exponential-mechanism noise calibrated to their
//!   (high) sensitivity. Demonstrates why naive adaptation fails: noise on the
//!   order of the entire `[0, 1]` score range drowns the ranking.
//! * [`dp_naive`] — privatize *all* histograms up front at
//!   `ε/(2|A|)` apiece, then run TabEE on the noisy counts as free
//!   post-processing. Demonstrates the cost of paying for `|A|` histograms
//!   when only `|C|` are needed.

pub mod dp_naive;
pub mod dp_tabee;
pub mod tabee;

use crate::counts::ScoreTable;
use crate::quality::interestingness::sensitive_tvd;
use crate::quality::sufficiency::sensitive_suf_cluster;

/// The sensitive single-cluster score used by TabEE's Stage-1:
/// `γ_Int · TVD(c, A) + γ_Suf · Suf(c, A)`, both terms in `[0, 1]`.
pub(crate) fn sensitive_sscore(st: &ScoreTable, c: usize, attr: usize, gamma: (f64, f64)) -> f64 {
    let t = st.attr(attr);
    gamma.0 * sensitive_tvd(t, c) + gamma.1 * sensitive_suf_cluster(t, c)
}

/// Odometer iteration over `candidates[0] × … × candidates[n-1]`, invoking
/// `visit` with the attribute combination for each choice.
pub(crate) fn for_each_combination<F: FnMut(&[usize])>(candidates: &[Vec<usize>], mut visit: F) {
    assert!(!candidates.is_empty() && candidates.iter().all(|s| !s.is_empty()));
    let n = candidates.len();
    let mut choice = vec![0usize; n];
    let mut combo: Vec<usize> = candidates.iter().map(|s| s[0]).collect();
    loop {
        visit(&combo);
        let mut pos = n;
        loop {
            if pos == 0 {
                return;
            }
            pos -= 1;
            choice[pos] += 1;
            if choice[pos] < candidates[pos].len() {
                combo[pos] = candidates[pos][choice[pos]];
                break;
            }
            choice[pos] = 0;
            combo[pos] = candidates[pos][0];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counts::AttrCounts;

    #[test]
    fn for_each_combination_visits_cartesian_product() {
        let mut seen = Vec::new();
        for_each_combination(&[vec![7, 8], vec![1, 2, 3]], |c| seen.push(c.to_vec()));
        assert_eq!(seen.len(), 6);
        assert!(seen.contains(&vec![7, 1]));
        assert!(seen.contains(&vec![8, 3]));
        let mut dedup = seen.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 6);
    }

    #[test]
    fn sensitive_sscore_is_bounded_by_one() {
        let a = AttrCounts::new(vec![vec![10.0, 0.0]], vec![10.0, 90.0]);
        let st = ScoreTable::new(vec![a]);
        let s = sensitive_sscore(&st, 0, 0, (0.5, 0.5));
        assert!((0.0..=1.0).contains(&s));
        // TVD = 0.9, Suf_cluster = 10²/10/10 = 1 → 0.95.
        assert!((s - 0.95).abs() < 1e-9);
    }
}
