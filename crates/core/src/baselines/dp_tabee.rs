//! DP-TabEE: the direct DP adaptation of TabEE (§6.1).
//!
//! Uses the **original sensitive** quality functions, with noise calibrated
//! per Theorem 2.8: since the sensitive scores range over `[0, 1]` with
//! sensitivity lower-bounded by ½ (Propositions 4.1/4.3) and upper-bounded by
//! their range, a valid calibration must use Δ = 1. The resulting noise is as
//! large as the entire score range — which is exactly the paper's point: this
//! baseline "failed to improve in the examined range" of ε.

use super::{for_each_combination, sensitive_sscore};
use crate::counts::ScoreTable;
use crate::eval::QualityEvaluator;
use crate::explanation::AttributeCombination;
use crate::quality::score::Weights;
use dpx_dp::budget::{Epsilon, Sensitivity};
use dpx_dp::gumbel::sample_gumbel;
use dpx_dp::topk::one_shot_top_k;
use dpx_dp::DpError;
use rand::Rng;

/// Runs DP-TabEE: one-shot top-k over the sensitive single score
/// (`ε_CandSet`), then the exponential mechanism over the sensitive global
/// `Quality` (`ε_TopComb`), both with Δ = 1.
pub fn select<R: Rng + ?Sized>(
    st: &ScoreTable,
    k: usize,
    weights: Weights,
    eps_cand_set: Epsilon,
    eps_top_comb: Epsilon,
    rng: &mut R,
) -> Result<AttributeCombination, DpError> {
    let n_clusters = st.n_clusters();
    let n_attrs = st.n_attributes();
    if k == 0 || k > n_attrs {
        return Err(DpError::NotEnoughCandidates {
            requested: k,
            available: n_attrs,
        });
    }
    let gamma = weights.gamma();
    // Stage 1: per-cluster one-shot top-k on the sensitive score.
    let eps_topk = eps_cand_set.split(n_clusters)?;
    let mut candidates = Vec::with_capacity(n_clusters);
    for c in 0..n_clusters {
        let scores: Vec<f64> = (0..n_attrs)
            .map(|a| sensitive_sscore(st, c, a, gamma))
            .collect();
        candidates.push(one_shot_top_k(&scores, k, eps_topk, Sensitivity::ONE, rng)?);
    }
    // Stage 2: exponential mechanism on the sensitive Quality (Δ = 1).
    let evaluator = QualityEvaluator::new(st, weights);
    let factor = eps_top_comb.get() / 2.0;
    let mut best: Option<(f64, AttributeCombination)> = None;
    for_each_combination(&candidates, |combo| {
        let noisy = factor * evaluator.quality(combo) + sample_gumbel(1.0, rng);
        if best.as_ref().is_none_or(|(bv, _)| noisy > *bv) {
            best = Some((noisy, combo.to_vec()));
        }
    });
    Ok(best.expect("candidate space is non-empty").1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::tabee;
    use crate::counts::AttrCounts;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table() -> ScoreTable {
        // Same strictly-ordered table as the TabEE tests (sizes 100/200).
        let a0 = AttrCounts::new(
            vec![vec![90.0, 10.0], vec![80.0, 120.0]],
            vec![170.0, 130.0],
        );
        let a1 = AttrCounts::new(vec![vec![30.0, 70.0], vec![10.0, 190.0]], vec![40.0, 260.0]);
        let a2 = AttrCounts::new(
            vec![vec![50.0, 50.0], vec![100.0, 100.0]],
            vec![150.0, 150.0],
        );
        ScoreTable::new(vec![a0, a1, a2])
    }

    #[test]
    fn matches_tabee_at_absurdly_high_epsilon() {
        let st = table();
        let mut r = StdRng::seed_from_u64(1);
        let ac = select(
            &st,
            3,
            Weights::equal(),
            Epsilon::new(1e6).unwrap(),
            Epsilon::new(1e6).unwrap(),
            &mut r,
        )
        .unwrap();
        assert_eq!(ac, tabee::select(&st, 3, Weights::equal()));
    }

    #[test]
    fn is_near_uniform_at_realistic_epsilon() {
        // The headline failure mode: at ε = 1 over a [0, 1]-range score the
        // selection is close to uniform; the best combination should win only
        // rarely more often than chance.
        let st = table();
        let best = tabee::select(&st, 3, Weights::equal());
        let runs = 400;
        let mut hits = 0;
        for seed in 0..runs {
            let mut r = StdRng::seed_from_u64(seed);
            let ac = select(
                &st,
                3,
                Weights::equal(),
                Epsilon::new(0.5).unwrap(),
                Epsilon::new(0.5).unwrap(),
                &mut r,
            )
            .unwrap();
            if ac == best {
                hits += 1;
            }
        }
        let rate = hits as f64 / runs as f64;
        // 9 combinations → chance ≈ 0.11; noisy TabEE should stay below ~3×.
        assert!(rate < 0.35, "DP-TabEE matched the optimum {rate} of runs");
    }

    #[test]
    fn rejects_bad_k() {
        let st = table();
        let mut r = StdRng::seed_from_u64(2);
        let e = Epsilon::new(1.0).unwrap();
        assert!(select(&st, 0, Weights::equal(), e, e, &mut r).is_err());
        assert!(select(&st, 10, Weights::equal(), e, e, &mut r).is_err());
    }
}
