//! Explanation data types (Definitions 2.2/2.3) and terminal rendering.

use dpx_data::Schema;
use std::fmt;

/// An attribute combination `AC : C → A` (§3): the attribute index chosen to
/// explain each cluster, indexed by cluster label.
pub type AttributeCombination = Vec<usize>;

/// A single-cluster histogram-based explanation candidate
/// `(c, A, h_A(D \ D_c), h_A(D_c))` (Definition 2.2) with (possibly noisy)
/// counts.
#[derive(Debug, Clone)]
pub struct SingleClusterExplanation {
    /// The cluster label being explained.
    pub cluster: usize,
    /// Index of the explaining attribute in the schema.
    pub attribute: usize,
    /// Name of the explaining attribute.
    pub attribute_name: String,
    /// Value labels of the attribute's domain (histogram bin labels).
    pub bin_labels: Vec<String>,
    /// Histogram of the data *outside* the cluster, `h_A(D \ D_c)`.
    pub hist_rest: Vec<f64>,
    /// Histogram of the cluster, `h_A(D_c)`.
    pub hist_cluster: Vec<f64>,
}

impl SingleClusterExplanation {
    /// Normalizes a histogram into proportions (zeros stay zero).
    fn normalize(h: &[f64]) -> Vec<f64> {
        let total: f64 = h.iter().map(|&x| x.max(0.0)).sum();
        if total <= 0.0 {
            return vec![0.0; h.len()];
        }
        h.iter().map(|&x| x.max(0.0) / total).collect()
    }

    /// Normalized in-cluster histogram (proportions).
    pub fn cluster_proportions(&self) -> Vec<f64> {
        Self::normalize(&self.hist_cluster)
    }

    /// Normalized out-of-cluster histogram (proportions).
    pub fn rest_proportions(&self) -> Vec<f64> {
        Self::normalize(&self.hist_rest)
    }

    /// Renders the explanation as a two-series ASCII bar chart, the terminal
    /// analogue of the paper's Figure 3a.
    pub fn render(&self) -> String {
        let pc = self.cluster_proportions();
        let pr = self.rest_proportions();
        let width = 30usize;
        let label_w = self
            .bin_labels
            .iter()
            .map(String::len)
            .max()
            .unwrap_or(4)
            .min(24);
        let mut out = format!(
            "Cluster {} — attribute `{}` (■ cluster, □ rest)\n",
            self.cluster, self.attribute_name
        );
        for (i, label) in self.bin_labels.iter().enumerate() {
            let c_bar = (pc[i] * width as f64).round() as usize;
            let r_bar = (pr[i] * width as f64).round() as usize;
            let mut lbl = label.clone();
            if lbl.len() > label_w {
                lbl.truncate(label_w);
            }
            out.push_str(&format!(
                "  {lbl:>label_w$} ■{:<width$} {:5.1}%\n",
                "■".repeat(c_bar),
                pc[i] * 100.0
            ));
            out.push_str(&format!(
                "  {:>label_w$} □{:<width$} {:5.1}%\n",
                "",
                "□".repeat(r_bar),
                pr[i] * 100.0
            ));
        }
        out
    }
}

/// A global explanation: one single-cluster explanation per cluster label
/// (Definition 2.3).
#[derive(Debug, Clone)]
pub struct GlobalExplanation {
    /// Per-cluster explanations, indexed by cluster label.
    pub per_cluster: Vec<SingleClusterExplanation>,
}

impl GlobalExplanation {
    /// The attribute combination realized by this explanation.
    pub fn attribute_combination(&self) -> AttributeCombination {
        self.per_cluster.iter().map(|e| e.attribute).collect()
    }

    /// Names of the selected attributes, per cluster.
    pub fn attribute_names(&self) -> Vec<&str> {
        self.per_cluster
            .iter()
            .map(|e| e.attribute_name.as_str())
            .collect()
    }

    /// Builds an explanation skeleton from a schema, an attribute
    /// combination, and per-cluster histogram pairs `(rest, cluster)`.
    pub fn from_histograms(
        schema: &Schema,
        assignment: &[usize],
        histograms: Vec<(Vec<f64>, Vec<f64>)>,
    ) -> Self {
        assert_eq!(assignment.len(), histograms.len());
        let per_cluster = assignment
            .iter()
            .zip(histograms)
            .enumerate()
            .map(|(c, (&a, (rest, cluster)))| {
                let attr = schema.attribute(a);
                SingleClusterExplanation {
                    cluster: c,
                    attribute: a,
                    attribute_name: attr.name.clone(),
                    bin_labels: attr.domain.iter().map(|(_, l)| l.to_string()).collect(),
                    hist_rest: rest,
                    hist_cluster: cluster,
                }
            })
            .collect();
        GlobalExplanation { per_cluster }
    }
}

impl fmt::Display for GlobalExplanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.per_cluster {
            writeln!(f, "{}", e.render())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpx_data::schema::{Attribute, Domain};

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::new("age", Domain::categorical(["[0,40)", "[40,80)"])).unwrap(),
            Attribute::new("lab_proc", Domain::intervals(0.0, 10.0, 3)).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn from_histograms_wires_names_and_labels() {
        let g = GlobalExplanation::from_histograms(
            &schema(),
            &[1, 0],
            vec![
                (vec![5.0, 3.0, 1.0], vec![0.0, 1.0, 9.0]),
                (vec![7.0, 3.0], vec![4.0, 4.0]),
            ],
        );
        assert_eq!(g.attribute_combination(), vec![1, 0]);
        assert_eq!(g.attribute_names(), vec!["lab_proc", "age"]);
        assert_eq!(g.per_cluster[0].bin_labels.len(), 3);
        assert_eq!(g.per_cluster[1].bin_labels, vec!["[0,40)", "[40,80)"]);
    }

    #[test]
    fn proportions_normalize_and_clamp() {
        let e = SingleClusterExplanation {
            cluster: 0,
            attribute: 0,
            attribute_name: "x".into(),
            bin_labels: vec!["a".into(), "b".into()],
            hist_rest: vec![-2.0, 6.0],
            hist_cluster: vec![1.0, 3.0],
        };
        assert_eq!(e.rest_proportions(), vec![0.0, 1.0]);
        assert_eq!(e.cluster_proportions(), vec![0.25, 0.75]);
    }

    #[test]
    fn all_zero_histogram_renders_safely() {
        let e = SingleClusterExplanation {
            cluster: 3,
            attribute: 0,
            attribute_name: "x".into(),
            bin_labels: vec!["a".into()],
            hist_rest: vec![0.0],
            hist_cluster: vec![0.0],
        };
        let r = e.render();
        assert!(r.contains("Cluster 3"));
        assert!(r.contains("0.0%"));
    }

    #[test]
    fn render_mentions_attribute_and_bars() {
        let g = GlobalExplanation::from_histograms(
            &schema(),
            &[0],
            vec![(vec![9.0, 1.0], vec![1.0, 9.0])],
        );
        let text = format!("{g}");
        assert!(text.contains("age"));
        assert!(text.contains('■'));
        assert!(text.contains('□'));
    }
}
