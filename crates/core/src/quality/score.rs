//! Combined score functions (§4.4): the single-cluster score driving Stage-1
//! and the global score driving Stage-2.

use crate::counts::ScoreTable;
use crate::quality::diversity::pair_d;
use crate::quality::interestingness::int_p;
use crate::quality::sufficiency::suf_p;

/// The weight vector `λ = (λ_Int, λ_Suf, λ_Div)` of Definition 4.8 —
/// non-negative, summing to 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weights {
    /// Weight of interestingness.
    pub int: f64,
    /// Weight of sufficiency.
    pub suf: f64,
    /// Weight of diversity.
    pub div: f64,
}

impl Weights {
    /// The paper's default: equal thirds (validated by TabEE's user studies).
    pub fn equal() -> Self {
        Weights {
            int: 1.0 / 3.0,
            suf: 1.0 / 3.0,
            div: 1.0 / 3.0,
        }
    }

    /// Creates validated weights.
    ///
    /// # Panics
    /// Panics if any weight is negative/non-finite or the sum is not 1.
    pub fn new(int: f64, suf: f64, div: f64) -> Self {
        for (name, w) in [("int", int), ("suf", suf), ("div", div)] {
            assert!(
                w.is_finite() && w >= 0.0,
                "weight {name} must be finite and non-negative, got {w}"
            );
        }
        assert!(
            ((int + suf + div) - 1.0).abs() < 1e-9,
            "weights must sum to 1, got {}",
            int + suf + div
        );
        Weights { int, suf, div }
    }

    /// The marginal Stage-1 weights `γ = (γ_Int, γ_Suf)` of Algorithm 2
    /// line 1: `λ` restricted to interestingness/sufficiency and
    /// renormalized. When both are zero (all weight on diversity), Stage-1
    /// falls back to an even split — some ranking is still needed to build
    /// candidate sets.
    pub fn gamma(&self) -> (f64, f64) {
        let denom = self.int + self.suf;
        if denom <= 0.0 {
            (0.5, 0.5)
        } else {
            (self.int / denom, self.suf / denom)
        }
    }
}

impl Default for Weights {
    fn default() -> Self {
        Weights::equal()
    }
}

/// The single-cluster score `SScore_γ(D, f, c, A)` (Definition 4.7):
/// `γ_Int·Int_p + γ_Suf·Suf_p`. Sensitivity ≤ 1 (Proposition 4.8), range
/// `[0, |D_c|]`.
pub fn sscore(st: &ScoreTable, c: usize, attr: usize, gamma: (f64, f64)) -> f64 {
    let a = st.attr(attr);
    gamma.0 * int_p(a, c) + gamma.1 * suf_p(a, c)
}

/// The global score `GlScore_λ(D, f, AC)` (Definition 4.8):
/// `λ_Int·avg_c Int_p + λ_Suf·avg_c Suf_p + λ_Div·Div_p`.
/// Sensitivity ≤ 1 (Proposition 4.9).
pub fn glscore(st: &ScoreTable, assignment: &[usize], w: Weights) -> f64 {
    let n = assignment.len();
    assert!(n > 0, "assignment must cover at least one cluster");
    assert_eq!(n, st.n_clusters(), "one attribute per cluster required");
    let mut int_sum = 0.0;
    let mut suf_sum = 0.0;
    for (c, &a) in assignment.iter().enumerate() {
        let t = st.attr(a);
        int_sum += int_p(t, c);
        suf_sum += suf_p(t, c);
    }
    let mut score = (w.int * int_sum + w.suf * suf_sum) / n as f64;
    if n >= 2 && w.div > 0.0 {
        score += w.div * crate::quality::diversity::div_p(st, assignment);
    }
    score
}

/// Pre-computed score components for fast enumeration of the `k^|C|`
/// candidate combinations in Stage-2: per-(cluster, candidate) single scores
/// and per-(pair of clusters, pair of candidates) diversities.
///
/// `glscore_cached` reproduces [`glscore`] exactly (tested), but evaluating a
/// combination costs `O(|C|²)` array reads instead of `O(|C|²·|dom|)` count
/// scans.
#[derive(Debug)]
pub struct GlScoreCache {
    n_clusters: usize,
    k: usize,
    /// `int_suf[c][i]` = `λ_Int·Int_p + λ_Suf·Suf_p` for cluster `c`'s `i`-th
    /// candidate, already divided by `|C|`.
    int_suf: Vec<Vec<f64>>,
    /// `pair[(c, i), (c2, j)]` = `λ_Div·d(c, c2, ·, ·) / binom(|C|, 2)`,
    /// flattened; only `c < c2` entries are populated.
    pair: Vec<f64>,
}

impl GlScoreCache {
    /// Builds the cache for the given per-cluster candidate sets.
    pub fn build(st: &ScoreTable, candidates: &[Vec<usize>], w: Weights) -> Self {
        let n = candidates.len();
        assert_eq!(n, st.n_clusters());
        let k = candidates.iter().map(Vec::len).max().unwrap_or(0);
        let int_suf: Vec<Vec<f64>> = candidates
            .iter()
            .enumerate()
            .map(|(c, cands)| {
                cands
                    .iter()
                    .map(|&a| {
                        let t = st.attr(a);
                        (w.int * int_p(t, c) + w.suf * suf_p(t, c)) / n as f64
                    })
                    .collect()
            })
            .collect();
        let pairs_norm = if n >= 2 {
            (n * (n - 1) / 2) as f64
        } else {
            1.0
        };
        let mut pair = vec![0.0; n * k * n * k];
        if n >= 2 && w.div > 0.0 {
            for c in 0..n {
                for (i, &a) in candidates[c].iter().enumerate() {
                    for c2 in (c + 1)..n {
                        for (j, &a2) in candidates[c2].iter().enumerate() {
                            pair[((c * k + i) * n + c2) * k + j] =
                                w.div * pair_d(st, c, c2, a, a2) / pairs_norm;
                        }
                    }
                }
            }
        }
        GlScoreCache {
            n_clusters: n,
            k,
            int_suf,
            pair,
        }
    }

    /// Number of clusters.
    pub fn n_clusters(&self) -> usize {
        self.n_clusters
    }

    /// Global score of the combination selecting candidate index `choice[c]`
    /// for each cluster.
    pub fn glscore_cached(&self, choice: &[usize]) -> f64 {
        let n = self.n_clusters;
        let k = self.k;
        let mut score = 0.0;
        for (c, &i) in choice.iter().enumerate() {
            score += self.int_suf[c][i];
            for (c2, &j) in choice.iter().enumerate().skip(c + 1) {
                score += self.pair[((c * k + i) * n + c2) * k + j];
            }
        }
        score
    }

    /// Incremental pair contribution of fixing cluster `c`'s candidate to `i`
    /// given earlier clusters' choices — used by the DFS enumeration.
    pub fn marginal_gain(&self, prefix: &[usize], c: usize, i: usize) -> f64 {
        let n = self.n_clusters;
        let k = self.k;
        let mut gain = self.int_suf[c][i];
        for (c0, &j) in prefix.iter().enumerate() {
            debug_assert!(c0 < c);
            gain += self.pair[((c0 * k + j) * n + c) * k + i];
        }
        gain
    }

    /// A prefix-*independent* upper bound on [`Self::marginal_gain`]: each
    /// pair term is replaced by its maximum over the earlier cluster's
    /// `ks[c0]` candidates, accumulated in exactly `marginal_gain`'s fold
    /// order. IEEE addition is monotone in each operand, so the bound is
    /// float-exact — `marginal_gain(p, c, i) <= gain_upper_bound(c, i, ks)`
    /// holds for *every* prefix `p` in the computed doubles, not just in
    /// exact arithmetic. Stage-2's counter kernels use it to prune whole
    /// subtrees of the combination space without evaluating them.
    pub fn gain_upper_bound(&self, c: usize, i: usize, ks: &[usize]) -> f64 {
        let n = self.n_clusters;
        let k = self.k;
        let mut ub = self.int_suf[c][i];
        for (c0, &kc0) in ks.iter().enumerate().take(c) {
            ub += (0..kc0)
                .map(|j| self.pair[((c0 * k + j) * n + c) * k + i])
                .fold(f64::NEG_INFINITY, f64::max);
        }
        ub
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counts::AttrCounts;

    fn table() -> ScoreTable {
        let a0 = AttrCounts::new(vec![vec![8.0, 2.0], vec![1.0, 9.0]], vec![9.0, 11.0]);
        let a1 = AttrCounts::new(vec![vec![5.0, 5.0], vec![5.0, 5.0]], vec![10.0, 10.0]);
        let a2 = AttrCounts::new(vec![vec![10.0, 0.0], vec![0.0, 10.0]], vec![10.0, 10.0]);
        ScoreTable::new(vec![a0, a1, a2])
    }

    #[test]
    fn weights_validate() {
        assert!(std::panic::catch_unwind(|| Weights::new(0.5, 0.5, 0.5)).is_err());
        assert!(std::panic::catch_unwind(|| Weights::new(-0.1, 0.6, 0.5)).is_err());
        let w = Weights::new(0.0, 0.5, 0.5);
        assert_eq!(w.int, 0.0);
    }

    #[test]
    fn gamma_renormalizes() {
        let w = Weights::new(0.2, 0.6, 0.2);
        let (gi, gs) = w.gamma();
        assert!((gi - 0.25).abs() < 1e-12);
        assert!((gs - 0.75).abs() < 1e-12);
        // Degenerate: everything on diversity.
        let (gi, gs) = Weights::new(0.0, 0.0, 1.0).gamma();
        assert_eq!((gi, gs), (0.5, 0.5));
    }

    #[test]
    fn sscore_prefers_separating_attribute() {
        let st = table();
        let gamma = (0.5, 0.5);
        // Attribute 2 perfectly separates cluster 0; attribute 1 is useless.
        assert!(sscore(&st, 0, 2, gamma) > sscore(&st, 0, 1, gamma));
    }

    #[test]
    fn glscore_prefers_informative_combination() {
        let st = table();
        let w = Weights::equal();
        let good = glscore(&st, &[2, 2], w);
        let bad = glscore(&st, &[1, 1], w);
        assert!(good > bad, "good {good} vs bad {bad}");
    }

    #[test]
    fn glscore_cached_matches_direct() {
        let st = table();
        let w = Weights::new(0.2, 0.3, 0.5);
        let candidates = vec![vec![0usize, 1, 2], vec![0, 1, 2]];
        let cache = GlScoreCache::build(&st, &candidates, w);
        for i in 0..3 {
            for j in 0..3 {
                let cached = cache.glscore_cached(&[i, j]);
                let direct = glscore(&st, &[candidates[0][i], candidates[1][j]], w);
                assert!(
                    (cached - direct).abs() < 1e-9,
                    "choice ({i},{j}): cached {cached} vs direct {direct}"
                );
            }
        }
    }

    #[test]
    fn marginal_gain_sums_to_full_score() {
        let st = table();
        let w = Weights::equal();
        let candidates = vec![vec![0usize, 2], vec![1, 2]];
        let cache = GlScoreCache::build(&st, &candidates, w);
        for i in 0..2 {
            for j in 0..2 {
                let dfs = cache.marginal_gain(&[], 0, i) + cache.marginal_gain(&[i], 1, j);
                let full = cache.glscore_cached(&[i, j]);
                assert!((dfs - full).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn gain_upper_bound_dominates_every_prefix() {
        // Three clusters so prefixes reach depth 2 with pair interactions.
        let a0 = AttrCounts::new(
            vec![vec![8.0, 2.0], vec![1.0, 9.0], vec![4.0, 6.0]],
            vec![13.0, 17.0],
        );
        let a1 = AttrCounts::new(
            vec![vec![5.0, 5.0], vec![5.0, 5.0], vec![5.0, 5.0]],
            vec![15.0, 15.0],
        );
        let a2 = AttrCounts::new(
            vec![vec![10.0, 0.0], vec![0.0, 10.0], vec![5.0, 5.0]],
            vec![15.0, 15.0],
        );
        let st = ScoreTable::new(vec![a0, a1, a2]);
        let w = Weights::new(0.2, 0.3, 0.5);
        let candidates = vec![vec![0usize, 1, 2], vec![0, 2], vec![1, 0, 2]];
        let ks: Vec<usize> = candidates.iter().map(Vec::len).collect();
        let cache = GlScoreCache::build(&st, &candidates, w);
        // Enumerate every prefix for every (cluster, candidate) pair; the
        // bound must dominate in the computed doubles (>=, not approximately).
        for c in 0..3 {
            for i in 0..ks[c] {
                let ub = cache.gain_upper_bound(c, i, &ks);
                let mut prefix = vec![0usize; c];
                loop {
                    let gain = cache.marginal_gain(&prefix, c, i);
                    assert!(
                        gain <= ub,
                        "gain {gain} exceeds bound {ub} at c={c}, i={i}, prefix {prefix:?}"
                    );
                    let mut pos = c;
                    loop {
                        if pos == 0 {
                            break;
                        }
                        pos -= 1;
                        prefix[pos] += 1;
                        if prefix[pos] < ks[pos] {
                            break;
                        }
                        prefix[pos] = 0;
                    }
                    if prefix.iter().all(|&d| d == 0) {
                        break;
                    }
                }
            }
        }
    }

    #[test]
    fn single_cluster_glscore_has_no_diversity_term() {
        let a = AttrCounts::new(vec![vec![4.0, 0.0]], vec![4.0, 6.0]);
        let st = ScoreTable::new(vec![a]);
        let with_div = glscore(&st, &[0], Weights::equal());
        let without = glscore(&st, &[0], Weights::new(0.5, 0.5, 0.0));
        // Both only see int+suf; equal-thirds just scales them differently.
        assert!(with_div > 0.0);
        assert!(without > 0.0);
    }

    #[test]
    fn glscore_neighbor_sensitivity_empirical_bound() {
        // Random-ish neighbor check of Proposition 4.9: adding one tuple
        // (value v, cluster c) moves GlScore by ≤ 1.
        let w = Weights::equal();
        let base = vec![
            vec![vec![3.0, 1.0, 4.0], vec![1.0, 5.0, 9.0]],
            vec![vec![2.0, 6.0, 5.0], vec![3.0, 5.0, 8.0]],
        ];
        let build = |cl: &Vec<Vec<Vec<f64>>>| {
            ScoreTable::new(
                cl.iter()
                    .map(|rows| {
                        let marg: Vec<f64> =
                            (0..3).map(|v| rows.iter().map(|r| r[v]).sum()).collect();
                        AttrCounts::new(rows.clone(), marg)
                    })
                    .collect(),
            )
        };
        let st = build(&base);
        for attr in 0..2 {
            for c in 0..2 {
                for v in 0..3 {
                    let mut neighbor = base.clone();
                    // One tuple changes EVERY attribute's counts; emulate by
                    // bumping the same (c, v) in both attribute tables.
                    for t in neighbor.iter_mut() {
                        t[c][v] += 1.0;
                    }
                    let st2 = build(&neighbor);
                    for assignment in [[0usize, 0], [0, 1], [1, 0], [attr, attr]] {
                        let d =
                            (glscore(&st, &assignment, w) - glscore(&st2, &assignment, w)).abs();
                        assert!(d <= 1.0 + 1e-9, "moved by {d}");
                    }
                }
            }
        }
    }
}
