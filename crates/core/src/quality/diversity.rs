//! Diversity: distinctiveness among the per-cluster explanations.
//!
//! *Sensitive* form (Appendix A.3, from TabEE): for each attribute, the
//! clusters explained by it form a group; a group of one contributes 1 (a new
//! attribute is maximally informative), and a larger group contributes the
//! permutation-averaged sum of "minimum TVD to any previously seen histogram
//! on the same attribute". Sensitivity ≥ ½ against a range of `O(|C|)`
//! (normalized here by `|C|` into `[0, 1]` for evaluation, per the paper's
//! footnote).
//!
//! *Low-sensitivity* form (Definitions 4.5/4.6): pairwise
//! `d(c, c', A_c, A_{c'}) = min{|D_c|, |D_{c'}|} ×` (1 if different
//! attributes, else the TVD between the two clusters' distributions), and
//! `Div_p(AC) = binom(|C|, 2)⁻¹ Σ_{pairs} d` — sensitivity ≤ 1
//! (Proposition 4.6), with small clusters deliberately down-weighted.

use crate::counts::{AttrCounts, ScoreTable};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// TVD between the value distributions of clusters `c` and `c'` inside one
/// attribute table. Empty clusters behave as zero vectors (`max{|D_c|, 1}`
/// convention of Definition 4.5).
pub fn pair_tvd(attr: &AttrCounts, c: usize, c2: usize) -> f64 {
    let s1 = attr.cluster_size(c).max(1.0);
    let s2 = attr.cluster_size(c2).max(1.0);
    0.5 * attr
        .cluster_row(c)
        .iter()
        .zip(attr.cluster_row(c2))
        .map(|(&a, &b)| (a / s1 - b / s2).abs())
        .sum::<f64>()
}

/// Low-sensitivity pairwise diversity `d` (Definition 4.5). `a_c` / `a_c2`
/// are the attribute indices chosen for clusters `c` / `c2`.
pub fn pair_d(st: &ScoreTable, c: usize, c2: usize, a_c: usize, a_c2: usize) -> f64 {
    let size_c = st.attr(a_c).cluster_size(c);
    let size_c2 = st.attr(a_c2).cluster_size(c2);
    let weight = size_c.min(size_c2);
    if a_c != a_c2 {
        weight
    } else {
        weight * pair_tvd(st.attr(a_c), c, c2)
    }
}

/// Low-sensitivity global diversity `Div_p` (Definition 4.6). Returns 0 for a
/// single cluster (no pairs).
pub fn div_p(st: &ScoreTable, assignment: &[usize]) -> f64 {
    let n = assignment.len();
    if n < 2 {
        return 0.0;
    }
    let pairs = (n * (n - 1) / 2) as f64;
    let mut sum = 0.0;
    for c in 0..n {
        for c2 in (c + 1)..n {
            sum += pair_d(st, c, c2, assignment[c], assignment[c2]);
        }
    }
    sum / pairs
}

/// Permutation diversity of one attribute group (Appendix A.3): the clusters
/// in `group` are all explained by attribute table `attr`. A singleton group
/// scores 1; a larger group scores the permutation average of
/// `Σ_{i≥2} min_{j<i} TVD(p_i, p_j)`.
///
/// Exact enumeration up to 6 clusters per group; deterministic Monte Carlo
/// (fixed-seed, 120 shuffles) beyond — the value is only used for evaluation
/// and non-private selection, never inside a DP mechanism.
pub fn perm_diversity(attr: &AttrCounts, group: &[usize]) -> f64 {
    let m = group.len();
    if m == 0 {
        return 0.0;
    }
    if m == 1 {
        return 1.0;
    }
    // Pairwise TVD cache.
    let tvd = |i: usize, j: usize| pair_tvd(attr, group[i], group[j]);
    let mut cache = vec![0.0f64; m * m];
    for i in 0..m {
        for j in (i + 1)..m {
            let d = tvd(i, j);
            cache[i * m + j] = d;
            cache[j * m + i] = d;
        }
    }
    let perm_value = |perm: &[usize]| -> f64 {
        (1..m)
            .map(|i| {
                (0..i)
                    .map(|j| cache[perm[i] * m + perm[j]])
                    .fold(f64::INFINITY, f64::min)
            })
            .sum()
    };
    if m <= 6 {
        // Exact: enumerate all m! permutations (≤ 720).
        let mut perm: Vec<usize> = (0..m).collect();
        let mut total = 0.0;
        let mut count = 0u64;
        heap_permutations(&mut perm, &mut |p| {
            total += perm_value(p);
            count += 1;
        });
        total / count as f64
    } else {
        let mut rng = StdRng::seed_from_u64(0x5EED_D117);
        let mut perm: Vec<usize> = (0..m).collect();
        let samples = 120;
        let mut total = 0.0;
        for _ in 0..samples {
            perm.shuffle(&mut rng);
            total += perm_value(&perm);
        }
        total / samples as f64
    }
}

fn heap_permutations<F: FnMut(&[usize])>(items: &mut [usize], visit: &mut F) {
    fn recurse<F: FnMut(&[usize])>(k: usize, items: &mut [usize], visit: &mut F) {
        if k <= 1 {
            visit(items);
            return;
        }
        for i in 0..k {
            recurse(k - 1, items, visit);
            if k.is_multiple_of(2) {
                items.swap(i, k - 1);
            } else {
                items.swap(0, k - 1);
            }
        }
    }
    recurse(items.len(), items, visit);
}

/// Sensitive global diversity of an attribute combination, normalized by
/// `|C|` into `[0, 1]` (the paper's footnote 6 normalization). Sums the
/// permutation diversity of every attribute group.
pub fn sensitive_div(st: &ScoreTable, assignment: &[usize]) -> f64 {
    let n = assignment.len();
    if n == 0 {
        return 0.0;
    }
    // Group clusters by chosen attribute.
    let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
    for (c, &a) in assignment.iter().enumerate() {
        if let Some(entry) = groups.iter_mut().find(|(attr, _)| *attr == a) {
            entry.1.push(c);
        } else {
            groups.push((a, vec![c]));
        }
    }
    groups
        .iter()
        .map(|(a, group)| perm_diversity(st.attr(*a), group))
        .sum::<f64>()
        / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two attributes over 3 clusters; attribute 0 has clusters with
    /// identical distributions, attribute 1 separates them fully.
    fn table() -> ScoreTable {
        let same = AttrCounts::new(
            vec![vec![5.0, 5.0], vec![50.0, 50.0], vec![10.0, 10.0]],
            vec![65.0, 65.0],
        );
        let distinct = AttrCounts::new(
            vec![
                vec![10.0, 0.0, 0.0],
                vec![0.0, 100.0, 0.0],
                vec![0.0, 0.0, 20.0],
            ],
            vec![10.0, 100.0, 20.0],
        );
        ScoreTable::new(vec![same, distinct])
    }

    #[test]
    fn pair_tvd_extremes() {
        let st = table();
        assert!(pair_tvd(st.attr(0), 0, 1).abs() < 1e-12);
        assert!((pair_tvd(st.attr(1), 0, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn different_attributes_score_min_size() {
        let st = table();
        // Clusters 0 (size 10) and 1 (size 100) on different attributes.
        let d = pair_d(&st, 0, 1, 0, 1);
        assert!((d - 10.0).abs() < 1e-12);
    }

    #[test]
    fn same_attribute_scales_tvd_by_min_size() {
        let st = table();
        // Same attribute 1, fully distinct distributions → min size × 1.
        let d = pair_d(&st, 0, 2, 1, 1);
        assert!((d - 10.0).abs() < 1e-12);
        // Same attribute 0, identical distributions → 0.
        let d0 = pair_d(&st, 0, 2, 0, 0);
        assert!(d0.abs() < 1e-12);
    }

    #[test]
    fn div_p_averages_pairs() {
        let st = table();
        // Assignment: all on attribute 1 (fully distinct): every pair scores
        // min size; pairs: (0,1)=10, (0,2)=10, (1,2)=20 → mean 40/3.
        let v = div_p(&st, &[1, 1, 1]);
        assert!((v - 40.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn div_p_single_cluster_is_zero() {
        let st = table();
        assert_eq!(div_p(&st, &[0]), 0.0);
    }

    #[test]
    fn div_p_neighbor_sensitivity_bounded_by_one() {
        // Proposition 4.6 on the A.3 construction: one tuple joins cluster 0.
        let before = ScoreTable::new(vec![AttrCounts::new(
            vec![vec![1.0, 0.0], vec![5.0, 0.0], vec![3.0, 0.0]],
            vec![9.0, 0.0],
        )]);
        let after = ScoreTable::new(vec![AttrCounts::new(
            vec![vec![1.0, 1.0], vec![5.0, 0.0], vec![3.0, 0.0]],
            vec![9.0, 1.0],
        )]);
        let d = (div_p(&before, &[0, 0, 0]) - div_p(&after, &[0, 0, 0])).abs();
        assert!(d <= 1.0 + 1e-9, "Div_p moved by {d}");
    }

    #[test]
    fn perm_diversity_singleton_is_one() {
        let st = table();
        assert_eq!(perm_diversity(st.attr(0), &[1]), 1.0);
    }

    #[test]
    fn perm_diversity_identical_distributions_is_zero() {
        let st = table();
        assert!(perm_diversity(st.attr(0), &[0, 1, 2]).abs() < 1e-12);
    }

    #[test]
    fn perm_diversity_appendix_construction_is_half() {
        // A.3: one cluster differs from the others by TVD ½; pairwise TVD
        // among the rest is 0 → every permutation scores ½.
        let attr = AttrCounts::new(
            vec![
                vec![1.0, 1.0],  // distribution (½, ½)
                vec![10.0, 0.0], // (1, 0)
                vec![7.0, 0.0],  // (1, 0)
            ],
            vec![18.0, 1.0],
        );
        let v = perm_diversity(&attr, &[0, 1, 2]);
        assert!((v - 0.5).abs() < 1e-9, "PermDiv {v}");
    }

    #[test]
    fn perm_diversity_monte_carlo_path_is_stable() {
        // 8 clusters on one attribute triggers the MC path; determinism and
        // range sanity.
        let attr = AttrCounts::new(
            (0..8)
                .map(|c| {
                    let mut row = vec![0.0; 8];
                    row[c] = 10.0;
                    row
                })
                .collect(),
            vec![10.0; 8],
        );
        let a = perm_diversity(&attr, &(0..8).collect::<Vec<_>>());
        let b = perm_diversity(&attr, &(0..8).collect::<Vec<_>>());
        assert_eq!(a, b, "MC uses a fixed seed");
        // All pairwise TVD = 1 → every permutation scores m−1 = 7.
        assert!((a - 7.0).abs() < 1e-9);
    }

    #[test]
    fn sensitive_div_prefers_distinct_attributes() {
        let st = table();
        // Distinct attributes per cluster: each singleton group contributes 1.
        let st3 = ScoreTable::new(vec![
            st.attr(0).clone(),
            st.attr(1).clone(),
            st.attr(0).clone(),
        ]);
        let distinct = sensitive_div(&st3, &[0, 1, 2]);
        assert!((distinct - 1.0).abs() < 1e-12);
        // All on the identical-distribution attribute: 0.
        let same = sensitive_div(&st3, &[0, 0, 0]);
        assert!(same.abs() < 1e-12);
        assert!(distinct > same);
    }

    #[test]
    fn heap_permutations_enumerates_factorial() {
        let mut count = 0;
        let mut items = vec![0, 1, 2, 3];
        heap_permutations(&mut items, &mut |_| count += 1);
        assert_eq!(count, 24);
    }
}
