//! Sufficiency: does the explaining attribute's value determine membership?
//!
//! *Sensitive* form (§4.2, after Dasgupta et al. / TabEE): the global
//! `Suf(D, f, AC)` averages, over tuples, the probability that a random tuple
//! sharing `t`'s value on the explaining attribute lies in `t`'s cluster.
//! Range `[0, 1]`, sensitivity ≥ ½ (Proposition 4.3).
//!
//! *Low-sensitivity* form (Definition 4.4):
//! `Suf_p(D, f, c, A) = Σ_{v ∈ dom_{D_c}(A)} cnt_{A=v}(D_c)² / cnt_{A=v}(D)`
//! with the identity `|D| · Suf = Σ_c Suf_p(c, AC(c))` (Proposition 4.4.1),
//! sensitivity 1 and range `[0, |D_c|]` (Proposition 4.4.2).

use crate::counts::AttrCounts;

/// Low-sensitivity sufficiency `Suf_p` (Definition 4.4). Sums only over
/// values active in the cluster, so no division by zero on exact counts; for
/// noisy counts a marginal smaller than the cluster count is clamped up to it
/// (the ratio is capped at the cluster count, preserving the `[0, |D_c|]`
/// range).
pub fn suf_p(attr: &AttrCounts, c: usize) -> f64 {
    attr.cluster_row(c)
        .iter()
        .zip(attr.marginal())
        .filter(|(&k, _)| k > 0.0)
        .map(|(&k, &m)| k * k / m.max(k))
        .sum()
}

/// Sensitive per-cluster sufficiency: `Suf_p / |D_c|` — the fraction of the
/// cluster "explained" by its attribute values, in `[0, 1]`. Empty clusters
/// score 0.
pub fn sensitive_suf_cluster(attr: &AttrCounts, c: usize) -> f64 {
    let size = attr.cluster_size(c);
    if size <= 0.0 {
        return 0.0;
    }
    suf_p(attr, c) / size
}

/// Sensitive global sufficiency `Suf(D, f, AC)` for an attribute combination,
/// computed through the Proposition 4.4.1 identity
/// `Suf = (1/|D|) Σ_c Suf_p(c, AC(c))`.
///
/// `assignment[c]` is the attribute table chosen for cluster `c`.
pub fn sensitive_suf_global(tables: &[&AttrCounts], _n_clusters: usize) -> f64 {
    let total: f64 = tables.first().map_or(0.0, |t| t.total());
    if total <= 0.0 {
        return 0.0;
    }
    tables
        .iter()
        .enumerate()
        .map(|(c, t)| suf_p(t, c))
        .sum::<f64>()
        / total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counts::AttrCounts;

    #[test]
    fn perfectly_sufficient_attribute_scores_cluster_size() {
        // All of the cluster's values occur only inside it.
        let a = AttrCounts::new(vec![vec![10.0, 0.0], vec![0.0, 20.0]], vec![10.0, 20.0]);
        assert!((suf_p(&a, 0) - 10.0).abs() < 1e-12);
        assert!((suf_p(&a, 1) - 20.0).abs() < 1e-12);
        assert!((sensitive_suf_cluster(&a, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shared_values_reduce_sufficiency() {
        // Cluster's single value also appears 90 times outside.
        let a = AttrCounts::new(vec![vec![10.0, 0.0]], vec![100.0, 50.0]);
        assert!((suf_p(&a, 0) - 1.0).abs() < 1e-12); // 10²/100
        assert!((sensitive_suf_cluster(&a, 0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn paper_proposition_4_3_construction() {
        // Appendix A.2: D = {t1}, clusters {t1} and ∅, both explained by A.
        // Global Suf = 1.
        let before0 = AttrCounts::new(vec![vec![1.0], vec![0.0]], vec![1.0]);
        let g_before = sensitive_suf_global(&[&before0, &before0], 2);
        assert!((g_before - 1.0).abs() < 1e-12);
        // Add t2 with the same value to cluster 2: Suf drops to ½.
        let after = AttrCounts::new(vec![vec![1.0], vec![1.0]], vec![2.0]);
        let g_after = sensitive_suf_global(&[&after, &after], 2);
        assert!((g_after - 0.5).abs() < 1e-12);
        // A single-tuple change moved the sensitive global by ½.
        assert!((g_before - g_after).abs() > 0.49);
    }

    #[test]
    fn suf_p_neighbor_moves_by_at_most_one() {
        // Proposition 4.4.2's bound on the same construction.
        let before = AttrCounts::new(vec![vec![1.0], vec![0.0]], vec![1.0]);
        let after = AttrCounts::new(vec![vec![1.0], vec![1.0]], vec![2.0]);
        for c in 0..2 {
            let d = (suf_p(&before, c) - suf_p(&after, c)).abs();
            assert!(d <= 1.0 + 1e-9, "cluster {c} moved by {d}");
        }
    }

    #[test]
    fn identity_with_global_definition() {
        // |D|·Suf = Σ_c Suf_p — check on a 3-value, 2-cluster table.
        let a = AttrCounts::new(
            vec![vec![5.0, 2.0, 0.0], vec![1.0, 4.0, 3.0]],
            vec![6.0, 6.0, 3.0],
        );
        let total = a.total();
        let lhs = sensitive_suf_global(&[&a, &a], 2) * total;
        let rhs = suf_p(&a, 0) + suf_p(&a, 1);
        assert!((lhs - rhs).abs() < 1e-9);
    }

    #[test]
    fn empty_cluster_scores_zero() {
        let a = AttrCounts::new(vec![vec![0.0, 0.0]], vec![3.0, 4.0]);
        assert_eq!(suf_p(&a, 0), 0.0);
        assert_eq!(sensitive_suf_cluster(&a, 0), 0.0);
    }

    #[test]
    fn noisy_counts_where_cluster_exceeds_marginal_stay_bounded() {
        // Noise can make cnt(D_c) > cnt(D); the ratio is capped.
        let a = AttrCounts::new(vec![vec![5.0]], vec![2.0]);
        let v = suf_p(&a, 0);
        assert!(
            (v - 5.0).abs() < 1e-12,
            "capped at the cluster count, got {v}"
        );
        assert!(v <= a.cluster_size(0) + 1e-9);
    }

    #[test]
    fn range_never_exceeds_cluster_size() {
        let a = AttrCounts::new(vec![vec![3.0, 4.0, 2.0]], vec![3.0, 10.0, 2.0]);
        assert!(suf_p(&a, 0) <= a.cluster_size(0) + 1e-9);
    }
}
