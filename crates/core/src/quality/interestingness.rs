//! Interestingness: distributional shift between a cluster and the full data.
//!
//! *Sensitive* form (Equation 1): `TVD(π_A(D), π_A(D_c))` — range `[0, 1]`,
//! sensitivity ≥ ½ (Proposition 4.1), unusable under DP.
//!
//! *Low-sensitivity* form (Definition 4.2):
//! `Int_p(D, f, c, A) = ½ Σ_v |cnt_{A=v}(D_c) − (|D_c|/|D|)·cnt_{A=v}(D)|`
//! `= |D_c| · TVD(π_A(D), π_A(D_c))` — identical per-cluster ranking,
//! sensitivity exactly 1, range `[0, |D_c|]` (Proposition 4.2).

use crate::counts::AttrCounts;

/// Sensitive TVD interestingness of attribute table `attr` for cluster `c`
/// (Equation 1). Empty clusters score 0 (their "distribution" is the zero
/// vector, mirroring the `max{|D_c|, 1}` convention of Definition 4.5).
pub fn sensitive_tvd(attr: &AttrCounts, c: usize) -> f64 {
    let total = attr.total();
    let size = attr.cluster_size(c);
    if total <= 0.0 || size <= 0.0 {
        return 0.0;
    }
    0.5 * attr
        .marginal()
        .iter()
        .zip(attr.cluster_row(c))
        .map(|(&m, &k)| (m / total - k / size).abs())
        .sum::<f64>()
}

/// Sensitive Jensen–Shannon interestingness (Appendix A.1): JS *distance*
/// between the cluster and full-data distributions, log base 2 so the range
/// is `[0, 1]` as the appendix states.
pub fn sensitive_js(attr: &AttrCounts, c: usize) -> f64 {
    let total = attr.total();
    let size = attr.cluster_size(c);
    if total <= 0.0 || size <= 0.0 {
        return 0.0;
    }
    let mut div = 0.0;
    for (&m, &k) in attr.marginal().iter().zip(attr.cluster_row(c)) {
        let p = m / total;
        let q = k / size;
        let mid = 0.5 * (p + q);
        if p > 0.0 {
            div += 0.5 * p * (p / mid).log2();
        }
        if q > 0.0 {
            div += 0.5 * q * (q / mid).log2();
        }
    }
    div.max(0.0).sqrt()
}

/// Low-sensitivity interestingness `Int_p` (Definition 4.2).
pub fn int_p(attr: &AttrCounts, c: usize) -> f64 {
    let total = attr.total();
    if total <= 0.0 {
        return 0.0;
    }
    let ratio = attr.cluster_size(c) / total;
    0.5 * attr
        .cluster_row(c)
        .iter()
        .zip(attr.marginal())
        .map(|(&k, &m)| (k - ratio * m).abs())
        .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attr(cluster: Vec<Vec<f64>>, marginal: Vec<f64>) -> AttrCounts {
        AttrCounts::new(cluster, marginal)
    }

    #[test]
    fn identical_distribution_scores_zero() {
        // Cluster is a scaled copy of the full data: no shift.
        let a = attr(vec![vec![10.0, 30.0], vec![10.0, 30.0]], vec![20.0, 60.0]);
        assert!(sensitive_tvd(&a, 0).abs() < 1e-12);
        assert!(int_p(&a, 0).abs() < 1e-12);
        assert!(sensitive_js(&a, 0).abs() < 1e-12);
    }

    #[test]
    fn paper_example_4_1_values() {
        // §4.1: |D| = 100,000, 95% have A=1; cluster = single tuple with A=0.
        let a = attr(vec![vec![1.0, 0.0]], vec![5_000.0, 95_000.0]);
        assert!((sensitive_tvd(&a, 0) - 0.95).abs() < 1e-9);
        // Int_p = |D_c| · TVD = 0.95.
        assert!((int_p(&a, 0) - 0.95).abs() < 1e-9);
    }

    #[test]
    fn paper_example_4_1_neighbor_shift_is_half() {
        // Add one tuple with A=1 to the cluster: TVD jumps by ≈ ½ (the
        // sensitivity lower-bound construction of Proposition 4.1)...
        let before = attr(vec![vec![1.0, 0.0]], vec![5_000.0, 95_000.0]);
        let after = attr(vec![vec![1.0, 1.0]], vec![5_000.0, 95_001.0]);
        let delta_tvd = (sensitive_tvd(&before, 0) - sensitive_tvd(&after, 0)).abs();
        assert!(delta_tvd > 0.49, "TVD shift {delta_tvd} should be ≈ 0.5");
        // ...while Int_p moves by at most 1 (Proposition 4.2).
        let delta_intp = (int_p(&before, 0) - int_p(&after, 0)).abs();
        assert!(delta_intp <= 1.0 + 1e-9, "Int_p shift {delta_intp}");
    }

    #[test]
    fn int_p_equals_cluster_size_times_tvd() {
        // The identity below Definition 4.2.
        let a = attr(
            vec![vec![7.0, 1.0, 4.0], vec![3.0, 9.0, 2.0]],
            vec![10.0, 10.0, 6.0],
        );
        for c in 0..2 {
            let lhs = int_p(&a, c);
            let rhs = a.cluster_size(c) * sensitive_tvd(&a, c);
            assert!((lhs - rhs).abs() < 1e-9, "cluster {c}: {lhs} vs {rhs}");
        }
    }

    #[test]
    fn int_p_range_is_zero_to_cluster_size() {
        // Proposition 4.2 range bound, extremal case: cluster disjoint from rest.
        let a = attr(vec![vec![10.0, 0.0]], vec![10.0, 90.0]);
        let v = int_p(&a, 0);
        assert!(v <= 10.0 + 1e-9);
        assert!((v - 9.0).abs() < 1e-9); // 10 · TVD(10/100 vs 1) = 10 · 0.9
    }

    #[test]
    fn empty_cluster_is_safe() {
        let a = attr(vec![vec![0.0, 0.0]], vec![5.0, 5.0]);
        assert_eq!(sensitive_tvd(&a, 0), 0.0);
        assert_eq!(int_p(&a, 0), 0.0);
        assert_eq!(sensitive_js(&a, 0), 0.0);
    }

    #[test]
    fn js_sensitivity_construction_from_appendix() {
        // Appendix A.1: d_JS jumps > ½ when adding one tuple to a singleton
        // cluster in a large constant dataset.
        let n = 1_000_000.0;
        let before = attr(vec![vec![1.0, 0.0]], vec![n, 0.0]);
        let after = attr(vec![vec![1.0, 1.0]], vec![n, 1.0]);
        let delta = (sensitive_js(&before, 0) - sensitive_js(&after, 0)).abs();
        assert!(delta > 0.5, "JS shift {delta}");
    }

    #[test]
    fn ranking_preserved_between_tvd_and_int_p_within_cluster() {
        // For a fixed cluster, Int_p and TVD order attributes identically.
        let strong = attr(vec![vec![10.0, 0.0]], vec![10.0, 90.0]);
        let weak = attr(vec![vec![5.0, 5.0]], vec![50.0, 50.0]);
        assert!(sensitive_tvd(&strong, 0) > sensitive_tvd(&weak, 0));
        assert!(int_p(&strong, 0) > int_p(&weak, 0));
    }
}
