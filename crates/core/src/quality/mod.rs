//! Quality functions for histogram-based explanations (§4 of the paper).
//!
//! Two families live here:
//!
//! * **Sensitive originals** (prefixed `sensitive_`): TVD/Jensen–Shannon
//!   interestingness, Dasgupta-style sufficiency, and TabEE's permutation
//!   diversity. Their sensitivity is Ω(1) relative to a `[0, 1]` range
//!   (Propositions 4.1, 4.3 and Appendix A.3), which is why they cannot
//!   drive DP selection — but they remain the *evaluation* yardstick
//!   ([`crate::eval::quality`]) and power the TabEE / DP-TabEE baselines.
//! * **Low-sensitivity variants** (suffixed `_p`): `Int_p`, `Suf_p`, pairwise
//!   `d` and `Div_p` — each with sensitivity exactly 1 and range
//!   `[0, |D_c|]`-scaled, preserving the per-cluster attribute ranking of the
//!   originals (the multiplicative-`|D_c|` identities of §4).
//!
//! The sensitivity bounds are not just documented: `tests/` in each module
//! replays the adversarial neighboring datasets from the paper's proofs and
//! property-tests random neighbors.

pub mod diversity;
pub mod interestingness;
pub mod score;
pub mod sufficiency;
