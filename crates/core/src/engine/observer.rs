//! The pipeline observer seam: per-stage events and two standard observers.
//!
//! The engine emits one [`StageEvent`] per completed stage. The event
//! vocabulary (also documented in DESIGN.md) is:
//!
//! * `wall` — wall-clock duration of the stage body;
//! * `epsilon` — ε charged by the stage, measured as the accountant's
//!   `spent()` delta across the stage (so the four values sum to the run's
//!   total spend, including parallel-composition maxima);
//! * `charges` — the individual ledger entries the stage added, with
//!   parallel-group members labeled `group/member`;
//! * `metrics` — stage-specific counters: `cache_hit`, `n_attributes`,
//!   `n_clusters` (build-counts); `candidate_sets`, `candidates_total`
//!   (candidate-selection); `combinations_enumerated`
//!   (combination-selection); `distinct_attributes`, `histograms_released`
//!   (histogram-release).

use dpx_dp::budget::Charge;
use std::fmt::Write as _;
use std::time::Duration;

/// What the engine observed about one completed stage.
#[derive(Debug, Clone)]
pub struct StageEvent {
    /// Stage name (one of the `STAGE_*` constants).
    pub stage: &'static str,
    /// Wall-clock duration of the stage body.
    pub wall: Duration,
    /// ε charged by this stage (accountant `spent()` delta).
    pub epsilon: f64,
    /// The ledger entries the stage added, in charge order.
    pub charges: Vec<Charge>,
    /// Stage-specific counters, in emission order.
    pub metrics: Vec<(&'static str, f64)>,
}

/// Receives one event per completed pipeline stage.
///
/// Observation is pure post-processing: events carry no sensitive data beyond
/// what the mechanism outputs already reveal (timings, public configuration,
/// and the ε ledger).
pub trait PipelineObserver {
    /// Called after each stage completes successfully.
    fn on_stage(&mut self, event: StageEvent);
}

/// Discards every event — the default when no observation is requested.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopObserver;

impl PipelineObserver for NoopObserver {
    fn on_stage(&mut self, _event: StageEvent) {}
}

/// Records every event; renders the `explain --timings` report.
#[derive(Debug, Default, Clone)]
pub struct CollectingObserver {
    events: Vec<StageEvent>,
}

impl CollectingObserver {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded events, in stage order.
    pub fn events(&self) -> &[StageEvent] {
        &self.events
    }

    /// Sum of the per-stage ε charges. Because each stage's `epsilon` is a
    /// `spent()` delta, this equals the run's total spend (and, on a
    /// successful full run, `config.total_epsilon()` up to round-off).
    pub fn total_epsilon(&self) -> f64 {
        self.events.iter().map(|e| e.epsilon).sum()
    }

    /// Total wall-clock time across recorded stages.
    pub fn total_wall(&self) -> Duration {
        self.events.iter().map(|e| e.wall).sum()
    }

    /// A human-readable per-stage report: wall time, ε, charges, metrics.
    pub fn report(&self) -> String {
        let mut out = String::from("pipeline stages:\n");
        for e in &self.events {
            let _ = writeln!(
                out,
                "  {:<22} {:>9.3} ms   ε {:.6}",
                e.stage,
                e.wall.as_secs_f64() * 1e3,
                e.epsilon
            );
            for c in &e.charges {
                let _ = writeln!(out, "      charge {:<32} ε {:.6}", c.label, c.epsilon);
            }
            if !e.metrics.is_empty() {
                let rendered: Vec<String> =
                    e.metrics.iter().map(|(k, v)| format!("{k}={v}")).collect();
                let _ = writeln!(out, "      [{}]", rendered.join(", "));
            }
        }
        let _ = writeln!(
            out,
            "total: {:.3} ms, ε {:.6}",
            self.total_wall().as_secs_f64() * 1e3,
            self.total_epsilon()
        );
        out
    }
}

impl PipelineObserver for CollectingObserver {
    fn on_stage(&mut self, event: StageEvent) {
        self.events.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(stage: &'static str, eps: f64) -> StageEvent {
        StageEvent {
            stage,
            wall: Duration::from_millis(2),
            epsilon: eps,
            charges: vec![],
            metrics: vec![("n", 3.0)],
        }
    }

    #[test]
    fn collector_accumulates_and_sums() {
        let mut obs = CollectingObserver::new();
        obs.on_stage(event("build-counts", 0.0));
        obs.on_stage(event("candidate-selection", 0.1));
        obs.on_stage(event("combination-selection", 0.2));
        assert_eq!(obs.events().len(), 3);
        assert!((obs.total_epsilon() - 0.3).abs() < 1e-12);
        assert_eq!(obs.total_wall(), Duration::from_millis(6));
        let report = obs.report();
        assert!(report.contains("build-counts"));
        assert!(report.contains("candidate-selection"));
        assert!(report.contains("[n=3]"));
    }

    #[test]
    fn noop_observer_is_callable() {
        NoopObserver.on_stage(event("histogram-release", 0.1));
    }
}
