//! The staged explanation engine.
//!
//! [`framework::DpClustX`](crate::framework::DpClustX) presents DPClustX as
//! one call; this module is the machinery behind it, split into four explicit
//! [`Stage`]s run in sequence:
//!
//! 1. [`BuildCounts`] — obtain the per-clustering [`CountedTables`]
//!    (contingency counts + score table), memoized in the [`ExplainContext`]
//!    keyed by *(dataset fingerprint, labels hash)*;
//! 2. [`CandidateSelection`] — Stage 1 of the paper (Algorithm 1), with
//!    per-cluster scoring fanned out over worker threads;
//! 3. [`CombinationSelection`] — the exponential mechanism over `k^|C|`
//!    combinations (Algorithm 2, line 5);
//! 4. [`HistogramRelease`] — the noisy histogram release (Algorithm 2,
//!    lines 6–15), with per-attribute and per-cluster releases parallelized.
//!
//! Every stage boundary is a seam: the engine wraps each stage run with wall
//! -clock timing and an [`Accountant`] ledger mark, and reports a
//! [`StageEvent`] (duration, ε charged, per-label charges, stage metrics) to
//! a [`PipelineObserver`]. [`NoopObserver`] discards events;
//! [`CollectingObserver`] records them and renders the `--timings` report.
//!
//! Parallel stages stay deterministic under a fixed seed: per-task RNGs are
//! split from the master RNG in task order before the fan-out and results are
//! merged in input order, so `threads = 1` and `threads = N` produce
//! bit-identical explanations (see [`crate::parallel`]).

mod observer;
mod stages;

pub use observer::{CollectingObserver, NoopObserver, PipelineObserver, StageEvent};
pub use stages::{
    BuildCounts, CandidateSelection, CombinationSelection, EngineState, HistogramRelease, Stage,
    STAGE_BUILD_COUNTS, STAGE_CANDIDATES, STAGE_COMBINATION, STAGE_HISTOGRAMS,
};

use crate::counts::ScoreTable;
use crate::framework::{DpClustXConfig, Outcome};
use crate::stage2::Stage2Kernel;
use dpx_data::contingency::ClusteredCounts;
use dpx_data::{hash_labels, Dataset, Schema};
use dpx_dp::budget::{Accountant, Epsilon};
use dpx_dp::histogram::{GeometricHistogram, HistogramMechanism};
use dpx_dp::DpError;
use dpx_runtime::singleflight::{Claim, SingleFlight};
use dpx_runtime::CancelToken;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Key of the counts cache: which dataset, under which cluster assignment.
///
/// Both halves are stable content hashes (see [`dpx_data::fingerprint`]), so
/// the cache survives re-deriving an identical labeling and never confuses
/// two datasets or two clusterings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CountsKey {
    /// [`Dataset::fingerprint`] of the clustered dataset.
    pub dataset_fingerprint: u64,
    /// [`hash_labels`] of the cluster assignment (labels and cluster count).
    pub labels_hash: u64,
}

/// The memoized per-clustering tables: the one-pass contingency counts and
/// the score table derived from them. Building these is the dominant
/// data-scan cost of an explanation, which is why the engine caches them.
#[derive(Debug)]
pub struct CountedTables {
    /// `(cluster × value)` count tables, one per attribute.
    pub counts: ClusteredCounts,
    /// The quality-score table over those counts.
    pub table: ScoreTable,
}

/// A concurrency-safe, fingerprint-keyed memo of [`CountedTables`].
///
/// Historically each [`ExplainContext`] owned a private `HashMap` cache;
/// the serving layer shares one cache per registered dataset across many
/// concurrent sessions, so the map now lives behind a mutex and contexts
/// hold it through an `Arc`. Reads and inserts are short critical sections;
/// the expensive table *build* on a miss runs **outside** the lock.
///
/// Misses are **single-flight**: the first builder of a key registers an
/// in-flight claim (a [`SingleFlight`] set beside the map), so N concurrent
/// misses of one key run the data scan exactly once — followers block on the
/// builder's flight and read its result out of the map instead of redoing
/// the scan. A builder that *panics* releases its claim on unwind; a waiting
/// follower then finds the map still empty and runs the build itself, so a
/// poisoned request can waste one build but never wedge the key. The map
/// stays first-insert-wins underneath (builds are bit-identical by
/// construction — [`ClusteredCounts::build_parallel`] is
/// thread-count-invariant), so correctness never depends on who won; the
/// flight set only removes the duplicated work.
///
/// The cache is optionally **bounded** ([`Self::with_max_entries`]): every
/// append re-keys the dataset fingerprint, so a long-lived serving process
/// would otherwise accumulate one dead entry per append forever. Over the
/// bound, inserts evict the least-recently-used key — except keys with an
/// in-flight single-flight claim, whose published tables must survive until
/// the flight closes so woken followers find them.
#[derive(Debug, Default)]
pub struct SharedCountsCache {
    map: Mutex<HashMap<CountsKey, CacheSlot>>,
    /// In-flight builds by key: leader election for cache misses.
    flight: SingleFlight<CountsKey>,
    /// Times a caller coalesced onto another caller's in-flight build
    /// instead of scanning (monotone; scheduling-dependent, so it feeds
    /// summaries and benches, never wire responses).
    singleflight_hits: AtomicU64,
    /// Monotone recency clock; bumped by every get/insert.
    tick: AtomicU64,
    /// Entry bound; `None` grows without limit (the historical behavior).
    max_entries: Option<usize>,
}

/// A memoized entry plus the recency tick eviction orders by.
#[derive(Debug)]
struct CacheSlot {
    tables: Arc<CountedTables>,
    last_used: u64,
}

impl SharedCountsCache {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache holding at most `max_entries` memoized clusterings
    /// (promoted to 1 if zero). Over the bound, inserts evict the
    /// least-recently-used evictable key.
    pub fn with_max_entries(max_entries: usize) -> Self {
        SharedCountsCache {
            max_entries: Some(max_entries.max(1)),
            ..Self::default()
        }
    }

    /// The entry bound, if this cache was built with one.
    pub fn max_entries(&self) -> Option<usize> {
        self.max_entries
    }

    /// The map mutex only ever guards `HashMap` operations, which either
    /// complete or leave the map untouched; recovering from poisoning (a
    /// panic on some other thread while it held the lock) is sound and keeps
    /// a cache of *derivable* data from wedging unrelated sessions.
    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<CountsKey, CacheSlot>> {
        self.map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, AtomicOrdering::Relaxed) + 1
    }

    /// Memoizes `tables` under `key` (first insert wins), bumps the slot's
    /// recency, and — when the cache is bounded — evicts least-recently-used
    /// keys until the bound holds again. A key whose single-flight claim is
    /// still open is never evicted: its leader published the value for
    /// followers that have not read it yet. The caller holds the map lock.
    fn insert_and_evict(
        &self,
        map: &mut HashMap<CountsKey, CacheSlot>,
        key: CountsKey,
        tables: Arc<CountedTables>,
    ) -> Arc<CountedTables> {
        let tick = self.next_tick();
        let slot = map.entry(key).or_insert(CacheSlot {
            tables,
            last_used: 0,
        });
        slot.last_used = tick;
        let winner = Arc::clone(&slot.tables);
        if let Some(max) = self.max_entries {
            while map.len() > max {
                let evictee = map
                    .iter()
                    .filter(|(k, _)| **k != key && !self.flight.in_flight(k))
                    .min_by_key(|(_, slot)| slot.last_used)
                    .map(|(k, _)| *k);
                match evictee {
                    Some(k) => {
                        map.remove(&k);
                    }
                    // Everything else is mid-flight: let the map run over
                    // the bound briefly rather than break a live flight.
                    None => break,
                }
            }
        }
        winner
    }

    /// Number of memoized clusterings.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Drops all memoized tables.
    pub fn clear(&self) {
        self.lock().clear()
    }

    /// The memoized tables for `key`, if present. A hit bumps the key's
    /// recency, so hot clusterings survive eviction in a bounded cache.
    pub fn get(&self, key: &CountsKey) -> Option<Arc<CountedTables>> {
        let tick = self.next_tick();
        let mut map = self.lock();
        map.get_mut(key).map(|slot| {
            slot.last_used = tick;
            Arc::clone(&slot.tables)
        })
    }

    /// The tables for `key`: served from the memo when present, built with
    /// `build` (outside the lock, single-flight — see the type docs) and
    /// memoized otherwise. The second element reports whether the memo
    /// already held the tables (a follower coalescing onto another caller's
    /// build counts as a hit: it never scanned).
    pub fn get_or_build(
        &self,
        key: CountsKey,
        build: impl FnOnce() -> CountedTables,
    ) -> (Arc<CountedTables>, bool) {
        self.get_or_build_cancellable(key, None, build)
            .expect("no token, wait cannot cancel")
    }

    /// [`Self::get_or_build`] whose follower wait is bounded by a
    /// [`CancelToken`]: a follower whose token fires while it is blocked on
    /// another caller's build returns `Err(reason)` without having spent the
    /// scan. The build itself is never interrupted — only waits are.
    pub fn get_or_build_cancellable(
        &self,
        key: CountsKey,
        cancel: Option<&CancelToken>,
        build: impl FnOnce() -> CountedTables,
    ) -> Result<(Arc<CountedTables>, bool), String> {
        let mut build = Some(build);
        loop {
            if let Some(hit) = self.get(&key) {
                return Ok((hit, true));
            }
            match self.flight.claim(&key) {
                Claim::Leader(guard) => {
                    let build = build.take().expect("a caller leads at most once");
                    let built = Arc::new(build());
                    // Publish before releasing the flight: a woken follower
                    // must find the value (or know the leader died). The open
                    // flight also shields the fresh entry from eviction.
                    let winner = self.insert_and_evict(&mut self.lock(), key, built);
                    drop(guard);
                    return Ok((winner, false));
                }
                Claim::Follower => {
                    self.singleflight_hits.fetch_add(1, AtomicOrdering::Relaxed);
                    self.flight.wait(&key, cancel)?;
                    // Re-check the map: populated on success, still empty if
                    // the leader panicked — in which case we claim next.
                }
            }
        }
    }

    /// Times callers coalesced onto an in-flight build instead of scanning.
    pub fn singleflight_hits(&self) -> u64 {
        self.singleflight_hits.load(AtomicOrdering::Relaxed)
    }

    /// Memoizes already-built tables under `key`, returning the tables that
    /// ended up cached. Used by the serve layer's append path, which derives
    /// a successor entry from a cached one via
    /// [`ClusteredCounts::apply_delta`] instead of rebuilding. First insert
    /// wins, like [`Self::get_or_build`] — a racing full build of the same
    /// key is bit-identical by construction.
    pub fn insert(&self, key: CountsKey, tables: CountedTables) -> Arc<CountedTables> {
        self.insert_and_evict(&mut self.lock(), key, Arc::new(tables))
    }

    /// Every memoized key (unordered). The serve layer's append refresh uses
    /// this to find which cached clusterings are worth carrying forward.
    pub fn keys(&self) -> Vec<CountsKey> {
        self.lock().keys().copied().collect()
    }
}

/// Shared state threaded through engine runs: the dataset (behind an `Arc`),
/// its fingerprint (computed once), the master RNG, and the memoized counts
/// cache. One context serves any number of `explain` calls; repeated
/// explanations of the same clustering skip the data scan entirely.
///
/// The cache itself is a [`SharedCountsCache`] behind an `Arc`: a context
/// opened with [`ExplainContext::with_shared_cache`] shares its memo with
/// every other context (and serving session) holding the same cache handle,
/// so concurrent requests against one dataset reuse each other's counts.
#[derive(Debug)]
pub struct ExplainContext {
    data: Arc<Dataset>,
    fingerprint: u64,
    rng: StdRng,
    cache: Arc<SharedCountsCache>,
}

impl ExplainContext {
    /// Opens a context over `data`, seeding the master RNG. Fingerprints the
    /// dataset once (a full scan).
    pub fn new(data: Dataset, seed: u64) -> Self {
        Self::from_arc(Arc::new(data), seed)
    }

    /// Opens a context over an already-shared dataset (with a private cache).
    pub fn from_arc(data: Arc<Dataset>, seed: u64) -> Self {
        Self::with_shared_cache(data, seed, Arc::new(SharedCountsCache::new()))
    }

    /// Opens a context over an already-shared dataset whose counts memo is
    /// shared with other holders of `cache` — the serving layer's per-dataset
    /// configuration, where concurrent sessions reuse one another's builds.
    pub fn with_shared_cache(data: Arc<Dataset>, seed: u64, cache: Arc<SharedCountsCache>) -> Self {
        let fingerprint = data.fingerprint();
        Self::with_fingerprint(data, fingerprint, seed, cache)
    }

    /// [`Self::with_shared_cache`] with a caller-supplied fingerprint,
    /// skipping the full-scan [`Dataset::fingerprint`] at construction. The
    /// serving layer computes the fingerprint once at dataset registration
    /// (chaining it on appends — see [`dpx_data::fingerprint::chain_fingerprint`])
    /// and reuses it for every request, so per-request context construction
    /// is O(1) in the dataset size.
    ///
    /// The caller owns the coherence contract: `fingerprint` must uniquely
    /// identify `data`'s content (or content lineage) among all keys ever
    /// used with `cache`, else cached tables from a different dataset could
    /// be served.
    pub fn with_fingerprint(
        data: Arc<Dataset>,
        fingerprint: u64,
        seed: u64,
        cache: Arc<SharedCountsCache>,
    ) -> Self {
        ExplainContext {
            data,
            fingerprint,
            rng: StdRng::seed_from_u64(seed),
            cache,
        }
    }

    /// A handle to this context's counts cache (share it with another
    /// context via [`ExplainContext::with_shared_cache`]).
    pub fn shared_cache(&self) -> Arc<SharedCountsCache> {
        Arc::clone(&self.cache)
    }

    /// The dataset under explanation.
    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// A shared handle to the dataset.
    pub fn data_arc(&self) -> Arc<Dataset> {
        Arc::clone(&self.data)
    }

    /// The dataset's content fingerprint (computed at construction).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The context's master RNG.
    pub fn rng_mut(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Simultaneous access to the dataset and the RNG — for callers (like the
    /// interactive session) that feed the data into a mechanism drawing from
    /// the context's randomness.
    pub fn data_and_rng(&mut self) -> (&Dataset, &mut StdRng) {
        (&self.data, &mut self.rng)
    }

    /// Number of memoized clusterings (in the possibly-shared cache).
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Drops all memoized tables (from the possibly-shared cache).
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }

    /// The tables for a clustering: served from cache when the same
    /// `(dataset, labels)` pair was seen before, built (one data pass) and
    /// memoized otherwise. The second element reports whether it was a hit.
    pub fn tables(&mut self, labels: &[usize], n_clusters: usize) -> (Arc<CountedTables>, bool) {
        self.tables_with(labels, n_clusters, 1)
    }

    /// [`Self::tables`] with an explicit worker-thread count for the cache
    /// -miss build path: misses run the chunked count–merge kernel
    /// ([`ClusteredCounts::build_parallel`]), which is bit-identical to the
    /// serial build — so the cache never distinguishes thread counts.
    pub fn tables_with(
        &mut self,
        labels: &[usize],
        n_clusters: usize,
        threads: usize,
    ) -> (Arc<CountedTables>, bool) {
        let key = CountsKey {
            dataset_fingerprint: self.fingerprint,
            labels_hash: hash_labels(labels, n_clusters),
        };
        let data = &self.data;
        self.cache.get_or_build(key, || {
            let counts = ClusteredCounts::build_parallel(data, labels, n_clusters, threads);
            let table = ScoreTable::from_clustered_counts(&counts);
            CountedTables { counts, table }
        })
    }
}

/// The staged pipeline runner: a configuration plus a worker-thread count
/// and a Stage-2 kernel selection.
///
/// `threads = 1` (the default) runs every stage sequentially;
/// `with_threads(n)` fans Stage-1 scoring and the histogram releases out over
/// up to `n` workers with bit-identical results. Stage-2 combination
/// selection keeps its own selector
/// ([`with_stage2_kernel`](Self::with_stage2_kernel)) because switching its
/// noise source changes
/// which draws the master RNG stream sees — the default `SequentialRng`
/// preserves historical seeded outputs exactly.
///
/// An optional [`CancelToken`] makes runs deadline-bounded: the engine polls
/// it **between** stages only — a stage boundary is the one place where no
/// mechanism is mid-flight, so stopping there releases nothing partial and
/// the privacy accounting of the completed stages stands as recorded.
#[derive(Debug, Clone)]
pub struct ExplainEngine {
    config: DpClustXConfig,
    threads: usize,
    stage2_kernel: Stage2Kernel,
    cancel: Option<CancelToken>,
}

impl ExplainEngine {
    /// An engine for `config`, single-threaded.
    pub fn new(config: DpClustXConfig) -> Self {
        ExplainEngine {
            config,
            threads: 1,
            stage2_kernel: Stage2Kernel::SequentialRng,
            cancel: None,
        }
    }

    /// Sets the worker-thread cap for the parallelizable stages.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Selects the Stage-2 combination-selection kernel.
    pub fn with_stage2_kernel(mut self, kernel: Stage2Kernel) -> Self {
        self.stage2_kernel = kernel;
        self
    }

    /// Attaches a cooperative cancellation token, polled at stage
    /// boundaries. A cancelled run returns [`DpError::Cancelled`]; ε already
    /// charged by completed stages stays spent (see the serving layer's
    /// reservation-before-work rule for why nothing is refunded).
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &DpClustXConfig {
        &self.config
    }

    /// The worker-thread cap.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The Stage-2 kernel in use.
    pub fn stage2_kernel(&self) -> Stage2Kernel {
        self.stage2_kernel
    }

    /// Runs the full pipeline on a context with the paper's default
    /// (geometric) histogram mechanism, discarding observer events.
    pub fn explain(
        &self,
        ctx: &mut ExplainContext,
        labels: &[usize],
        n_clusters: usize,
    ) -> Result<Outcome, DpError> {
        self.explain_with_mechanism(
            ctx,
            labels,
            n_clusters,
            &GeometricHistogram,
            &mut NoopObserver,
        )
    }

    /// [`Self::explain`] reporting every stage to `observer`.
    pub fn explain_observed(
        &self,
        ctx: &mut ExplainContext,
        labels: &[usize],
        n_clusters: usize,
        observer: &mut dyn PipelineObserver,
    ) -> Result<Outcome, DpError> {
        self.explain_with_mechanism(ctx, labels, n_clusters, &GeometricHistogram, observer)
    }

    /// Full pipeline on a context with a custom histogram mechanism.
    pub fn explain_with_mechanism<M: HistogramMechanism + Sync>(
        &self,
        ctx: &mut ExplainContext,
        labels: &[usize],
        n_clusters: usize,
        mechanism: &M,
        observer: &mut dyn PipelineObserver,
    ) -> Result<Outcome, DpError> {
        let ExplainContext {
            data,
            fingerprint,
            rng,
            cache,
        } = ctx;
        let source = stages::Source::Build {
            data,
            labels,
            n_clusters,
            cache: Some(stages::CacheSlot {
                cache,
                fingerprint: *fingerprint,
                // Bound a follower's wait on another request's in-flight
                // build by this request's deadline, not just the stage
                // boundaries.
                cancel: self.cancel.clone(),
            }),
        };
        self.run(source, data.schema(), mechanism, rng, observer)
    }

    /// Full pipeline without a context: counts are built inside the
    /// `BuildCounts` stage but not memoized (no fingerprint scan either).
    /// This is what [`crate::framework::DpClustX::explain`] uses.
    pub fn explain_uncached<M: HistogramMechanism + Sync, R: Rng + ?Sized>(
        &self,
        data: &Dataset,
        labels: &[usize],
        n_clusters: usize,
        mechanism: &M,
        rng: &mut R,
        observer: &mut dyn PipelineObserver,
    ) -> Result<Outcome, DpError> {
        let source = stages::Source::Build {
            data,
            labels,
            n_clusters,
            cache: None,
        };
        self.run(source, data.schema(), mechanism, rng, observer)
    }

    /// Pipeline from caller-prepared contingency counts (the bench harness
    /// reuses one `ClusteredCounts` across many explainers). `BuildCounts`
    /// still runs — it derives the score table — but scans no data.
    pub fn explain_prepared<M: HistogramMechanism + Sync, R: Rng + ?Sized>(
        &self,
        schema: &Schema,
        counts: &ClusteredCounts,
        mechanism: &M,
        rng: &mut R,
        observer: &mut dyn PipelineObserver,
    ) -> Result<Outcome, DpError> {
        self.run(
            stages::Source::Prepared { counts },
            schema,
            mechanism,
            rng,
            observer,
        )
    }

    /// Runs the four stages over `source`, timing each, marking the
    /// accountant ledger at every boundary, and reporting the deltas.
    fn run<M: HistogramMechanism + Sync, R: Rng + ?Sized>(
        &self,
        source: stages::Source<'_>,
        schema: &Schema,
        mechanism: &M,
        rng: &mut R,
        observer: &mut dyn PipelineObserver,
    ) -> Result<Outcome, DpError> {
        let cap = Epsilon::new(self.config.total_epsilon())?;
        let mut state = EngineState {
            config: self.config,
            threads: self.threads,
            stage2_kernel: self.stage2_kernel,
            schema,
            source,
            mechanism,
            rng,
            accountant: Accountant::with_cap(cap),
            tables: None,
            candidates: None,
            assignment: None,
            explanation: None,
        };
        let pipeline: [&dyn Stage<M, R>; 4] = [
            &BuildCounts,
            &CandidateSelection,
            &CombinationSelection,
            &HistogramRelease,
        ];
        for stage in pipeline {
            if let Some(reason) = self.cancel.as_ref().and_then(|t| t.cancel_reason()) {
                return Err(DpError::Cancelled { reason });
            }
            let mark = state.accountant.mark();
            let start = Instant::now();
            let metrics = stage.run(&mut state)?;
            let wall = start.elapsed();
            observer.on_stage(StageEvent {
                stage: stage.name(),
                wall,
                epsilon: state.accountant.spent_since(&mark),
                charges: state.accountant.charges_since(&mark),
                metrics,
            });
        }
        Ok(Outcome {
            explanation: state
                .explanation
                .take()
                .expect("HistogramRelease always sets the explanation"),
            assignment: state
                .assignment
                .take()
                .expect("CombinationSelection always sets the assignment"),
            accountant: state.accountant,
        })
    }
}

#[cfg(test)]
mod cache_bound_tests {
    //! White-box tests for the bounded cache's eviction policy: they reach
    //! into the private `flight` set to hold a claim open, which no public
    //! API can do deterministically.

    use super::*;
    use dpx_data::synth::diabetes;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn key(fingerprint: u64) -> CountsKey {
        CountsKey {
            dataset_fingerprint: fingerprint,
            labels_hash: 0,
        }
    }

    fn tables() -> CountedTables {
        let mut rng = StdRng::seed_from_u64(9);
        let data = diabetes::spec(2).generate(30, &mut rng).data;
        let labels: Vec<usize> = (0..30).map(|i| i % 2).collect();
        let counts = ClusteredCounts::build(&data, &labels, 2);
        let table = ScoreTable::from_clustered_counts(&counts);
        CountedTables { counts, table }
    }

    #[test]
    fn bounded_cache_evicts_least_recently_used() {
        let cache = SharedCountsCache::with_max_entries(2);
        assert_eq!(cache.max_entries(), Some(2));
        cache.insert(key(0), tables());
        cache.insert(key(1), tables());
        // Touch key 0: key 1 becomes the least recently used.
        assert!(cache.get(&key(0)).is_some());
        cache.insert(key(2), tables());
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(0)).is_some(), "recently used key survives");
        assert!(cache.get(&key(1)).is_none(), "LRU key was evicted");
        assert!(cache.get(&key(2)).is_some(), "fresh key is cached");
    }

    #[test]
    fn eviction_never_touches_a_key_with_an_open_flight() {
        let cache = SharedCountsCache::with_max_entries(1);
        let guard = match cache.flight.claim(&key(0)) {
            Claim::Leader(guard) => guard,
            Claim::Follower => unreachable!("first claim leads"),
        };
        // The leader publishes its tables while the flight is still open
        // (exactly what `get_or_build` does); churn from another key then
        // overruns the bound. The in-flight key must survive — a woken
        // follower has not read it yet — so the cache runs over the bound
        // rather than breaking the flight.
        cache.insert(key(0), tables());
        cache.insert(key(1), tables());
        assert_eq!(cache.len(), 2, "the in-flight key is not evictable");
        assert!(cache.get(&key(0)).is_some());
        drop(guard);
        // Flight closed: the bound is enforceable again on the next insert.
        cache.insert(key(2), tables());
        assert_eq!(cache.len(), 1);
        assert!(
            cache.get(&key(2)).is_some(),
            "newest insert is the survivor"
        );
    }

    #[test]
    fn unbounded_cache_keeps_the_historical_behavior() {
        let cache = SharedCountsCache::new();
        assert_eq!(cache.max_entries(), None);
        for fingerprint in 0..8 {
            cache.insert(key(fingerprint), tables());
        }
        assert_eq!(cache.len(), 8);
    }
}
