//! The four pipeline stages and the state record they thread.

use super::{CountedTables, CountsKey, SharedCountsCache};
use crate::counts::ScoreTable;
use crate::explanation::{AttributeCombination, GlobalExplanation};
use crate::framework::DpClustXConfig;
use crate::stage1::{select_candidates_with, CandidateSets};
use crate::stage2::{generate_histograms_with, select_combination_with_kernel, Stage2Kernel};
use dpx_data::contingency::ClusteredCounts;
use dpx_data::{hash_labels, Dataset, Schema};
use dpx_dp::budget::{Accountant, Epsilon};
use dpx_dp::histogram::HistogramMechanism;
use dpx_dp::DpError;
use dpx_runtime::CancelToken;
use rand::Rng;
use std::sync::Arc;

/// Stage name: counts/score-table acquisition.
pub const STAGE_BUILD_COUNTS: &str = "build-counts";
/// Stage name: per-cluster candidate selection (Algorithm 1).
pub const STAGE_CANDIDATES: &str = "candidate-selection";
/// Stage name: combination selection (Algorithm 2, line 5).
pub const STAGE_COMBINATION: &str = "combination-selection";
/// Stage name: noisy histogram release (Algorithm 2, lines 6–15).
pub const STAGE_HISTOGRAMS: &str = "histogram-release";

/// Where the `BuildCounts` stage gets its tables from.
pub(super) enum Source<'a> {
    /// Build from the raw dataset and labels, optionally memoizing.
    Build {
        /// The clustered dataset.
        data: &'a Dataset,
        /// Cluster label per row.
        labels: &'a [usize],
        /// Number of clusters.
        n_clusters: usize,
        /// Memoization slot, when running inside an [`super::ExplainContext`].
        cache: Option<CacheSlot<'a>>,
    },
    /// Counts were prepared by the caller; only the score table is derived.
    Prepared {
        /// Caller-owned contingency counts.
        counts: &'a ClusteredCounts,
    },
}

/// A borrowed view of a context's (possibly shared) counts cache.
pub(super) struct CacheSlot<'a> {
    /// The concurrency-safe memoization map.
    pub(super) cache: &'a SharedCountsCache,
    /// The dataset fingerprint half of the cache key.
    pub(super) fingerprint: u64,
    /// The request's cancellation token: bounds a follower's wait on another
    /// request's in-flight build of the same key.
    pub(super) cancel: Option<CancelToken>,
}

/// The tables the later stages read, however `BuildCounts` obtained them.
pub(super) enum Tables<'a> {
    /// Owned (possibly cache-shared) tables.
    Shared(Arc<CountedTables>),
    /// Caller-borrowed counts plus a freshly derived score table.
    Borrowed {
        counts: &'a ClusteredCounts,
        table: ScoreTable,
    },
}

impl Tables<'_> {
    fn counts(&self) -> &ClusteredCounts {
        match self {
            Tables::Shared(t) => &t.counts,
            Tables::Borrowed { counts, .. } => counts,
        }
    }

    fn table(&self) -> &ScoreTable {
        match self {
            Tables::Shared(t) => &t.table,
            Tables::Borrowed { table, .. } => table,
        }
    }
}

/// Mutable state threaded through one engine run. Each stage consumes the
/// products of its predecessors and fills in its own.
pub struct EngineState<'a, M: ?Sized, R: Rng + ?Sized> {
    pub(super) config: DpClustXConfig,
    pub(super) threads: usize,
    pub(super) stage2_kernel: Stage2Kernel,
    pub(super) schema: &'a Schema,
    pub(super) source: Source<'a>,
    pub(super) mechanism: &'a M,
    pub(super) rng: &'a mut R,
    pub(super) accountant: Accountant,
    pub(super) tables: Option<Tables<'a>>,
    pub(super) candidates: Option<CandidateSets>,
    pub(super) assignment: Option<AttributeCombination>,
    pub(super) explanation: Option<GlobalExplanation>,
}

/// One step of the staged pipeline.
///
/// A stage reads its inputs from the [`EngineState`], performs its (possibly
/// privacy-charging) work, stores its product back into the state, and
/// returns its metric counters. Timing, ledger marking, and observer
/// notification happen in the engine's runner, outside the stage body.
pub trait Stage<M: HistogramMechanism + Sync, R: Rng + ?Sized> {
    /// The stage's name (one of the `STAGE_*` constants).
    fn name(&self) -> &'static str;

    /// Runs the stage, returning its metrics.
    fn run(&self, state: &mut EngineState<'_, M, R>) -> Result<Vec<(&'static str, f64)>, DpError>;
}

/// Stage 0: acquire the contingency counts and score table — from the
/// context cache when possible, by a one-pass scan otherwise. Charges no ε
/// (counts are an internal intermediate, never released).
pub struct BuildCounts;

impl<M: HistogramMechanism + Sync, R: Rng + ?Sized> Stage<M, R> for BuildCounts {
    fn name(&self) -> &'static str {
        STAGE_BUILD_COUNTS
    }

    fn run(&self, state: &mut EngineState<'_, M, R>) -> Result<Vec<(&'static str, f64)>, DpError> {
        let mut metrics = Vec::new();
        let threads = state.threads;
        let tables = match &mut state.source {
            Source::Build {
                data,
                labels,
                n_clusters,
                cache,
            } => match cache {
                Some(slot) => {
                    let key = CountsKey {
                        dataset_fingerprint: slot.fingerprint,
                        labels_hash: hash_labels(labels, *n_clusters),
                    };
                    let (tables, hit) = slot
                        .cache
                        .get_or_build_cancellable(key, slot.cancel.as_ref(), || {
                            let counts =
                                ClusteredCounts::build_parallel(data, labels, *n_clusters, threads);
                            let table = ScoreTable::from_clustered_counts(&counts);
                            CountedTables { counts, table }
                        })
                        .map_err(|reason| DpError::Cancelled { reason })?;
                    metrics.push(("cache_hit", if hit { 1.0 } else { 0.0 }));
                    Tables::Shared(tables)
                }
                None => {
                    let counts =
                        ClusteredCounts::build_parallel(data, labels, *n_clusters, threads);
                    let table = ScoreTable::from_clustered_counts(&counts);
                    Tables::Shared(Arc::new(CountedTables { counts, table }))
                }
            },
            Source::Prepared { counts } => {
                let table = ScoreTable::from_clustered_counts(counts);
                Tables::Borrowed { counts, table }
            }
        };
        metrics.push(("n_attributes", tables.counts().n_attributes() as f64));
        metrics.push(("n_clusters", tables.counts().n_clusters() as f64));
        state.tables = Some(tables);
        Ok(metrics)
    }
}

/// Stage 1 of the paper: per-cluster top-`k` candidate selection, charged
/// `ε_CandSet` under the label `stage1/select-candidates`. Per-cluster
/// scoring and top-k fan out over the engine's worker threads.
pub struct CandidateSelection;

impl<M: HistogramMechanism + Sync, R: Rng + ?Sized> Stage<M, R> for CandidateSelection {
    fn name(&self) -> &'static str {
        STAGE_CANDIDATES
    }

    fn run(&self, state: &mut EngineState<'_, M, R>) -> Result<Vec<(&'static str, f64)>, DpError> {
        let EngineState {
            config,
            threads,
            rng,
            accountant,
            tables,
            candidates,
            ..
        } = state;
        let eps_cand = Epsilon::new(config.eps_cand_set)?;
        let table = tables.as_ref().expect("BuildCounts ran").table();
        let sets = select_candidates_with(
            table,
            config.weights.gamma(),
            eps_cand,
            config.k,
            *threads,
            &mut **rng,
        )?;
        accountant.charge("stage1/select-candidates", eps_cand)?;
        let metrics = vec![
            ("candidate_sets", sets.len() as f64),
            (
                "candidates_total",
                sets.iter().map(Vec::len).sum::<usize>() as f64,
            ),
        ];
        *candidates = Some(sets);
        Ok(metrics)
    }
}

/// Stage 2 selection: the exponential mechanism (Gumbel-max) over all
/// `k^|C|` combinations, charged `ε_TopComb` under
/// `stage2/select-combination`, run on the engine's configured
/// [`Stage2Kernel`] (streaming reference or counter-based serial/parallel).
/// Reports how many combinations the enumeration covered — always the full
/// product space.
pub struct CombinationSelection;

impl<M: HistogramMechanism + Sync, R: Rng + ?Sized> Stage<M, R> for CombinationSelection {
    fn name(&self) -> &'static str {
        STAGE_COMBINATION
    }

    fn run(&self, state: &mut EngineState<'_, M, R>) -> Result<Vec<(&'static str, f64)>, DpError> {
        let EngineState {
            config,
            stage2_kernel,
            rng,
            accountant,
            tables,
            candidates,
            assignment,
            ..
        } = state;
        let eps_comb = Epsilon::new(config.eps_top_comb)?;
        let table = tables.as_ref().expect("BuildCounts ran").table();
        let sets = candidates.as_ref().expect("CandidateSelection ran");
        let (sel, leaves) = select_combination_with_kernel(
            table,
            sets,
            config.weights,
            eps_comb,
            *stage2_kernel,
            &mut **rng,
        )?;
        accountant.charge("stage2/select-combination", eps_comb)?;
        *assignment = Some(sel);
        Ok(vec![("combinations_enumerated", leaves as f64)])
    }
}

/// Histogram release: noisy full-data histograms per distinct selected
/// attribute (sequential composition) and per-cluster histograms (parallel
/// composition), charged `ε_Hist` in total. Releases fan out over the
/// engine's worker threads. Fails with [`DpError::InvalidEpsilon`] when the
/// configuration carries no histogram budget (`eps_hist: None`).
pub struct HistogramRelease;

impl<M: HistogramMechanism + Sync, R: Rng + ?Sized> Stage<M, R> for HistogramRelease {
    fn name(&self) -> &'static str {
        STAGE_HISTOGRAMS
    }

    fn run(&self, state: &mut EngineState<'_, M, R>) -> Result<Vec<(&'static str, f64)>, DpError> {
        let EngineState {
            config,
            threads,
            schema,
            mechanism,
            rng,
            accountant,
            tables,
            assignment,
            explanation,
            ..
        } = state;
        // A selection-only configuration has no histogram budget; surface the
        // same error an explicit `Epsilon::new(NaN)` would.
        let eps_hist = Epsilon::new(config.eps_hist.unwrap_or(f64::NAN))?;
        let t = tables.as_ref().expect("BuildCounts ran");
        let sel = assignment.as_ref().expect("CombinationSelection ran");
        let expl = generate_histograms_with(
            schema,
            t.counts(),
            sel,
            eps_hist,
            *mechanism,
            config.consistency,
            accountant,
            *threads,
            &mut **rng,
        )?;
        let mut distinct: Vec<usize> = sel.clone();
        distinct.sort_unstable();
        distinct.dedup();
        let metrics = vec![
            ("distinct_attributes", distinct.len() as f64),
            ("histograms_released", (distinct.len() + sel.len()) as f64),
        ];
        *explanation = Some(expl);
        Ok(metrics)
    }
}
