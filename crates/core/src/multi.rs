//! Multiple explanations per cluster (Appendix B of the paper).
//!
//! The extension generalizes an attribute combination to
//! `AC : C → {S ⊆ A : |S| = ℓ}`, scoring it with the extended global score
//! over the candidate set `Cand(AC) = {(c, A) : A ∈ AC(c)}`:
//! interestingness and sufficiency average over all `|C|·ℓ` pairs, and
//! diversity averages the pairwise `d` over all `binom(|C|·ℓ, 2)` pairs —
//! coinciding with Definition 4.8 at `ℓ = 1`. Stage-2's exponential mechanism
//! then ranges over `binom(k, ℓ)^|C|` combinations, with the correspondingly
//! larger EM error noted in the appendix.

use crate::counts::ScoreTable;
use crate::explanation::GlobalExplanation;
use crate::quality::diversity::pair_d;
use crate::quality::interestingness::int_p;
use crate::quality::score::Weights;
use crate::quality::sufficiency::suf_p;
use crate::stage2::generate_histograms_with;
use dpx_data::contingency::ClusteredCounts;
use dpx_data::Schema;
use dpx_dp::budget::{Accountant, Epsilon};
use dpx_dp::gumbel::sample_gumbel;
use dpx_dp::histogram::HistogramMechanism;
use dpx_dp::DpError;
use rand::Rng;

/// A multi-attribute combination: `assignment[c]` is the set of `ℓ`
/// attributes explaining cluster `c`.
pub type MultiCombination = Vec<Vec<usize>>;

/// The extended global score `GlScore_λ` of Appendix B. Coincides with
/// [`crate::quality::score::glscore`] when every cluster holds one attribute.
pub fn glscore_multi(st: &ScoreTable, assignment: &MultiCombination, w: Weights) -> f64 {
    let cand: Vec<(usize, usize)> = assignment
        .iter()
        .enumerate()
        .flat_map(|(c, attrs)| attrs.iter().map(move |&a| (c, a)))
        .collect();
    assert!(!cand.is_empty(), "assignment must contain candidates");
    let m = cand.len() as f64;
    let mut int_sum = 0.0;
    let mut suf_sum = 0.0;
    for &(c, a) in &cand {
        let t = st.attr(a);
        int_sum += int_p(t, c);
        suf_sum += suf_p(t, c);
    }
    let mut score = (w.int * int_sum + w.suf * suf_sum) / m;
    if cand.len() >= 2 && w.div > 0.0 {
        let pairs = (cand.len() * (cand.len() - 1) / 2) as f64;
        let mut div_sum = 0.0;
        for i in 0..cand.len() {
            for j in (i + 1)..cand.len() {
                let (c, a) = cand[i];
                let (c2, a2) = cand[j];
                div_sum += pair_d(st, c, c2, a, a2);
            }
        }
        score += w.div * div_sum / pairs;
    }
    score
}

/// All `ℓ`-subsets of `set`, preserving order.
fn subsets(set: &[usize], ell: usize) -> Vec<Vec<usize>> {
    fn recurse(
        set: &[usize],
        ell: usize,
        start: usize,
        cur: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if cur.len() == ell {
            out.push(cur.clone());
            return;
        }
        for i in start..set.len() {
            cur.push(set[i]);
            recurse(set, ell, i + 1, cur, out);
            cur.pop();
        }
    }
    let mut out = Vec::new();
    let mut cur = Vec::new();
    recurse(set, ell, 0, &mut cur, &mut out);
    out
}

/// Stage-2 for the multi-explanation extension: the exponential mechanism
/// over `binom(k, ℓ)^|C|` subset combinations at `eps_top_comb`
/// (the extended `GlScore` keeps sensitivity ≤ 1, Appendix B).
pub fn select_multi_combination<R: Rng + ?Sized>(
    st: &ScoreTable,
    candidates: &[Vec<usize>],
    ell: usize,
    weights: Weights,
    eps_top_comb: Epsilon,
    rng: &mut R,
) -> Result<MultiCombination, DpError> {
    if candidates.is_empty() || candidates.iter().any(|s| s.len() < ell) || ell == 0 {
        return Err(DpError::NotEnoughCandidates {
            requested: ell,
            available: candidates.iter().map(Vec::len).min().unwrap_or(0),
        });
    }
    let per_cluster_subsets: Vec<Vec<Vec<usize>>> =
        candidates.iter().map(|s| subsets(s, ell)).collect();
    let factor = eps_top_comb.get() / 2.0;
    let n = candidates.len();
    let mut choice = vec![0usize; n];
    let mut best: Option<(f64, MultiCombination)> = None;
    loop {
        let combo: MultiCombination = choice
            .iter()
            .enumerate()
            .map(|(c, &i)| per_cluster_subsets[c][i].clone())
            .collect();
        let noisy = factor * glscore_multi(st, &combo, weights) + sample_gumbel(1.0, rng);
        if best.as_ref().is_none_or(|(bv, _)| noisy > *bv) {
            best = Some((noisy, combo));
        }
        // Odometer.
        let mut pos = n;
        loop {
            if pos == 0 {
                return Ok(best.expect("at least one combination").1);
            }
            pos -= 1;
            choice[pos] += 1;
            if choice[pos] < per_cluster_subsets[pos].len() {
                break;
            }
            choice[pos] = 0;
        }
    }
}

/// Histogram release for a multi-combination: `ℓ` explanations per cluster.
/// Full-data histograms for the distinct attributes spend `ε/2` sequentially;
/// each cluster's `ℓ` histograms spend `ε/(2ℓ)` each (sequential within a
/// cluster, parallel across clusters) — `ε_hist` total.
///
/// Returns one [`GlobalExplanation`] per explanation slot (slot `j` holds
/// every cluster's `j`-th histogram).
pub fn generate_multi_histograms<M: HistogramMechanism + Sync, R: Rng + ?Sized>(
    schema: &Schema,
    counts: &ClusteredCounts,
    assignment: &MultiCombination,
    eps_hist: Epsilon,
    mechanism: &M,
    accountant: &mut Accountant,
    rng: &mut R,
) -> Result<Vec<GlobalExplanation>, DpError> {
    generate_multi_histograms_with(
        schema, counts, assignment, eps_hist, mechanism, accountant, 1, rng,
    )
}

/// [`generate_multi_histograms`] with explicit worker-thread count: each
/// slot's per-attribute and per-cluster releases fan out through
/// [`crate::stage2::generate_histograms_with`], with the same
/// bit-for-bit determinism guarantee (slots stay sequential — they compose
/// sequentially in ε and share the master RNG stream in slot order).
#[allow(clippy::too_many_arguments)] // mirrors generate_histograms_with
pub fn generate_multi_histograms_with<M: HistogramMechanism + Sync, R: Rng + ?Sized>(
    schema: &Schema,
    counts: &ClusteredCounts,
    assignment: &MultiCombination,
    eps_hist: Epsilon,
    mechanism: &M,
    accountant: &mut Accountant,
    threads: usize,
    rng: &mut R,
) -> Result<Vec<GlobalExplanation>, DpError> {
    let ell = assignment.first().map_or(0, Vec::len);
    assert!(
        ell > 0,
        "assignment must hold at least one attribute per cluster"
    );
    assert!(
        assignment.iter().all(|s| s.len() == ell),
        "all clusters must hold ℓ attributes"
    );
    // Budget: within a cluster the ℓ histograms compose sequentially, so give
    // each slot ε/(2ℓ); across clusters parallel composition applies. The
    // full-data histograms of slot j share the ε/(2|A'|) pool with all slots.
    let eps_slot = eps_hist.split(ell)?;
    let mut out = Vec::with_capacity(ell);
    for j in 0..ell {
        let slot_assignment: Vec<usize> = assignment.iter().map(|s| s[j]).collect();
        out.push(generate_histograms_with(
            schema,
            counts,
            &slot_assignment,
            eps_slot,
            mechanism,
            false,
            accountant,
            threads,
            rng,
        )?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counts::AttrCounts;
    use crate::quality::score::glscore;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table() -> ScoreTable {
        let a0 = AttrCounts::new(vec![vec![30.0, 0.0], vec![10.0, 20.0]], vec![40.0, 20.0]);
        let a1 = AttrCounts::new(vec![vec![15.0, 15.0], vec![0.0, 30.0]], vec![15.0, 45.0]);
        let a2 = AttrCounts::new(vec![vec![15.0, 15.0], vec![15.0, 15.0]], vec![30.0, 30.0]);
        ScoreTable::new(vec![a0, a1, a2])
    }

    #[test]
    fn ell_one_coincides_with_single_glscore() {
        let st = table();
        let w = Weights::equal();
        for asg in [[0usize, 1], [1, 2], [2, 0]] {
            let multi: MultiCombination = asg.iter().map(|&a| vec![a]).collect();
            let single = glscore(&st, &asg, w);
            let m = glscore_multi(&st, &multi, w);
            assert!((single - m).abs() < 1e-12, "{asg:?}: {single} vs {m}");
        }
    }

    #[test]
    fn subsets_enumerates_binomials() {
        let s = subsets(&[1, 2, 3, 4], 2);
        assert_eq!(s.len(), 6);
        assert!(s.contains(&vec![1, 4]));
        assert_eq!(subsets(&[1, 2], 2), vec![vec![1, 2]]);
    }

    #[test]
    fn multi_selection_prefers_signal_pairs_at_high_eps() {
        let st = table();
        let mut r = StdRng::seed_from_u64(1);
        let candidates = vec![vec![0usize, 1, 2], vec![0, 1, 2]];
        let sel = select_multi_combination(
            &st,
            &candidates,
            2,
            Weights::equal(),
            Epsilon::new(1e5).unwrap(),
            &mut r,
        )
        .unwrap();
        assert_eq!(sel.len(), 2);
        // Exhaustive check: no pair-combination scores higher.
        let best_score = glscore_multi(&st, &sel, Weights::equal());
        let all = subsets(&[0, 1, 2], 2);
        for s0 in &all {
            for s1 in &all {
                let combo = vec![s0.clone(), s1.clone()];
                assert!(
                    glscore_multi(&st, &combo, Weights::equal()) <= best_score + 1e-9,
                    "{combo:?} beats the selection"
                );
            }
        }
    }

    #[test]
    fn ell_larger_than_candidates_rejected() {
        let st = table();
        let mut r = StdRng::seed_from_u64(2);
        assert!(select_multi_combination(
            &st,
            &[vec![0, 1], vec![0, 1]],
            3,
            Weights::equal(),
            Epsilon::new(1.0).unwrap(),
            &mut r,
        )
        .is_err());
    }

    #[test]
    fn multi_histograms_spend_eps_hist() {
        use dpx_data::schema::{Attribute, Domain, Schema};
        use dpx_data::Dataset;
        use dpx_dp::histogram::GeometricHistogram;
        let schema = Schema::new(vec![
            Attribute::new("x", Domain::indexed(2)).unwrap(),
            Attribute::new("y", Domain::indexed(2)).unwrap(),
        ])
        .unwrap();
        let rows: Vec<Vec<u32>> = (0..100)
            .map(|i| vec![(i % 2) as u32, (i / 2 % 2) as u32])
            .collect();
        let data = Dataset::from_rows(schema, &rows).unwrap();
        let labels: Vec<usize> = (0..100).map(|i| i % 2).collect();
        let counts = ClusteredCounts::build(&data, &labels, 2);
        let mut acc = Accountant::new();
        let mut r = StdRng::seed_from_u64(3);
        let assignment: MultiCombination = vec![vec![0, 1], vec![0, 1]];
        let out = generate_multi_histograms(
            data.schema(),
            &counts,
            &assignment,
            Epsilon::new(0.4).unwrap(),
            &GeometricHistogram,
            &mut acc,
            &mut r,
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].per_cluster.len(), 2);
        assert!(
            acc.spent() <= 0.4 + 1e-9,
            "spent {} exceeds ε_hist",
            acc.spent()
        );
    }
}
