//! Deterministic parallel primitives, re-exported from [`dpx_runtime`].
//!
//! The ordered map started life in the bench crate as a sweep helper and was
//! promoted here by the staged engine; the flat counting kernel then needed
//! the same thread machinery below `dpx-data`, so the implementation moved
//! down into the `dpx-runtime` crate. This module re-exports it so existing
//! `dpclustx::parallel::{ordered_parallel_map, default_threads}` callers
//! keep working unchanged; [`chunked_reduce`] rides along for completeness.
//!
//! See [`dpx_runtime::parallel`] for the determinism contract (pure
//! per-item/per-chunk work, input-order results, panic propagation).

pub use dpx_runtime::parallel::{chunked_reduce, default_threads, ordered_parallel_map};
