//! The DPClustX framework: configuration, budget enforcement, and the
//! end-to-end pipeline of Algorithm 2 / Theorem 5.1.

use crate::counts::ScoreTable;
use crate::engine::{ExplainEngine, NoopObserver};
use crate::explanation::{AttributeCombination, GlobalExplanation};
use crate::quality::score::Weights;
use crate::stage1::select_candidates;
use crate::stage2::select_combination;
use dpx_data::contingency::ClusteredCounts;
use dpx_data::Dataset;
use dpx_dp::budget::{Accountant, Epsilon};
use dpx_dp::histogram::{GeometricHistogram, HistogramMechanism};
use dpx_dp::DpError;
use rand::Rng;

/// Configuration of a DPClustX run. Defaults are the paper's (§6.1):
/// `ε_CandSet = ε_TopComb = ε_Hist = 0.1`, `k = 3`, equal weights.
#[derive(Debug, Clone, Copy)]
pub struct DpClustXConfig {
    /// Candidate attributes per cluster selected at Stage-1.
    pub k: usize,
    /// Budget for Stage-1 candidate selection.
    pub eps_cand_set: f64,
    /// Budget for Stage-2 combination selection.
    pub eps_top_comb: f64,
    /// Budget for histogram release, or `None` for a selection-only run that
    /// never releases histograms. A full `explain` with `None` fails with
    /// [`DpError::InvalidEpsilon`] at the release stage instead of silently
    /// poisoning `total_epsilon` (the old `f64::NAN` sentinel did exactly
    /// that).
    pub eps_hist: Option<f64>,
    /// Quality-measure weights λ.
    pub weights: Weights,
    /// Apply the Hay-et-al. partition-consistency projection to the released
    /// histograms when one attribute explains every cluster (free
    /// post-processing; see `dpx_dp::consistency`).
    pub consistency: bool,
}

impl Default for DpClustXConfig {
    fn default() -> Self {
        DpClustXConfig {
            k: 3,
            eps_cand_set: 0.1,
            eps_top_comb: 0.1,
            eps_hist: Some(0.1),
            weights: Weights::equal(),
            consistency: false,
        }
    }
}

impl DpClustXConfig {
    /// Total privacy budget `ε_CandSet + ε_TopComb + ε_Hist` (Theorem 5.1).
    /// A missing histogram budget contributes zero: a selection-only
    /// configuration's total is exactly what its two selection stages spend.
    pub fn total_epsilon(&self) -> f64 {
        self.eps_cand_set + self.eps_top_comb + self.eps_hist.unwrap_or(0.0)
    }

    /// A selection-only configuration splitting `eps` evenly between the two
    /// selection stages — the setting of the quality experiments (Figures
    /// 5–8), which evaluate the attribute choice and skip histograms.
    pub fn selection_only(eps: f64, k: usize, weights: Weights) -> Self {
        DpClustXConfig {
            k,
            eps_cand_set: eps / 2.0,
            eps_top_comb: eps / 2.0,
            eps_hist: None, // never used on the selection-only path
            weights,
            consistency: false,
        }
    }
}

/// The result of a full DPClustX run.
#[derive(Debug)]
pub struct Outcome {
    /// The released global explanation (noisy histograms).
    pub explanation: GlobalExplanation,
    /// The selected attribute combination.
    pub assignment: AttributeCombination,
    /// The audit trail of ε spend; `accountant.spent()` equals
    /// `config.total_epsilon()` up to float round-off.
    pub accountant: Accountant,
}

/// The DPClustX explainer.
#[derive(Debug, Clone, Copy)]
pub struct DpClustX {
    config: DpClustXConfig,
}

impl DpClustX {
    /// Creates an explainer with the given configuration.
    pub fn new(config: DpClustXConfig) -> Self {
        DpClustX { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DpClustXConfig {
        &self.config
    }

    /// Runs only the private attribute selection (Stages 1–2) and returns the
    /// chosen combination. Spends `eps_cand_set + eps_top_comb`.
    pub fn select_attributes<R: Rng + ?Sized>(
        &self,
        st: &ScoreTable,
        rng: &mut R,
    ) -> Result<AttributeCombination, DpError> {
        let eps_cand = Epsilon::new(self.config.eps_cand_set)?;
        let eps_comb = Epsilon::new(self.config.eps_top_comb)?;
        let gamma = self.config.weights.gamma();
        let candidates = select_candidates(st, gamma, eps_cand, self.config.k, rng)?;
        select_combination(st, &candidates, self.config.weights, eps_comb, rng)
    }

    /// Runs the full pipeline with the paper's default histogram mechanism
    /// (geometric noise). Spends `config.total_epsilon()` in total.
    pub fn explain<R: Rng + ?Sized>(
        &self,
        data: &Dataset,
        labels: &[usize],
        n_clusters: usize,
        rng: &mut R,
    ) -> Result<Outcome, DpError> {
        self.explain_with_mechanism(data, labels, n_clusters, &GeometricHistogram, rng)
    }

    /// Runs the full pipeline with a custom `ε`-DP histogram mechanism —
    /// DPClustX treats `M_hist` as a black box (§2.1). Delegates to the
    /// staged [`ExplainEngine`] (uncached, single-threaded, unobserved).
    pub fn explain_with_mechanism<M: HistogramMechanism + Sync, R: Rng + ?Sized>(
        &self,
        data: &Dataset,
        labels: &[usize],
        n_clusters: usize,
        mechanism: &M,
        rng: &mut R,
    ) -> Result<Outcome, DpError> {
        ExplainEngine::new(self.config).explain_uncached(
            data,
            labels,
            n_clusters,
            mechanism,
            rng,
            &mut NoopObserver,
        )
    }

    /// Runs the full pipeline from pre-built contingency counts (lets
    /// experiments reuse the one-pass count tables across explainers).
    pub fn explain_from_counts<M: HistogramMechanism + Sync, R: Rng + ?Sized>(
        &self,
        data: &Dataset,
        counts: &ClusteredCounts,
        mechanism: &M,
        rng: &mut R,
    ) -> Result<Outcome, DpError> {
        ExplainEngine::new(self.config).explain_prepared(
            data.schema(),
            counts,
            mechanism,
            rng,
            &mut NoopObserver,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpx_data::synth::diabetes;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(n: usize) -> (Dataset, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(100);
        let synth = diabetes::spec(3).generate(n, &mut rng);
        // Use the ground-truth latent groups as a stand-in clustering — a
        // valid total function for the explainer's purposes in tests.
        let labels = synth.latent_groups.clone();
        (synth.data, labels)
    }

    #[test]
    fn full_pipeline_produces_explanation_and_audits_budget() {
        let (data, labels) = setup(3_000);
        let mut rng = StdRng::seed_from_u64(1);
        let explainer = DpClustX::new(DpClustXConfig::default());
        let outcome = explainer.explain(&data, &labels, 3, &mut rng).unwrap();
        assert_eq!(outcome.explanation.per_cluster.len(), 3);
        assert_eq!(outcome.assignment.len(), 3);
        let total = explainer.config().total_epsilon();
        assert!(
            (outcome.accountant.spent() - total).abs() < 1e-9,
            "spent {} != configured {total}",
            outcome.accountant.spent()
        );
    }

    #[test]
    fn generous_budget_selects_signal_attributes() {
        let (data, labels) = setup(8_000);
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = DpClustXConfig {
            eps_cand_set: 100.0,
            eps_top_comb: 100.0,
            eps_hist: Some(1.0),
            ..Default::default()
        };
        let outcome = DpClustX::new(cfg)
            .explain(&data, &labels, 3, &mut rng)
            .unwrap();
        // The signal attributes of the diabetes spec are the first seven +
        // insulin; a near-noiseless run must pick from them.
        let signal_names = [
            "lab_proc",
            "time_in_hospital",
            "num_medications",
            "age",
            "diag_1",
            "discharge_disp",
            "A1Cresult",
            "insulin",
        ];
        for e in &outcome.explanation.per_cluster {
            assert!(
                signal_names.contains(&e.attribute_name.as_str()),
                "picked noise attribute {}",
                e.attribute_name
            );
        }
    }

    #[test]
    fn selection_only_config_arithmetic() {
        let cfg = DpClustXConfig::selection_only(0.2, 3, Weights::equal());
        assert!((cfg.eps_cand_set - 0.1).abs() < 1e-12);
        assert!((cfg.eps_top_comb - 0.1).abs() < 1e-12);
    }

    #[test]
    fn selection_only_total_epsilon_is_finite() {
        // Regression: `selection_only` used to store `eps_hist: f64::NAN`,
        // which made `total_epsilon()` silently NaN and corrupted any
        // downstream budget arithmetic. The histogram budget is now optional
        // and a missing one contributes zero.
        let cfg = DpClustXConfig::selection_only(0.2, 3, Weights::equal());
        assert_eq!(cfg.eps_hist, None);
        let total = cfg.total_epsilon();
        assert!(
            total.is_finite(),
            "total_epsilon must never be NaN: {total}"
        );
        assert!((total - 0.2).abs() < 1e-12);
    }

    #[test]
    fn full_explain_without_histogram_budget_is_rejected() {
        // A selection-only configuration cannot drive the full pipeline: the
        // release stage has no budget and must fail loudly (after the two
        // selection stages), not release histograms with NaN noise.
        let (data, labels) = setup(500);
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = DpClustXConfig::selection_only(0.2, 3, Weights::equal());
        let err = DpClustX::new(cfg)
            .explain(&data, &labels, 3, &mut rng)
            .unwrap_err();
        assert!(
            matches!(err, DpError::InvalidEpsilon(e) if e.is_nan()),
            "unexpected error: {err:?}"
        );
    }

    #[test]
    fn invalid_epsilon_is_reported() {
        let (data, labels) = setup(500);
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = DpClustXConfig {
            eps_cand_set: 0.0,
            ..Default::default()
        };
        assert!(DpClustX::new(cfg)
            .explain(&data, &labels, 3, &mut rng)
            .is_err());
    }

    #[test]
    fn deterministic_under_seed() {
        let (data, labels) = setup(1_000);
        let explainer = DpClustX::new(DpClustXConfig::default());
        let a = explainer
            .explain(&data, &labels, 3, &mut StdRng::seed_from_u64(4))
            .unwrap();
        let b = explainer
            .explain(&data, &labels, 3, &mut StdRng::seed_from_u64(4))
            .unwrap();
        assert_eq!(a.assignment, b.assignment);
    }
}
