//! Stage 1 — Select-Candidates (Algorithm 1 of the paper).
//!
//! For every cluster `c`, privately select the top-`k` explanation attributes
//! by single-cluster score using the **one-shot top-k mechanism**: Gumbel
//! noise of scale `σ = 2k/ε_Topk` is added to each true score *once*, and the
//! `k` largest noisy scores win. Each cluster's selection spends
//! `ε_Topk = ε_CandSet / |C|`; parallel composition does **not** apply because
//! a cluster's score depends on the whole dataset (the marginal counts), as
//! the paper notes.

use crate::counts::ScoreTable;
use crate::parallel::ordered_parallel_map;
use crate::quality::score::sscore;
use dpx_dp::budget::{Epsilon, Sensitivity};
use dpx_dp::topk::one_shot_top_k;
use dpx_dp::DpError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The candidate sets `S_{c_1}, …, S_{c_|C|}` produced by Algorithm 1, in
/// noisy-score order (best first).
pub type CandidateSets = Vec<Vec<usize>>;

/// Runs Algorithm 1: returns the per-cluster top-`k` candidate attribute
/// sets, satisfying `eps_cand_set`-DP overall (Proposition 5.1).
///
/// `gamma` is `(γ_Int, γ_Suf)` (non-negative, sum 1).
pub fn select_candidates<R: Rng + ?Sized>(
    st: &ScoreTable,
    gamma: (f64, f64),
    eps_cand_set: Epsilon,
    k: usize,
    rng: &mut R,
) -> Result<CandidateSets, DpError> {
    select_candidates_with(st, gamma, eps_cand_set, k, 1, rng)
}

/// [`select_candidates`] with explicit worker-thread count — the engine's
/// Stage-1 entry point.
///
/// Per-cluster RNGs are split from `rng` *up front* (one `u64` seed per
/// cluster, drawn in cluster order), so every cluster's scoring-plus-top-k is
/// a pure function of its seed and the results are **bit-identical for every
/// `threads` value**, including the `threads = 1` path that
/// [`select_candidates`] takes.
pub fn select_candidates_with<R: Rng + ?Sized>(
    st: &ScoreTable,
    gamma: (f64, f64),
    eps_cand_set: Epsilon,
    k: usize,
    threads: usize,
    rng: &mut R,
) -> Result<CandidateSets, DpError> {
    let n_clusters = st.n_clusters();
    let n_attrs = st.n_attributes();
    if k == 0 || k > n_attrs {
        return Err(DpError::NotEnoughCandidates {
            requested: k,
            available: n_attrs,
        });
    }
    // Line 1: ε_Topk ← ε_CandSet / |C|.
    let eps_topk = eps_cand_set.split(n_clusters)?;
    let seeds: Vec<u64> = (0..n_clusters).map(|_| rng.gen()).collect();
    // Lines 4–6: true scores; lines 5, 7–9 are the one-shot mechanism
    // (noise scale 2·Δ·k/ε_Topk is applied inside `one_shot_top_k`,
    // with Δ = 1 by Proposition 4.8).
    let per_cluster: Vec<Result<Vec<usize>, DpError>> = ordered_parallel_map(
        seeds.into_iter().enumerate().collect(),
        threads,
        |&(c, seed)| {
            let scores: Vec<f64> = (0..n_attrs).map(|a| sscore(st, c, a, gamma)).collect();
            let mut task_rng = StdRng::seed_from_u64(seed);
            one_shot_top_k(&scores, k, eps_topk, Sensitivity::ONE, &mut task_rng)
        },
    );
    per_cluster.into_iter().collect()
}

/// Non-private variant used by the TabEE baseline and by diagnostics such as
/// the ranked-candidate view of Figure 4: exact top-`k` attributes per
/// cluster by true single-cluster score.
pub fn select_candidates_exact(st: &ScoreTable, gamma: (f64, f64), k: usize) -> CandidateSets {
    let n_attrs = st.n_attributes();
    let k = k.min(n_attrs);
    (0..st.n_clusters())
        .map(|c| {
            let mut scored: Vec<(usize, f64)> =
                (0..n_attrs).map(|a| (a, sscore(st, c, a, gamma))).collect();
            scored.sort_by(|x, y| y.1.total_cmp(&x.1));
            scored.into_iter().take(k).map(|(a, _)| a).collect()
        })
        .collect()
}

/// Full ranked list of `(attribute, score)` for one cluster, best first —
/// the data behind Figure 4's ranked candidates.
pub fn rank_attributes(st: &ScoreTable, c: usize, gamma: (f64, f64)) -> Vec<(usize, f64)> {
    let mut scored: Vec<(usize, f64)> = (0..st.n_attributes())
        .map(|a| (a, sscore(st, c, a, gamma)))
        .collect();
    scored.sort_by(|x, y| y.1.total_cmp(&x.1));
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counts::AttrCounts;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// 2 clusters (sizes 100 / 200) × 4 attributes with *strictly* ordered
    /// single-cluster scores: attribute 0 best for both clusters, then 1,
    /// then 3, then 2. Unequal cluster sizes avoid the exact score ties that
    /// symmetric two-cluster tables produce.
    fn table() -> ScoreTable {
        let a0 = AttrCounts::new(
            vec![vec![90.0, 10.0], vec![80.0, 120.0]],
            vec![170.0, 130.0],
        );
        let a1 = AttrCounts::new(vec![vec![30.0, 70.0], vec![10.0, 190.0]], vec![40.0, 260.0]);
        let a2 = AttrCounts::new(
            vec![vec![50.0, 50.0], vec![100.0, 100.0]],
            vec![150.0, 150.0],
        );
        let a3 = AttrCounts::new(
            vec![vec![45.0, 55.0], vec![105.0, 95.0]],
            vec![150.0, 150.0],
        );
        ScoreTable::new(vec![a0, a1, a2, a3])
    }

    #[test]
    fn exact_selection_finds_signal_attributes() {
        let sets = select_candidates_exact(&table(), (0.5, 0.5), 2);
        assert_eq!(sets[0], vec![0, 1], "cluster 0's top-2 attributes");
        assert_eq!(sets[1], vec![0, 1], "cluster 1's top-2 attributes");
    }

    #[test]
    fn private_selection_matches_exact_at_high_epsilon() {
        let mut r = StdRng::seed_from_u64(1);
        let st = table();
        let sets =
            select_candidates(&st, (0.5, 0.5), Epsilon::new(10_000.0).unwrap(), 2, &mut r).unwrap();
        let exact = select_candidates_exact(&st, (0.5, 0.5), 2);
        assert_eq!(sets, exact);
    }

    #[test]
    fn private_selection_is_noisy_at_tiny_epsilon() {
        // With ε ≈ 0 every attribute should appear as the top candidate in
        // some run — the selection is near-uniform.
        let st = table();
        let eps = Epsilon::new(1e-6).unwrap();
        let mut seen = [false; 4];
        for seed in 0..200 {
            let mut r = StdRng::seed_from_u64(seed);
            let sets = select_candidates(&st, (0.5, 0.5), eps, 1, &mut r).unwrap();
            seen[sets[0][0]] = true;
        }
        assert!(seen.iter().all(|&s| s), "not near-uniform: {seen:?}");
    }

    #[test]
    fn returns_one_set_per_cluster_of_size_k() {
        let mut r = StdRng::seed_from_u64(3);
        let sets =
            select_candidates(&table(), (0.5, 0.5), Epsilon::new(1.0).unwrap(), 3, &mut r).unwrap();
        assert_eq!(sets.len(), 2);
        for s in &sets {
            assert_eq!(s.len(), 3);
            let mut d = s.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), 3, "candidates must be distinct");
        }
    }

    #[test]
    fn parallel_selection_is_bit_identical_to_sequential() {
        let st = table();
        let eps = Epsilon::new(1.0).unwrap();
        for seed in 0..20 {
            let seq = select_candidates(&st, (0.5, 0.5), eps, 2, &mut StdRng::seed_from_u64(seed))
                .unwrap();
            for threads in [2, 4, 16] {
                let par = select_candidates_with(
                    &st,
                    (0.5, 0.5),
                    eps,
                    2,
                    threads,
                    &mut StdRng::seed_from_u64(seed),
                )
                .unwrap();
                assert_eq!(par, seq, "seed {seed}, threads {threads}");
            }
        }
    }

    #[test]
    fn k_zero_or_too_large_rejected() {
        let mut r = StdRng::seed_from_u64(4);
        let eps = Epsilon::new(1.0).unwrap();
        assert!(select_candidates(&table(), (0.5, 0.5), eps, 0, &mut r).is_err());
        assert!(select_candidates(&table(), (0.5, 0.5), eps, 5, &mut r).is_err());
    }

    #[test]
    fn rank_attributes_is_descending() {
        let ranked = rank_attributes(&table(), 0, (0.5, 0.5));
        assert_eq!(ranked.len(), 4);
        assert!(ranked.windows(2).all(|w| w[0].1 >= w[1].1));
        assert_eq!(ranked[0].0, 0);
        assert_eq!(ranked[3].0, 2, "the flat attribute ranks last");
    }

    #[test]
    fn utility_bound_proposition_5_1_holds_empirically() {
        // With t = ln 20, P[score(selected) < OPT − (2|C|k/ε)(ln|A| + t)] ≤ 1/20.
        let st = table();
        let eps = Epsilon::new(1.0).unwrap();
        let k = 1;
        let gamma = (0.5, 0.5);
        let t: f64 = (20.0f64).ln();
        let bound = (2.0 * st.n_clusters() as f64 * k as f64 / eps.get())
            * ((st.n_attributes() as f64).ln() + t);
        let opt: f64 = rank_attributes(&st, 0, gamma)[0].1;
        let runs = 2_000;
        let mut violations = 0;
        for seed in 0..runs {
            let mut r = StdRng::seed_from_u64(seed);
            let sets = select_candidates(&st, gamma, eps, k, &mut r).unwrap();
            let got = sscore(&st, 0, sets[0][0], gamma);
            if got < opt - bound {
                violations += 1;
            }
        }
        assert!(
            (violations as f64 / runs as f64) <= 0.05 * 1.5,
            "{violations}/{runs} violations"
        );
    }
}
