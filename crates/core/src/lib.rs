//! # dpclustx — differentially private explanations for clusters
//!
//! A from-scratch Rust implementation of **DPClustX** (Gilad, Milo, Razmadze,
//! Zadicario; SIGMOD 2025): a framework that takes a sensitive dataset and a
//! privately computed black-box clustering function and produces a global
//! **histogram-based explanation** (one pair of noisy histograms per cluster,
//! over a privately selected attribute) under ε-differential privacy.
//!
//! ## The pipeline (Figure 2 of the paper)
//!
//! 1. **Stage 1** ([`stage1`], Algorithm 1): for each cluster, privately select
//!    the top-k candidate attributes with the *one-shot top-k mechanism* over
//!    the sensitivity-1 single-cluster score
//!    `SScore_γ = γ_Int·Int_p + γ_Suf·Suf_p`.
//! 2. **Stage 2** ([`stage2`], Algorithm 2): run the exponential mechanism
//!    over all `k^|C|` attribute combinations drawn from the candidate sets,
//!    scored by the sensitivity-1 global score
//!    `GlScore_λ = λ_Int·Int_p + λ_Suf·Suf_p + λ_Div·Div_p`,
//!    then release noisy histograms **only for the selected attributes**,
//!    exploiting parallel composition across disjoint clusters.
//!
//! The quality functions live in [`quality`]; the low-sensitivity variants
//! (Definitions 4.2, 4.4, 4.5–4.7) carry their proven sensitivity bounds as
//! tests. The sensitive originals (TVD interestingness, Dasgupta-style
//! sufficiency, TabEE permutation diversity) are implemented too — they drive
//! the [`baselines`] and the evaluation measure [`eval::quality`].
//!
//! ## Entry point
//!
//! [`framework::DpClustX`] wires the stages together, enforces the
//! `ε_CandSet + ε_TopComb + ε_Hist` budget of Theorem 5.1 through an
//! accountant, and returns a renderable [`explanation::GlobalExplanation`].
//!
//! ```
//! use dpclustx::framework::{DpClustX, DpClustXConfig};
//! use dpx_clustering::{ClusteringMethod};
//! use dpx_data::synth::diabetes;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let synth = diabetes::spec(3).generate(2_000, &mut rng);
//! let model = ClusteringMethod::KMeans.fit(&synth.data, 3, &mut rng);
//! let labels = model.assign_all(&synth.data);
//!
//! let explainer = DpClustX::new(DpClustXConfig::default());
//! let outcome = explainer.explain(&synth.data, &labels, 3, &mut rng).unwrap();
//! assert_eq!(outcome.explanation.per_cluster.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod counts;
pub mod custom;
pub mod engine;
pub mod eval;
pub mod explanation;
pub mod framework;
pub mod multi;
pub mod parallel;
pub mod quality;
pub mod report;
pub mod session;
pub mod stage1;
pub mod stage2;
pub mod text;
pub mod twod;

pub use counts::{AttrCounts, ScoreTable};
pub use engine::{
    CollectingObserver, ExplainContext, ExplainEngine, NoopObserver, PipelineObserver,
    SharedCountsCache,
};
pub use explanation::{AttributeCombination, GlobalExplanation, SingleClusterExplanation};
pub use framework::{DpClustX, DpClustXConfig};
pub use quality::score::Weights;
pub use stage2::Stage2Kernel;
