//! Markdown report generation — the shareable artifact of a DPClustX run.
//!
//! The demonstration's end product is something an analyst can paste into a
//! document: per-cluster histograms, the generated textual descriptions, the
//! selected attributes, and the privacy audit. Everything here is
//! post-processing of already-released values, so it carries no privacy cost.

use crate::explanation::GlobalExplanation;
use crate::framework::DpClustXConfig;
use crate::text;
use dpx_dp::accuracy::geometric_error_bound;
use dpx_dp::budget::{Accountant, Epsilon};
use std::fmt::Write as _;

/// Options controlling report contents.
#[derive(Debug, Clone, Copy)]
pub struct ReportOptions {
    /// Include the per-bin markdown tables (can be long for wide domains).
    pub include_tables: bool,
    /// Include the ε audit trail.
    pub include_audit: bool,
}

impl Default for ReportOptions {
    fn default() -> Self {
        ReportOptions {
            include_tables: true,
            include_audit: true,
        }
    }
}

/// The per-bin accuracy note for a released explanation: 95%-confidence
/// error bounds implied by the geometric mechanism at the configuration's
/// histogram budgets (Algorithm 2's split: cluster histograms at `ε_Hist/2`,
/// full-data histograms at `ε_Hist/(2·|A'|)`). `None` for selection-only
/// configurations — no histograms, no accuracy to annotate.
pub fn accuracy_note(config: &DpClustXConfig, n_distinct_attributes: usize) -> Option<String> {
    let eps_hist_raw = config.eps_hist?;
    let eps_hist = Epsilon::new(eps_hist_raw).ok()?;
    let eps_cluster = eps_hist.split(2).ok()?;
    let eps_full = eps_cluster.split(n_distinct_attributes.max(1)).ok()?;
    let beta = 0.05;
    let t_cluster = geometric_error_bound(eps_cluster, beta);
    let t_full = geometric_error_bound(eps_full, beta);
    Some(format!(
        "Each in-cluster bin is within ±{t_cluster} of its true count and each \
full-data bin within ±{t_full}, each with 95% confidence \
(geometric mechanism at ε_Hist = {eps_hist_raw})."
    ))
}

/// Renders a complete markdown report for a released explanation.
pub fn markdown_report(
    title: &str,
    explanation: &GlobalExplanation,
    accountant: Option<&Accountant>,
    options: ReportOptions,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {title}\n");
    let _ = writeln!(
        out,
        "Explained clusters: **{}** — selected attributes: {}\n",
        explanation.per_cluster.len(),
        explanation
            .attribute_names()
            .iter()
            .map(|n| format!("`{n}`"))
            .collect::<Vec<_>>()
            .join(", ")
    );

    for e in &explanation.per_cluster {
        let _ = writeln!(out, "## Cluster {} — `{}`\n", e.cluster, e.attribute_name);
        let _ = writeln!(out, "> {}\n", text::describe(e));
        if options.include_tables {
            let pc = e.cluster_proportions();
            let pr = e.rest_proportions();
            let _ = writeln!(out, "| value | cluster % | rest % |");
            let _ = writeln!(out, "|---|---:|---:|");
            for (i, label) in e.bin_labels.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "| {} | {:.1} | {:.1} |",
                    label.replace('|', "\\|"),
                    pc[i] * 100.0,
                    pr[i] * 100.0
                );
            }
            let _ = writeln!(out);
        }
    }

    if options.include_audit {
        if let Some(acc) = accountant {
            let _ = writeln!(out, "## Privacy audit\n");
            let _ = writeln!(out, "```");
            let _ = write!(out, "{}", acc.audit());
            let _ = writeln!(out, "```");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explanation::SingleClusterExplanation;
    use dpx_dp::budget::Epsilon;

    fn explanation() -> GlobalExplanation {
        GlobalExplanation {
            per_cluster: vec![SingleClusterExplanation {
                cluster: 0,
                attribute: 2,
                attribute_name: "lab_proc".into(),
                bin_labels: vec!["[0,50)".into(), "[50,100)|plus".into()],
                hist_rest: vec![90.0, 10.0],
                hist_cluster: vec![5.0, 95.0],
            }],
        }
    }

    #[test]
    fn report_contains_all_sections() {
        let mut acc = Accountant::new();
        acc.charge("stage1", Epsilon::new(0.1).unwrap()).unwrap();
        let md = markdown_report(
            "Patient clusters",
            &explanation(),
            Some(&acc),
            ReportOptions::default(),
        );
        assert!(md.starts_with("# Patient clusters"));
        assert!(md.contains("## Cluster 0 — `lab_proc`"));
        assert!(md.contains("| value | cluster % | rest % |"));
        assert!(md.contains("## Privacy audit"));
        assert!(md.contains("stage1"));
        // Pipe characters in labels must be escaped for the table.
        assert!(md.contains("[50,100)\\|plus"));
    }

    #[test]
    fn options_trim_sections() {
        let md = markdown_report(
            "t",
            &explanation(),
            None,
            ReportOptions {
                include_tables: false,
                include_audit: false,
            },
        );
        assert!(!md.contains("| value |"));
        assert!(!md.contains("Privacy audit"));
        assert!(md.contains("> ")); // textual description stays
    }

    #[test]
    fn accuracy_note_reports_tighter_bounds_for_larger_budgets() {
        let loose = DpClustXConfig {
            eps_hist: Some(0.01),
            ..Default::default()
        };
        let tight = DpClustXConfig {
            eps_hist: Some(10.0),
            ..Default::default()
        };
        let extract = |cfg: &DpClustXConfig| -> u64 {
            let note = accuracy_note(cfg, 2).unwrap();
            // First ± number is the cluster bound.
            note.split('±')
                .nth(1)
                .unwrap()
                .chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
                .parse()
                .unwrap()
        };
        assert!(extract(&loose) > extract(&tight));
        // Invalid ε yields no note instead of a panic.
        let bad = DpClustXConfig {
            eps_hist: None,
            ..Default::default()
        };
        assert!(accuracy_note(&bad, 2).is_none());
    }

    #[test]
    fn percentages_are_normalized() {
        let md = markdown_report("t", &explanation(), None, ReportOptions::default());
        assert!(md.contains("| [0,50) | 5.0 | 90.0 |"));
    }
}
