//! Two-dimensional histogram explanations (the paper's future-work §8).
//!
//! The extension rides entirely on the 1-D machinery: each attribute *pair*
//! becomes a single attribute over the Cartesian-product domain
//! ([`dpx_data::product`]), which is still discrete, finite and
//! data-independent — so Stage-1, Stage-2, the sensitivity-1 quality
//! functions, and the DP histogram release apply verbatim. What changes is
//! interpretation (grid rendering) and, as the paper warns, utility: product
//! cells hold smaller counts, so the same ε buys noisier histograms.

use crate::explanation::GlobalExplanation;
use crate::framework::{DpClustX, DpClustXConfig, Outcome};
use dpx_data::product::{product_dataset, ProductColumn};
use dpx_data::{DataError, Dataset};
use dpx_dp::histogram::HistogramMechanism;
use dpx_dp::DpError;
use rand::Rng;

/// A 2-D explanation outcome: the standard outcome over the product space
/// plus the decoding metadata of each selected pair.
#[derive(Debug)]
pub struct PairOutcome {
    /// The standard pipeline outcome over the product dataset.
    pub outcome: Outcome,
    /// Decoders for the pair attributes, aligned with the product schema.
    pub products: Vec<ProductColumn>,
}

impl PairOutcome {
    /// The explanation over the product attributes.
    pub fn explanation(&self) -> &GlobalExplanation {
        &self.outcome.explanation
    }

    /// Renders cluster `c`'s selected 2-D histogram as a grid of percentage
    /// cells (rows = first attribute, columns = second).
    pub fn render_grid(&self, c: usize) -> String {
        let e = &self.outcome.explanation.per_cluster[c];
        let product = &self.products[e.attribute];
        let dom_b = product.dom_b;
        let dom_a = e.hist_cluster.len() / dom_b;
        let total: f64 = e.hist_cluster.iter().map(|&x| x.max(0.0)).sum();
        let mut out = format!(
            "Cluster {} — pair `{}` (cluster distribution, % per cell)\n",
            c, e.attribute_name
        );
        for va in 0..dom_a {
            out.push_str("  ");
            for vb in 0..dom_b {
                let count = e.hist_cluster[va * dom_b + vb].max(0.0);
                let pct = if total > 0.0 {
                    count / total * 100.0
                } else {
                    0.0
                };
                out.push_str(&format!("{pct:6.1}"));
            }
            out.push('\n');
        }
        out
    }
}

/// Errors from the 2-D pipeline: either data composition or DP failures.
#[derive(Debug)]
pub enum PairError {
    /// Composing the product dataset failed.
    Data(DataError),
    /// The DP pipeline failed.
    Dp(DpError),
}

impl std::fmt::Display for PairError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PairError::Data(e) => write!(f, "pair composition: {e}"),
            PairError::Dp(e) => write!(f, "dp pipeline: {e}"),
        }
    }
}

impl std::error::Error for PairError {}

/// Runs DPClustX over attribute-*pair* candidates: the candidate space is
/// the given `pairs`, each treated as one product attribute. Spends exactly
/// the budget of `config` (Theorem 5.1 applies unchanged).
pub fn explain_pairs<M: HistogramMechanism + Sync, R: Rng + ?Sized>(
    data: &Dataset,
    labels: &[usize],
    n_clusters: usize,
    pairs: &[(usize, usize)],
    config: DpClustXConfig,
    mechanism: &M,
    rng: &mut R,
) -> Result<PairOutcome, PairError> {
    let (product_data, products) = product_dataset(data, pairs).map_err(PairError::Data)?;
    let counts = dpx_data::contingency::ClusteredCounts::build(&product_data, labels, n_clusters);
    let outcome = DpClustX::new(config)
        .explain_from_counts(&product_data, &counts, mechanism, rng)
        .map_err(PairError::Dp)?;
    Ok(PairOutcome { outcome, products })
}

/// All unordered attribute pairs `(a, b)` with `a < b` — the full 2-D
/// candidate space (quadratic; callers with many attributes should pre-select
/// a subset, e.g. the top 1-D candidates).
pub fn all_pairs(n_attributes: usize) -> Vec<(usize, usize)> {
    let mut pairs = Vec::with_capacity(n_attributes * (n_attributes - 1) / 2);
    for a in 0..n_attributes {
        for b in (a + 1)..n_attributes {
            pairs.push((a, b));
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpx_data::schema::{Attribute, Domain, Schema};
    use dpx_dp::histogram::GeometricHistogram;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Cluster structure only visible jointly: within each (x, y) pair the
    /// cluster is determined by x == y, which no single attribute reveals.
    fn xor_world() -> (Dataset, Vec<usize>) {
        let schema = Schema::new(vec![
            Attribute::new("x", Domain::indexed(2)).unwrap(),
            Attribute::new("y", Domain::indexed(2)).unwrap(),
            Attribute::new("noise", Domain::indexed(3)).unwrap(),
        ])
        .unwrap();
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..2000u32 {
            let x = i % 2;
            let y = (i / 2) % 2;
            rows.push(vec![x, y, i % 3]);
            labels.push(usize::from(x == y));
        }
        (Dataset::from_rows(schema, &rows).unwrap(), labels)
    }

    #[test]
    fn pair_explanation_finds_joint_structure() {
        let (data, labels) = xor_world();
        let mut rng = StdRng::seed_from_u64(3);
        let pairs = all_pairs(3);
        let config = DpClustXConfig {
            k: 1,
            eps_cand_set: 100.0,
            eps_top_comb: 100.0,
            eps_hist: Some(10.0),
            ..Default::default()
        };
        let out = explain_pairs(
            &data,
            &labels,
            2,
            &pairs,
            config,
            &GeometricHistogram,
            &mut rng,
        )
        .unwrap();
        // XOR structure: only the (x, y) product perfectly explains the
        // clusters; a near-noiseless run must select it for both.
        for e in &out.outcome.explanation.per_cluster {
            assert_eq!(e.attribute_name, "x×y", "cluster {}", e.cluster);
        }
    }

    #[test]
    fn grid_rendering_has_product_shape() {
        let (data, labels) = xor_world();
        let mut rng = StdRng::seed_from_u64(4);
        let out = explain_pairs(
            &data,
            &labels,
            2,
            &[(0, 1)],
            DpClustXConfig {
                k: 1,
                eps_cand_set: 10.0,
                eps_top_comb: 10.0,
                eps_hist: Some(10.0),
                ..Default::default()
            },
            &GeometricHistogram,
            &mut rng,
        )
        .unwrap();
        let grid = out.render_grid(0);
        // 2×2 product → exactly two data rows (plus the header).
        assert_eq!(grid.lines().count(), 3, "grid:\n{grid}");
        assert!(grid.contains("x×y"));
    }

    #[test]
    fn budget_is_unchanged_by_the_extension() {
        let (data, labels) = xor_world();
        let mut rng = StdRng::seed_from_u64(5);
        let config = DpClustXConfig::default();
        let out = explain_pairs(
            &data,
            &labels,
            2,
            &all_pairs(3),
            config,
            &GeometricHistogram,
            &mut rng,
        )
        .unwrap();
        assert!(
            (out.outcome.accountant.spent() - config.total_epsilon()).abs() < 1e-9,
            "spent {}",
            out.outcome.accountant.spent()
        );
    }

    #[test]
    fn all_pairs_counts() {
        assert_eq!(all_pairs(4).len(), 6);
        assert_eq!(all_pairs(1).len(), 0);
        assert!(all_pairs(5).iter().all(|&(a, b)| a < b && b < 5));
    }
}
