//! Pluggable score functions (the paper's future-work §8: "the extension of
//! DPClustX to different score functions that emphasize different facets of
//! explainability").
//!
//! Both selection stages are, mechanically, private maximization over a
//! candidate space; any quality function with a *known sensitivity bound*
//! can drive them. This module exposes that generality: callers supply the
//! score and its sensitivity, and the mechanisms calibrate noise to it.
//! **The privacy guarantee is only as good as the supplied bound** — that
//! responsibility is the caller's, exactly as with the exponential mechanism
//! itself.

use crate::counts::ScoreTable;
use crate::explanation::AttributeCombination;
use dpx_dp::budget::{Epsilon, Sensitivity};
use dpx_dp::gumbel::sample_gumbel;
use dpx_dp::topk::one_shot_top_k;
use dpx_dp::DpError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A user-supplied single-cluster score: `(table, cluster, attribute) → ℝ`
/// with the stated sensitivity (Definition 2.6) under add/remove-one-tuple
/// neighbors.
pub struct SingleClusterScore<F: Fn(&ScoreTable, usize, usize) -> f64> {
    /// The score function.
    pub score: F,
    /// Its proven sensitivity bound.
    pub sensitivity: Sensitivity,
}

/// A user-supplied global score: `(table, assignment) → ℝ` with the stated
/// sensitivity.
pub struct GlobalScore<F: Fn(&ScoreTable, &[usize]) -> f64> {
    /// The score function.
    pub score: F,
    /// Its proven sensitivity bound.
    pub sensitivity: Sensitivity,
}

/// Stage-1 with a custom single-cluster score: per-cluster one-shot top-k at
/// `eps_cand_set / |C|` each, noise calibrated to the supplied sensitivity.
///
/// Follows the same per-cluster seed-splitting discipline as
/// [`crate::stage1::select_candidates`], so with the standard score and the
/// same master seed the two paths produce identical candidate sets.
pub fn select_candidates_custom<F, R>(
    st: &ScoreTable,
    score: &SingleClusterScore<F>,
    eps_cand_set: Epsilon,
    k: usize,
    rng: &mut R,
) -> Result<Vec<Vec<usize>>, DpError>
where
    F: Fn(&ScoreTable, usize, usize) -> f64,
    R: Rng + ?Sized,
{
    let n_clusters = st.n_clusters();
    let n_attrs = st.n_attributes();
    if k == 0 || k > n_attrs {
        return Err(DpError::NotEnoughCandidates {
            requested: k,
            available: n_attrs,
        });
    }
    let eps_topk = eps_cand_set.split(n_clusters)?;
    let seeds: Vec<u64> = (0..n_clusters).map(|_| rng.gen()).collect();
    let mut sets = Vec::with_capacity(n_clusters);
    for (c, seed) in seeds.into_iter().enumerate() {
        let scores: Vec<f64> = (0..n_attrs).map(|a| (score.score)(st, c, a)).collect();
        let mut task_rng = StdRng::seed_from_u64(seed);
        sets.push(one_shot_top_k(
            &scores,
            k,
            eps_topk,
            score.sensitivity,
            &mut task_rng,
        )?);
    }
    Ok(sets)
}

/// Stage-2 with a custom global score: exponential mechanism over the
/// candidate product space, noise calibrated to the supplied sensitivity.
pub fn select_combination_custom<F, R>(
    st: &ScoreTable,
    candidates: &[Vec<usize>],
    score: &GlobalScore<F>,
    eps_top_comb: Epsilon,
    rng: &mut R,
) -> Result<AttributeCombination, DpError>
where
    F: Fn(&ScoreTable, &[usize]) -> f64,
    R: Rng + ?Sized,
{
    if candidates.is_empty() || candidates.iter().any(Vec::is_empty) {
        return Err(DpError::EmptyCandidateSet);
    }
    let factor = eps_top_comb.get() / (2.0 * score.sensitivity.get());
    let n = candidates.len();
    let mut choice = vec![0usize; n];
    let mut combo: Vec<usize> = candidates.iter().map(|s| s[0]).collect();
    let mut best: Option<(f64, AttributeCombination)> = None;
    loop {
        let noisy = factor * (score.score)(st, &combo) + sample_gumbel(1.0, rng);
        if best.as_ref().is_none_or(|(bv, _)| noisy > *bv) {
            best = Some((noisy, combo.clone()));
        }
        let mut pos = n;
        loop {
            if pos == 0 {
                return Ok(best.expect("non-empty candidate space").1);
            }
            pos -= 1;
            choice[pos] += 1;
            if choice[pos] < candidates[pos].len() {
                combo[pos] = candidates[pos][choice[pos]];
                break;
            }
            choice[pos] = 0;
            combo[pos] = candidates[pos][0];
        }
    }
}

/// The paper's own functions expressed through the custom interface — used
/// to validate the plumbing and as a template for users.
pub fn standard_single_score(
    gamma: (f64, f64),
) -> SingleClusterScore<impl Fn(&ScoreTable, usize, usize) -> f64> {
    SingleClusterScore {
        score: move |st: &ScoreTable, c: usize, a: usize| {
            crate::quality::score::sscore(st, c, a, gamma)
        },
        sensitivity: Sensitivity::ONE,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counts::AttrCounts;
    use crate::quality::score::{glscore, Weights};
    use crate::stage1::select_candidates;
    use crate::stage2::select_combination;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table() -> ScoreTable {
        let a0 = AttrCounts::new(
            vec![vec![90.0, 10.0], vec![80.0, 120.0]],
            vec![170.0, 130.0],
        );
        let a1 = AttrCounts::new(vec![vec![30.0, 70.0], vec![10.0, 190.0]], vec![40.0, 260.0]);
        ScoreTable::new(vec![a0, a1])
    }

    #[test]
    fn standard_score_through_custom_matches_stage1() {
        let st = table();
        let eps = Epsilon::new(0.4).unwrap();
        let score = standard_single_score((0.5, 0.5));
        let a =
            select_candidates_custom(&st, &score, eps, 2, &mut StdRng::seed_from_u64(9)).unwrap();
        let b = select_candidates(&st, (0.5, 0.5), eps, 2, &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(a, b, "same seed, same scores → identical candidate sets");
    }

    #[test]
    fn custom_global_score_selects_its_own_optimum() {
        let st = table();
        // A contrarian score: prefer assignments using attribute 1 everywhere.
        let score = GlobalScore {
            score: |_: &ScoreTable, asg: &[usize]| asg.iter().filter(|&&a| a == 1).count() as f64,
            sensitivity: Sensitivity::ONE,
        };
        let candidates = vec![vec![0usize, 1], vec![0, 1]];
        let mut rng = StdRng::seed_from_u64(10);
        let sel = select_combination_custom(
            &st,
            &candidates,
            &score,
            Epsilon::new(1e6).unwrap(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(sel, vec![1, 1]);
    }

    #[test]
    fn custom_glscore_reproduces_standard_stage2_scorewise() {
        let st = table();
        let w = Weights::equal();
        let score = GlobalScore {
            score: move |st: &ScoreTable, asg: &[usize]| glscore(st, asg, w),
            sensitivity: Sensitivity::ONE,
        };
        let candidates = vec![vec![0usize, 1], vec![0, 1]];
        let eps = Epsilon::new(1e6).unwrap();
        let a = select_combination_custom(
            &st,
            &candidates,
            &score,
            eps,
            &mut StdRng::seed_from_u64(11),
        )
        .unwrap();
        let b =
            select_combination(&st, &candidates, w, eps, &mut StdRng::seed_from_u64(12)).unwrap();
        // Ties are possible; the achieved GlScore must coincide.
        assert!((glscore(&st, &a, w) - glscore(&st, &b, w)).abs() < 1e-9);
    }

    #[test]
    fn validation_errors_propagate() {
        let st = table();
        let score = standard_single_score((0.5, 0.5));
        let mut rng = StdRng::seed_from_u64(13);
        assert!(
            select_candidates_custom(&st, &score, Epsilon::new(1.0).unwrap(), 0, &mut rng).is_err()
        );
        let gscore = GlobalScore {
            score: |_: &ScoreTable, _: &[usize]| 0.0,
            sensitivity: Sensitivity::ONE,
        };
        assert!(select_combination_custom(
            &st,
            &[vec![], vec![0]],
            &gscore,
            Epsilon::new(1.0).unwrap(),
            &mut rng
        )
        .is_err());
    }
}
