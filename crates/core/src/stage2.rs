//! Stage 2 — global explanation (Algorithm 2 of the paper).
//!
//! Two private steps follow Stage-1's candidate sets:
//!
//! 1. **Combination selection** (line 5): the exponential mechanism over all
//!    `k^|C|` attribute combinations drawn from the candidate sets, scored by
//!    the sensitivity-1 `GlScore_λ`. Sampling uses the Gumbel-max trick so the
//!    full combination space is enumerated exactly once, with incremental
//!    (DFS) partial scores — no `k^|C|`-sized allocation. Three kernels share
//!    that mechanism (selected by [`Stage2Kernel`]): the streaming
//!    [`select_combination_counted`] reference, and the counter-based
//!    [`select_combination_counter`] family, whose per-leaf PRF noise makes
//!    the leaf space range-partitionable across threads and prunable by an
//!    exact branch-and-bound bound — bit-identical for any thread count.
//! 2. **Histogram release** (lines 6–15): noisy full-data histograms for the
//!    *distinct* selected attributes at `ε_Hist/(2|A'|)` each (sequential
//!    composition), noisy in-cluster histograms at `ε_Hist/2` each (parallel
//!    composition across disjoint clusters), and out-of-cluster histograms by
//!    clamped subtraction (post-processing, free).

use crate::counts::ScoreTable;
use crate::explanation::{AttributeCombination, GlobalExplanation};
use crate::parallel::{chunked_reduce, default_threads, ordered_parallel_map};
use crate::quality::score::{GlScoreCache, Weights};
use dpx_data::contingency::ClusteredCounts;
use dpx_data::Schema;
use dpx_dp::budget::{Accountant, Epsilon};
use dpx_dp::consistency::enforce_partition_consistency;
use dpx_dp::counter::{gumbel_at, GUMBEL_UNIT_MAX};
use dpx_dp::gumbel::sample_gumbel;
use dpx_dp::histogram::{subtract_clamped, HistogramMechanism};
use dpx_dp::DpError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Selects the noisy-best attribute combination from the candidate sets with
/// the exponential mechanism at `eps_top_comb` (Algorithm 2, line 5).
///
/// Returns the chosen attribute index per cluster.
pub fn select_combination<R: Rng + ?Sized>(
    st: &ScoreTable,
    candidates: &[Vec<usize>],
    weights: Weights,
    eps_top_comb: Epsilon,
    rng: &mut R,
) -> Result<AttributeCombination, DpError> {
    select_combination_counted(st, candidates, weights, eps_top_comb, rng).map(|(sel, _)| sel)
}

/// [`select_combination`] plus the number of combination leaves the
/// enumerator visited — which is exactly the number of Gumbel perturbations
/// drawn. The engine observer reports this figure, and tests use it to prove
/// the enumeration covers the whole `k^|C|` space without silently skipping
/// combinations.
///
/// The enumerator is **iterative**: an odometer over the candidate sets
/// (rightmost cluster fastest — the same lexicographic leaf order as the
/// historical recursive DFS, kept as
/// [`select_combination_counted_recursive`]) walking precomputed per-level
/// gain slices with running prefix sums. For each prefix of fixed earlier
/// choices, every candidate's marginal `GlScore` contribution at a level is
/// materialized once into a slice; the innermost loop is then a slice read,
/// one multiply-add, and one Gumbel draw per leaf — no recursion, no
/// per-leaf pair-term scan. The arithmetic reuses
/// [`GlScoreCache::marginal_gain`] with the same association order as the
/// DFS, so leaf scores, the Gumbel stream, and the argmax are all
/// bit-identical to the recursive reference (twin-RNG tested).
pub fn select_combination_counted<R: Rng + ?Sized>(
    st: &ScoreTable,
    candidates: &[Vec<usize>],
    weights: Weights,
    eps_top_comb: Epsilon,
    rng: &mut R,
) -> Result<(AttributeCombination, u64), DpError> {
    if candidates.is_empty() || candidates.iter().any(Vec::is_empty) {
        return Err(DpError::EmptyCandidateSet);
    }
    let cache = GlScoreCache::build(st, candidates, weights);
    // Exponential mechanism via Gumbel-max: argmax over combinations of
    // ε·GlScore/(2Δ) + Gumbel(1), with Δ = 1 (Proposition 4.9).
    let factor = eps_top_comb.get() / 2.0;
    let n = candidates.len();
    let last = n - 1;
    let ks: Vec<usize> = candidates.iter().map(Vec::len).collect();
    let mut choice = vec![0usize; n];
    let mut best_choice = vec![0usize; n];
    let mut best_val = f64::NEG_INFINITY;
    let mut leaves = 0u64;
    // gains[c][i]: marginal GlScore contribution of candidate i at level c
    // under the current prefix `choice[..c]`; prefix_sum[c]: total gain of
    // the chosen candidates at levels < c, accumulated left to right.
    let mut gains: Vec<Vec<f64>> = (0..n)
        .map(|c| {
            (0..ks[c])
                .map(|i| cache.marginal_gain(&choice[..c], c, i))
                .collect()
        })
        .collect();
    let mut prefix_sum = vec![0.0f64; n];
    for c in 1..n {
        prefix_sum[c] = prefix_sum[c - 1] + gains[c - 1][choice[c - 1]];
    }
    loop {
        // Leaf sweep: all candidates of the last cluster under this prefix.
        let base = prefix_sum[last];
        for (i, &gain) in gains[last].iter().enumerate() {
            let noisy = factor * (base + gain) + sample_gumbel(1.0, rng);
            leaves += 1;
            if noisy > best_val {
                best_val = noisy;
                best_choice[..last].copy_from_slice(&choice[..last]);
                best_choice[last] = i;
            }
        }
        // Odometer step over the prefix levels (rightmost fastest).
        let mut pos = last;
        loop {
            if pos == 0 {
                let sel = best_choice
                    .iter()
                    .enumerate()
                    .map(|(c, &i)| candidates[c][i])
                    .collect();
                return Ok((sel, leaves));
            }
            pos -= 1;
            choice[pos] += 1;
            if choice[pos] < ks[pos] {
                break;
            }
            choice[pos] = 0;
        }
        // Levels above `pos` saw their prefix change: refresh their gain
        // slices and running prefix sums (gains[pos] itself only depends on
        // choices *before* pos, which are unchanged).
        for c in pos + 1..n {
            for (i, slot) in gains[c].iter_mut().enumerate() {
                *slot = cache.marginal_gain(&choice[..c], c, i);
            }
        }
        for c in pos + 1..n {
            prefix_sum[c] = prefix_sum[c - 1] + gains[c - 1][choice[c - 1]];
        }
    }
}

/// The historical recursive implementation of
/// [`select_combination_counted`], kept as the reference the iterative
/// enumerator is twin-RNG tested against (identical Gumbel stream, leaf
/// count, and argmax) and as the baseline of the bench crate's Stage-2
/// node-rate ablation.
pub fn select_combination_counted_recursive<R: Rng + ?Sized>(
    st: &ScoreTable,
    candidates: &[Vec<usize>],
    weights: Weights,
    eps_top_comb: Epsilon,
    rng: &mut R,
) -> Result<(AttributeCombination, u64), DpError> {
    if candidates.is_empty() || candidates.iter().any(Vec::is_empty) {
        return Err(DpError::EmptyCandidateSet);
    }
    let cache = GlScoreCache::build(st, candidates, weights);
    let factor = eps_top_comb.get() / 2.0;
    let n = candidates.len();
    let mut best_choice = vec![0usize; n];
    let mut best_val = f64::NEG_INFINITY;
    let mut prefix: Vec<usize> = Vec::with_capacity(n);
    let mut partial: Vec<f64> = Vec::with_capacity(n + 1);
    let mut leaves = 0u64;
    partial.push(0.0);
    dfs(
        &cache,
        candidates,
        factor,
        &mut prefix,
        &mut partial,
        &mut best_choice,
        &mut best_val,
        &mut leaves,
        rng,
    );
    let sel = best_choice
        .iter()
        .enumerate()
        .map(|(c, &i)| candidates[c][i])
        .collect();
    Ok((sel, leaves))
}

/// DFS over combination space, maintaining the running `GlScore` prefix sum;
/// at each leaf draws the Gumbel perturbation and tracks the argmax.
#[allow(clippy::too_many_arguments)]
fn dfs<R: Rng + ?Sized>(
    cache: &GlScoreCache,
    candidates: &[Vec<usize>],
    factor: f64,
    prefix: &mut Vec<usize>,
    partial: &mut Vec<f64>,
    best_choice: &mut Vec<usize>,
    best_val: &mut f64,
    leaves: &mut u64,
    rng: &mut R,
) {
    let c = prefix.len();
    if c == candidates.len() {
        let score = *partial.last().expect("partial always has the root entry");
        let noisy = factor * score + sample_gumbel(1.0, rng);
        *leaves += 1;
        if noisy > *best_val {
            *best_val = noisy;
            best_choice.copy_from_slice(prefix);
        }
        return;
    }
    for i in 0..candidates[c].len() {
        let gain = cache.marginal_gain(prefix, c, i);
        prefix.push(i);
        partial.push(partial.last().expect("non-empty") + gain);
        dfs(
            cache,
            candidates,
            factor,
            prefix,
            partial,
            best_choice,
            best_val,
            leaves,
            rng,
        );
        prefix.pop();
        partial.pop();
    }
}

/// Which enumeration kernel drives Stage-2 combination selection.
///
/// All three realize the *same* exponential-mechanism distribution (each
/// leaf's perturbation is one [`sample_gumbel`] draw); they differ in where
/// the noise comes from and therefore in what the enumerator is allowed to
/// do with the leaf space:
///
/// * [`SequentialRng`](Stage2Kernel::SequentialRng) — the streaming
///   reference: every leaf consumes the caller's RNG in leaf order, so the
///   sweep is pinned to one core and must visit every leaf. This is the
///   historical behavior and stays the default; all seeded-reproducibility
///   guarantees of existing runs are unchanged.
/// * [`CounterSerial`](Stage2Kernel::CounterSerial) — noise at leaf `i` is
///   the counter-based [`gumbel_at`]`(seed, i)`, a pure function, with one
///   fresh `seed` drawn from the caller's RNG per selection. Independence
///   across leaves lets the sweep prune: whole slices — and, at carry time,
///   whole subtrees — whose best possible score plus [`GUMBEL_UNIT_MAX`]
///   cannot beat the running best are skipped without computing their draws,
///   exact, not approximate (see [`select_combination_counter`]).
/// * [`CounterParallel`](Stage2Kernel::CounterParallel) — the same
///   counter-based sweep, range-partitioned over `threads` workers via
///   mixed-radix odometer seeking; deterministically merged, bit-identical
///   to `CounterSerial` for every thread count. `0` means "auto" (machine
///   parallelism).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Stage2Kernel {
    /// Streaming Gumbel draws from the caller's sequential RNG (default).
    #[default]
    SequentialRng,
    /// Counter-based per-leaf noise, single-threaded sweep.
    CounterSerial,
    /// Counter-based per-leaf noise, range-partitioned across N threads
    /// (`0` = auto-detect machine parallelism).
    CounterParallel(usize),
}

impl Stage2Kernel {
    /// Parses a CLI/bench selector: `seq` (or `sequential-rng`), `counter`
    /// (or `counter-serial`), `counter-par[/N]` (or `counter-parallel[/N]`;
    /// bare form auto-detects the thread count).
    pub fn parse(s: &str) -> Result<Self, String> {
        let (name, threads) = match s.split_once('/') {
            Some((n, t)) => (n, Some(t)),
            None => (s, None),
        };
        match (name, threads) {
            ("seq" | "sequential" | "sequential-rng", None) => Ok(Stage2Kernel::SequentialRng),
            ("counter" | "counter-serial", None) => Ok(Stage2Kernel::CounterSerial),
            ("counter-par" | "counter-parallel", None) => Ok(Stage2Kernel::CounterParallel(0)),
            ("counter-par" | "counter-parallel", Some(t)) => t
                .parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .map(Stage2Kernel::CounterParallel)
                .ok_or_else(|| format!("invalid thread count {t:?} in stage2 kernel {s:?}")),
            _ => Err(format!(
                "unknown stage2 kernel {s:?} (expected seq, counter, or counter-par[/N])"
            )),
        }
    }

    /// Stable display/JSON label for this kernel.
    pub fn label(&self) -> String {
        match self {
            Stage2Kernel::SequentialRng => "sequential-rng".into(),
            Stage2Kernel::CounterSerial => "counter-serial".into(),
            Stage2Kernel::CounterParallel(0) => "counter-parallel/auto".into(),
            Stage2Kernel::CounterParallel(t) => format!("counter-parallel/{t}"),
        }
    }
}

/// [`select_combination_counted`] dispatched through a [`Stage2Kernel`].
///
/// `SequentialRng` consumes one RNG draw per leaf; the counter kernels
/// consume exactly **one** `u64` (the PRF seed) regardless of leaf count, so
/// `CounterSerial` and `CounterParallel` are stream-compatible with each
/// other (and trivially with themselves across thread counts).
pub fn select_combination_with_kernel<R: Rng + ?Sized>(
    st: &ScoreTable,
    candidates: &[Vec<usize>],
    weights: Weights,
    eps_top_comb: Epsilon,
    kernel: Stage2Kernel,
    rng: &mut R,
) -> Result<(AttributeCombination, u64), DpError> {
    match kernel {
        Stage2Kernel::SequentialRng => {
            select_combination_counted(st, candidates, weights, eps_top_comb, rng)
        }
        Stage2Kernel::CounterSerial => {
            select_combination_counter(st, candidates, weights, eps_top_comb, 1, rng)
        }
        Stage2Kernel::CounterParallel(threads) => {
            let threads = if threads == 0 {
                default_threads(usize::MAX)
            } else {
                threads
            };
            select_combination_counter(st, candidates, weights, eps_top_comb, threads, rng)
        }
    }
}

/// The Stage-2 enumerator state at one leaf: the mixed-radix choice vector,
/// the per-level marginal-gain slices under the current prefix, and their
/// running left-fold prefix sums.
///
/// The state at leaf `i` is a *pure function* of `i`: every `gains[c][j]` is
/// `GlScoreCache::marginal_gain(&choice[..c], c, j)` (itself pure) and every
/// prefix sum is the same fixed-order left fold — so [`Odometer::seek`]
/// lands bit-for-bit on the state the serial sweep reaches by carrying
/// through leaves `0..i` (tested). That equivalence is what makes contiguous
/// range partitions of the leaf space exact rather than approximate.
struct Odometer<'a> {
    cache: &'a GlScoreCache,
    ks: &'a [usize],
    choice: Vec<usize>,
    gains: Vec<Vec<f64>>,
    prefix_sum: Vec<f64>,
}

impl<'a> Odometer<'a> {
    /// Seeks directly to `leaf`: mixed-radix decomposition of the index
    /// (rightmost cluster fastest — the enumeration order shared by every
    /// Stage-2 kernel) followed by a fresh gain/prefix rebuild, costing
    /// O(|C|·k) `marginal_gain` calls independent of `leaf`.
    fn seek(cache: &'a GlScoreCache, ks: &'a [usize], leaf: u64) -> Self {
        let n = ks.len();
        let mut choice = vec![0usize; n];
        let mut rem = leaf;
        for c in (0..n).rev() {
            let k = ks[c] as u64;
            choice[c] = (rem % k) as usize;
            rem /= k;
        }
        debug_assert_eq!(rem, 0, "leaf index out of the combination space");
        let gains: Vec<Vec<f64>> = (0..n)
            .map(|c| {
                (0..ks[c])
                    .map(|i| cache.marginal_gain(&choice[..c], c, i))
                    .collect()
            })
            .collect();
        let mut prefix_sum = vec![0.0f64; n];
        for c in 1..n {
            prefix_sum[c] = prefix_sum[c - 1] + gains[c - 1][choice[c - 1]];
        }
        Odometer {
            cache,
            ks,
            choice,
            gains,
            prefix_sum,
        }
    }

    /// Advances the prefix levels (everything left of the last cluster) by
    /// one, refreshing the gain slices and prefix sums of the levels whose
    /// prefix changed — the same carry step as the serial sweep (the pruned
    /// sweep inlines the increment to interleave subtree bounds, then calls
    /// [`Odometer::refresh_from`]). Returns `false` when the prefix space is
    /// exhausted. Kept as the unpruned reference for the seek-equivalence
    /// property test.
    #[cfg(test)]
    fn carry(&mut self) -> bool {
        let n = self.ks.len();
        let last = n - 1;
        let mut pos = last;
        loop {
            if pos == 0 {
                return false;
            }
            pos -= 1;
            self.choice[pos] += 1;
            if self.choice[pos] < self.ks[pos] {
                break;
            }
            self.choice[pos] = 0;
        }
        self.refresh_from(pos);
        true
    }

    /// Rebuilds the gain slices and prefix sums of every level right of
    /// `pos` after the digit at `pos` changed — the invariant-restoring half
    /// of a carry. Levels `..=pos` are untouched: their gains and prefix
    /// sums depend only on digits left of `pos`.
    fn refresh_from(&mut self, pos: usize) {
        let n = self.ks.len();
        for c in pos + 1..n {
            for i in 0..self.ks[c] {
                self.gains[c][i] = self.cache.marginal_gain(&self.choice[..c], c, i);
            }
        }
        for c in pos + 1..n {
            self.prefix_sum[c] = self.prefix_sum[c - 1] + self.gains[c - 1][self.choice[c - 1]];
        }
    }
}

/// A range sweep's argmax: the best noisy value, the (globally indexed) leaf
/// achieving it, and that leaf's choice vector.
struct RangeBest {
    val: f64,
    leaf: u64,
    choice: Vec<usize>,
}

/// The inputs shared by every range of one counter-based sweep: the score
/// cache, the per-cluster candidate counts, the exponential-mechanism factor
/// `eps/2`, the PRF seed, and the precomputed subtree-pruning tables
/// (`bounds[c]` = max prefix-independent gain bound of cluster `c`,
/// `subtree[c]` = leaves under a fixed prefix of length `c`).
struct SweepInputs<'a> {
    cache: &'a GlScoreCache,
    ks: &'a [usize],
    factor: f64,
    seed: u64,
    bounds: &'a [f64],
    subtree: &'a [u64],
}

/// Sweeps leaves `[start, end)` with counter-based noise, returning the
/// range-local argmax (earliest leaf on exact ties, via strict `>` updates).
///
/// Two levels of exact branch-and-bound pruning, both enabled by per-leaf
/// counter noise (a sequential stream must draw every leaf's Gumbel just to
/// keep later draws aligned):
///
/// * **Slice level** — a last-cluster slice whose best achievable noisy
///   value, `factor · (base + max gain) + GUMBEL_UNIT_MAX`, cannot exceed
///   the running best is skipped without computing any draw.
/// * **Subtree level** — at every carry, before the gain slices below the
///   carry position are refreshed, the whole `∏ ks[p+1..]`-leaf subtree is
///   bounded by folding `bounds[c]` (the prefix-independent
///   [`GlScoreCache::gain_upper_bound`] maxima) onto the fixed prefix sum in
///   the *same left-to-right order* the sweep itself accumulates gains; a
///   subtree that cannot beat the running best is skipped in O(1) — no gain
///   refresh, no draws — and the carry retries at the same position.
///
/// Both bounds are exact in floating point, not just in exact arithmetic:
/// each replaced term dominates its actual term, the folds run in identical
/// order, and IEEE addition and positive multiplication are monotone, so a
/// skipped leaf's noisy value could never have passed the strict `>` update.
/// The argmax, its value, and the earliest-leaf tie-breaking are therefore
/// bit-identical to the unpruned sweep.
fn sweep_counter_range(inputs: &SweepInputs<'_>, start: u64, end: u64) -> RangeBest {
    debug_assert!(start < end);
    let &SweepInputs {
        cache,
        ks,
        factor,
        seed,
        bounds,
        subtree,
    } = inputs;
    let n = ks.len();
    let last = n - 1;
    let k_last = ks[last];
    let mut odo = Odometer::seek(cache, ks, start);
    let mut best = RangeBest {
        val: f64::NEG_INFINITY,
        leaf: start,
        choice: odo.choice.clone(),
    };
    let mut leaf = start;
    // The first slice may start mid-way (seek lands on digit `choice[last]`);
    // subsequent slices always start at digit 0.
    let mut digit0 = odo.choice[last];
    loop {
        let base = odo.prefix_sum[last];
        let slice_len = ((end - leaf).min((k_last - digit0) as u64)) as usize;
        let gains = &odo.gains[last][digit0..digit0 + slice_len];
        let gmax = gains.iter().fold(f64::NEG_INFINITY, |m, &g| m.max(g));
        if factor * (base + gmax) + GUMBEL_UNIT_MAX > best.val {
            for (off, &gain) in gains.iter().enumerate() {
                let idx = leaf + off as u64;
                let noisy = factor * (base + gain) + gumbel_at(seed, idx, 1.0);
                if noisy > best.val {
                    best.val = noisy;
                    best.leaf = idx;
                    best.choice.copy_from_slice(&odo.choice);
                    best.choice[last] = digit0 + off;
                }
            }
        }
        leaf += slice_len as u64;
        if leaf >= end {
            return best;
        }
        // Carry with subtree pruning: find the next prefix whose subtree
        // could still contain a winner, skipping hopeless ones wholesale.
        let mut pos = last;
        loop {
            if pos == 0 {
                return best;
            }
            pos -= 1;
            odo.choice[pos] += 1;
            if odo.choice[pos] == ks[pos] {
                odo.choice[pos] = 0;
                continue; // cascade the carry one position left
            }
            // `gains[pos]` and `prefix_sum[pos]` depend only on digits left
            // of `pos`, which this carry has not touched — both still valid.
            let mut b = odo.prefix_sum[pos] + odo.gains[pos][odo.choice[pos]];
            for &m in &bounds[pos + 1..] {
                b += m;
            }
            if factor * b + GUMBEL_UNIT_MAX <= best.val {
                // `leaf` sits on the subtree's first leaf; skip all of it
                // and retry the increment at this same position.
                leaf += subtree[pos + 1];
                if leaf >= end {
                    return best;
                }
                pos += 1;
                continue;
            }
            break;
        }
        // The surviving carry position: restore the invariants below it.
        odo.refresh_from(pos);
        digit0 = 0;
    }
}

/// Counter-based Stage-2 combination selection (the `CounterSerial` /
/// `CounterParallel` kernels): the exponential mechanism over the `k^|C|`
/// combination space via the Gumbel-max trick, with each leaf's perturbation
/// derived from a keyed PRF ([`gumbel_at`]) instead of a shared stream.
///
/// Exactly one `u64` (the PRF seed) is drawn from `rng`, after which every
/// leaf's noisy score is a pure function of its index. The sweep is
/// range-partitioned into `threads` contiguous chunks of `[0, k^|C|)`
/// (each seeking its start leaf in O(|C|·k), then carrying normally) and the
/// per-range argmaxes are folded in ascending range order with strict-`>`
/// comparison — preserving the serial sweep's earliest-leaf tie-breaking, so
/// the selected combination is **bit-identical for every thread count**
/// (property-tested). Returns the selection and the size of the enumerated
/// space, as [`select_combination_counted`] does.
pub fn select_combination_counter<R: Rng + ?Sized>(
    st: &ScoreTable,
    candidates: &[Vec<usize>],
    weights: Weights,
    eps_top_comb: Epsilon,
    threads: usize,
    rng: &mut R,
) -> Result<(AttributeCombination, u64), DpError> {
    if candidates.is_empty() || candidates.iter().any(Vec::is_empty) {
        return Err(DpError::EmptyCandidateSet);
    }
    let cache = GlScoreCache::build(st, candidates, weights);
    let factor = eps_top_comb.get() / 2.0;
    let ks: Vec<usize> = candidates.iter().map(Vec::len).collect();
    let total = ks
        .iter()
        .try_fold(1u64, |acc, &k| acc.checked_mul(k as u64))
        .expect("combination space exceeds u64");
    let seed: u64 = rng.gen();
    // Per-cluster maxima of the prefix-independent gain bounds and the
    // suffix subtree sizes — the shared inputs of the sweeps' subtree
    // pruning (`subtree[c]` = leaves under a fixed prefix of length `c`).
    let bounds: Vec<f64> = (0..ks.len())
        .map(|c| {
            (0..ks[c])
                .map(|i| cache.gain_upper_bound(c, i, &ks))
                .fold(f64::NEG_INFINITY, f64::max)
        })
        .collect();
    let mut subtree = vec![1u64; ks.len() + 1];
    for c in (0..ks.len()).rev() {
        subtree[c] = subtree[c + 1] * ks[c] as u64;
    }
    let inputs = SweepInputs {
        cache: &cache,
        ks: &ks,
        factor,
        seed,
        bounds: &bounds,
        subtree: &subtree,
    };
    let best = chunked_reduce(
        total as usize,
        threads.max(1),
        |r| sweep_counter_range(&inputs, r.start as u64, r.end as u64),
        |acc, part| {
            if part.val > acc.val {
                *acc = part;
            }
        },
    )
    .expect("combination space is non-empty");
    let sel = best
        .choice
        .iter()
        .enumerate()
        .map(|(c, &i)| candidates[c][i])
        .collect();
    Ok((sel, total))
}

/// Exhaustive non-private argmax over the combination space — the TabEE
/// baseline's Stage-2 and the reference for tests.
pub fn select_combination_exact(
    st: &ScoreTable,
    candidates: &[Vec<usize>],
    weights: Weights,
) -> AttributeCombination {
    assert!(!candidates.is_empty() && candidates.iter().all(|s| !s.is_empty()));
    let cache = GlScoreCache::build(st, candidates, weights);
    let n = candidates.len();
    let mut best_choice = vec![0usize; n];
    let mut best_val = f64::NEG_INFINITY;
    let mut choice = vec![0usize; n];
    loop {
        let score = cache.glscore_cached(&choice);
        if score > best_val {
            best_val = score;
            best_choice.copy_from_slice(&choice);
        }
        // Odometer increment.
        let mut pos = n;
        loop {
            if pos == 0 {
                return best_choice
                    .iter()
                    .enumerate()
                    .map(|(c, &i)| candidates[c][i])
                    .collect();
            }
            pos -= 1;
            choice[pos] += 1;
            if choice[pos] < candidates[pos].len() {
                break;
            }
            choice[pos] = 0;
        }
    }
}

/// Releases the noisy histograms for a selected combination (Algorithm 2,
/// lines 6–15) and assembles the global explanation. Spends exactly
/// `eps_hist`, recorded on `accountant`.
///
/// With `consistency` set, applies the Hay-et-al. partition-consistency
/// projection (free post-processing) whenever a single attribute explains
/// every cluster.
#[allow(clippy::too_many_arguments)] // mirrors Algorithm 2's parameter list
pub fn generate_histograms<M: HistogramMechanism + Sync, R: Rng + ?Sized>(
    schema: &Schema,
    counts: &ClusteredCounts,
    assignment: &AttributeCombination,
    eps_hist: Epsilon,
    mechanism: &M,
    consistency: bool,
    accountant: &mut Accountant,
    rng: &mut R,
) -> Result<GlobalExplanation, DpError> {
    generate_histograms_with(
        schema,
        counts,
        assignment,
        eps_hist,
        mechanism,
        consistency,
        accountant,
        1,
        rng,
    )
}

/// [`generate_histograms`] with explicit worker-thread count — the engine's
/// release stage.
///
/// Noise draws are split from `rng` up front (one seed per full-data
/// histogram in distinct-attribute order, then one per cluster histogram in
/// cluster order), each noisy release runs on its own `StdRng`, and the
/// accountant is charged after the map in the same deterministic order as the
/// sequential loop — so the released histograms and the audit trail are
/// **bit-identical for every `threads` value**.
#[allow(clippy::too_many_arguments)] // mirrors Algorithm 2's parameter list
pub fn generate_histograms_with<M: HistogramMechanism + Sync, R: Rng + ?Sized>(
    schema: &Schema,
    counts: &ClusteredCounts,
    assignment: &AttributeCombination,
    eps_hist: Epsilon,
    mechanism: &M,
    consistency: bool,
    accountant: &mut Accountant,
    threads: usize,
    rng: &mut R,
) -> Result<GlobalExplanation, DpError> {
    let n_clusters = counts.n_clusters();
    assert_eq!(assignment.len(), n_clusters);

    // Line 6: distinct attributes A'.
    let mut distinct: Vec<usize> = assignment.clone();
    distinct.sort_unstable();
    distinct.dedup();

    // Line 7: ε_{hist,all} = ε_Hist/(2|A'|), ε_{hist,cluster} = ε_Hist/2.
    let eps_all = eps_hist.split(2)?.split(distinct.len())?;
    let eps_cluster = eps_hist.split(2)?;

    // Lines 8–10: full-data noisy histograms (sequential composition). Seeds
    // are drawn in distinct-attribute order before the map; charges land in
    // the same order after it.
    let full_tasks: Vec<(usize, u64)> = distinct.iter().map(|&a| (a, rng.gen())).collect();
    let full_noisy: Vec<Vec<f64>> = ordered_parallel_map(full_tasks, threads, |&(a, seed)| {
        let h = counts.table(a).marginal_histogram();
        let mut task_rng = StdRng::seed_from_u64(seed);
        mechanism.privatize(h.counts(), eps_all, &mut task_rng)
    });
    let mut full: Vec<(usize, Vec<f64>)> = Vec::with_capacity(distinct.len());
    for (&a, noisy) in distinct.iter().zip(full_noisy) {
        accountant.charge(
            format!("stage2/hist-full/{}", schema.attribute(a).name),
            eps_all,
        )?;
        full.push((a, noisy));
    }

    // Lines 11–15: per-cluster noisy histograms (parallel composition —
    // in the privacy sense across disjoint clusters, and here also in the
    // wall-clock sense).
    let cluster_tasks: Vec<(usize, usize, u64)> = assignment
        .iter()
        .enumerate()
        .map(|(c, &a)| (c, a, rng.gen()))
        .collect();
    let mut cluster_noisy: Vec<Vec<f64>> =
        ordered_parallel_map(cluster_tasks, threads, |&(c, a, seed)| {
            let h_c = counts.table(a).cluster_histogram(c);
            let mut task_rng = StdRng::seed_from_u64(seed);
            mechanism.privatize(h_c.counts(), eps_cluster, &mut task_rng)
        });
    for c in 0..n_clusters {
        accountant.charge_parallel("stage2/hist-cluster", format!("c{c}"), eps_cluster)?;
    }

    // Optional consistency boost (Hay et al., cited by the paper): when one
    // attribute explains *every* cluster, the clusters partition the data and
    // Σ_c h^c = h_A holds for the true counts; projecting the noisy estimates
    // onto that constraint is free post-processing and reduces MSE.
    if consistency {
        for &a in &distinct {
            if !assignment.iter().all(|&aa| aa == a) {
                continue;
            }
            let mut children = std::mem::take(&mut cluster_noisy);
            let entry = full
                .iter_mut()
                .find(|(fa, _)| *fa == a)
                .expect("attribute is in the distinct set");
            entry.1 = enforce_partition_consistency(&entry.1, &mut children);
            cluster_noisy = children;
        }
    }

    // Clamped subtraction for the out-of-cluster histograms (post-processing).
    let mut hists = Vec::with_capacity(n_clusters);
    for (c, &a) in assignment.iter().enumerate() {
        let full_a = &full
            .iter()
            .find(|(fa, _)| *fa == a)
            .expect("assignment attributes are all in the distinct set")
            .1;
        let rest = subtract_clamped(full_a, &cluster_noisy[c]);
        let cluster: Vec<f64> = cluster_noisy[c].iter().map(|&v| v.max(0.0)).collect();
        hists.push((rest, cluster));
    }
    Ok(GlobalExplanation::from_histograms(
        schema, assignment, hists,
    ))
}

/// Exact (non-private) histograms for a combination — used by TabEE.
pub fn exact_histograms(
    schema: &Schema,
    counts: &ClusteredCounts,
    assignment: &AttributeCombination,
) -> GlobalExplanation {
    let hists = assignment
        .iter()
        .enumerate()
        .map(|(c, &a)| {
            let t = counts.table(a);
            let rest: Vec<f64> = t
                .complement_histogram(c)
                .counts()
                .iter()
                .map(|&x| x as f64)
                .collect();
            let cluster: Vec<f64> = t
                .cluster_histogram(c)
                .counts()
                .iter()
                .map(|&x| x as f64)
                .collect();
            (rest, cluster)
        })
        .collect();
    GlobalExplanation::from_histograms(schema, assignment, hists)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counts::{AttrCounts, ScoreTable};
    use crate::quality::score::glscore;
    use dpx_data::schema::{Attribute, Domain};
    use dpx_data::Dataset;
    use dpx_dp::histogram::GeometricHistogram;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table() -> ScoreTable {
        // Unequal cluster sizes (100 / 200); attributes 0 and 1 carry signal,
        // attribute 2 is flat. NOTE: with exactly two clusters, swapping the
        // two attributes of a combination provably preserves GlScore (the
        // per-cluster Int_p deviations are negatives of each other and the
        // Suf_p cross-sums differ by the constant |D_1| − |D_0|), so tests
        // compare *scores*, not combination identity.
        let a0 = AttrCounts::new(
            vec![vec![90.0, 10.0], vec![80.0, 120.0]],
            vec![170.0, 130.0],
        );
        let a1 = AttrCounts::new(vec![vec![30.0, 70.0], vec![10.0, 190.0]], vec![40.0, 260.0]);
        let a2 = AttrCounts::new(
            vec![vec![50.0, 50.0], vec![100.0, 100.0]],
            vec![150.0, 150.0],
        );
        ScoreTable::new(vec![a0, a1, a2])
    }

    #[test]
    fn exact_selection_maximizes_glscore() {
        let st = table();
        let w = Weights::equal();
        let candidates = vec![vec![0usize, 1, 2], vec![0, 1, 2]];
        let best = select_combination_exact(&st, &candidates, w);
        let best_score = glscore(&st, &best, w);
        for i in 0..3usize {
            for j in 0..3usize {
                assert!(
                    glscore(&st, &[i, j], w) <= best_score + 1e-12,
                    "({i},{j}) beats the reported best"
                );
            }
        }
        assert!(!best.contains(&2), "the flat attribute must lose: {best:?}");
    }

    #[test]
    fn private_selection_matches_exact_at_high_epsilon() {
        let st = table();
        let w = Weights::equal();
        let candidates = vec![vec![0usize, 1, 2], vec![0, 1, 2]];
        let mut r = StdRng::seed_from_u64(5);
        let sel = select_combination(&st, &candidates, w, Epsilon::new(10_000.0).unwrap(), &mut r)
            .unwrap();
        // Tied optima (see table()) make combination identity fragile; the
        // achieved score must match the exact optimum.
        let exact = select_combination_exact(&st, &candidates, w);
        assert!(
            (glscore(&st, &sel, w) - glscore(&st, &exact, w)).abs() < 1e-9,
            "private pick {sel:?} is suboptimal vs {exact:?}"
        );
    }

    #[test]
    fn three_cluster_exact_selection_is_unique_argmax() {
        // With three clusters of distinct sizes the swap symmetry breaks and
        // the argmax is unique: verify identity, not just score.
        let a0 = AttrCounts::new(
            vec![vec![90.0, 10.0], vec![80.0, 120.0], vec![10.0, 40.0]],
            vec![180.0, 170.0],
        );
        let a1 = AttrCounts::new(
            vec![vec![30.0, 70.0], vec![10.0, 190.0], vec![45.0, 5.0]],
            vec![85.0, 265.0],
        );
        let a2 = AttrCounts::new(
            vec![vec![50.0, 50.0], vec![100.0, 100.0], vec![25.0, 25.0]],
            vec![175.0, 175.0],
        );
        let st = ScoreTable::new(vec![a0, a1, a2]);
        let w = Weights::equal();
        let candidates = vec![vec![0usize, 1, 2]; 3];
        let best = select_combination_exact(&st, &candidates, w);
        let best_score = glscore(&st, &best, w);
        let mut strictly_better = 0;
        for i in 0..3usize {
            for j in 0..3usize {
                for l in 0..3usize {
                    let s = glscore(&st, &[i, j, l], w);
                    assert!(s <= best_score + 1e-12);
                    if (s - best_score).abs() < 1e-12 {
                        strictly_better += 1;
                    }
                }
            }
        }
        assert_eq!(strictly_better, 1, "argmax should be unique here");
        let mut r = StdRng::seed_from_u64(11);
        let sel =
            select_combination(&st, &candidates, w, Epsilon::new(1e5).unwrap(), &mut r).unwrap();
        assert_eq!(sel, best);
    }

    #[test]
    fn private_selection_distribution_matches_exponential_mechanism() {
        // Empirically compare the DFS Gumbel-max sampler against the closed
        // form softmax over GlScore.
        let st = table();
        let w = Weights::equal();
        let candidates = vec![vec![0usize, 1], vec![0, 1]];
        let eps = Epsilon::new(0.2).unwrap();
        let cache = GlScoreCache::build(&st, &candidates, w);
        let mut logits = Vec::new();
        for i in 0..2usize {
            for j in 0..2usize {
                logits.push(eps.get() / 2.0 * cache.glscore_cached(&[i, j]));
            }
        }
        let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = logits.iter().map(|&l| (l - max).exp()).collect();
        let z: f64 = exps.iter().sum();
        let probs: Vec<f64> = exps.iter().map(|&e| e / z).collect();

        let n = 40_000;
        let mut hits = [0usize; 4];
        let mut r = StdRng::seed_from_u64(6);
        for _ in 0..n {
            let sel = select_combination(&st, &candidates, w, eps, &mut r).unwrap();
            let idx = sel[0] * 2 + sel[1];
            hits[idx] += 1;
        }
        for (idx, &h) in hits.iter().enumerate() {
            let emp = h as f64 / n as f64;
            assert!(
                (emp - probs[idx]).abs() < 0.015,
                "combo {idx}: empirical {emp} vs softmax {}",
                probs[idx]
            );
        }
    }

    #[test]
    fn dfs_agrees_with_exact_and_draws_one_gumbel_per_combination() {
        // Three clusters × k = 3 candidates ⇒ 27 combinations. At very large
        // ε the Gumbel perturbations cannot overturn the score ordering, so
        // the DFS must reproduce the exhaustive argmax; the leaf counter must
        // show the full k^|C| enumeration.
        let a0 = AttrCounts::new(
            vec![vec![90.0, 10.0], vec![80.0, 120.0], vec![10.0, 40.0]],
            vec![180.0, 170.0],
        );
        let a1 = AttrCounts::new(
            vec![vec![30.0, 70.0], vec![10.0, 190.0], vec![45.0, 5.0]],
            vec![85.0, 265.0],
        );
        let a2 = AttrCounts::new(
            vec![vec![50.0, 50.0], vec![100.0, 100.0], vec![25.0, 25.0]],
            vec![175.0, 175.0],
        );
        let st = ScoreTable::new(vec![a0, a1, a2]);
        let w = Weights::equal();
        let candidates = vec![vec![0usize, 1, 2]; 3];
        let mut r = StdRng::seed_from_u64(21);
        let (sel, leaves) =
            select_combination_counted(&st, &candidates, w, Epsilon::new(1e7).unwrap(), &mut r)
                .unwrap();
        assert_eq!(sel, select_combination_exact(&st, &candidates, w));
        assert_eq!(leaves, 27, "DFS must visit all k^|C| = 3^3 combinations");
    }

    #[test]
    fn dfs_rng_consumption_is_exactly_one_gumbel_per_leaf() {
        // Twin RNGs from one seed: run the DFS on one, draw the claimed
        // number of Gumbels from the other by hand. If the streams still
        // agree afterwards, the DFS consumed *exactly* `leaves` Gumbel draws —
        // no combination was silently skipped, none double-sampled.
        let st = table();
        let w = Weights::equal();
        let candidates = vec![vec![0usize, 1, 2], vec![0, 1, 2]];
        let mut dfs_rng = StdRng::seed_from_u64(22);
        let mut twin = StdRng::seed_from_u64(22);
        let (_, leaves) = select_combination_counted(
            &st,
            &candidates,
            w,
            Epsilon::new(0.7).unwrap(),
            &mut dfs_rng,
        )
        .unwrap();
        assert_eq!(leaves, 9, "k^|C| = 3^2");
        for _ in 0..leaves {
            let _ = sample_gumbel(1.0, &mut twin);
        }
        assert_eq!(
            dfs_rng.gen::<u64>(),
            twin.gen::<u64>(),
            "RNG streams diverged: DFS draw count differs from its leaf count"
        );
    }

    /// Twin-RNG equivalence: the iterative enumerator and the recursive DFS
    /// reference, run from identically seeded RNGs, must visit the same
    /// number of leaves, pick the same combination, and leave their RNGs in
    /// the same state (⇒ they drew the identical Gumbel stream).
    #[test]
    fn iterative_enumerator_matches_recursive_dfs_stream() {
        let st = table();
        let w = Weights::equal();
        // Ragged candidate sets (different k per cluster) and ε spanning the
        // noise-dominated regime, so argmax agreement is a real check.
        let cases: Vec<Vec<Vec<usize>>> = vec![
            vec![vec![0, 1, 2], vec![0, 1, 2]],
            vec![vec![0, 1], vec![2, 0, 1]],
            vec![vec![2, 0], vec![1]],
        ];
        for candidates in &cases {
            let expect_leaves: u64 = candidates.iter().map(|s| s.len() as u64).product();
            for seed in [1u64, 5, 9, 13, 2025] {
                for eps in [0.3, 5.0, 1e6] {
                    let eps = Epsilon::new(eps).unwrap();
                    let mut it_rng = StdRng::seed_from_u64(seed);
                    let mut rec_rng = StdRng::seed_from_u64(seed);
                    let (it_sel, it_leaves) =
                        select_combination_counted(&st, candidates, w, eps, &mut it_rng).unwrap();
                    let (rec_sel, rec_leaves) =
                        select_combination_counted_recursive(&st, candidates, w, eps, &mut rec_rng)
                            .unwrap();
                    assert_eq!(it_leaves, expect_leaves, "iterative leaf count");
                    assert_eq!(rec_leaves, expect_leaves, "recursive leaf count");
                    assert_eq!(it_sel, rec_sel, "argmax diverged at seed {seed}");
                    assert_eq!(
                        it_rng.gen::<u64>(),
                        rec_rng.gen::<u64>(),
                        "RNG streams diverged at seed {seed}: different Gumbel draws"
                    );
                }
            }
        }
    }

    /// Three-cluster twin-RNG check (`k^|C|` = 27 leaves) — exercises
    /// multi-level odometer carries and gain-slice refreshes.
    #[test]
    fn iterative_enumerator_matches_recursive_dfs_three_clusters() {
        let a0 = AttrCounts::new(
            vec![vec![90.0, 10.0], vec![80.0, 120.0], vec![10.0, 40.0]],
            vec![180.0, 170.0],
        );
        let a1 = AttrCounts::new(
            vec![vec![30.0, 70.0], vec![10.0, 190.0], vec![45.0, 5.0]],
            vec![85.0, 265.0],
        );
        let a2 = AttrCounts::new(
            vec![vec![50.0, 50.0], vec![100.0, 100.0], vec![25.0, 25.0]],
            vec![175.0, 175.0],
        );
        let st = ScoreTable::new(vec![a0, a1, a2]);
        let w = Weights::equal();
        let candidates = vec![vec![0usize, 1, 2]; 3];
        for seed in [3u64, 21, 77] {
            let eps = Epsilon::new(0.8).unwrap();
            let mut it_rng = StdRng::seed_from_u64(seed);
            let mut rec_rng = StdRng::seed_from_u64(seed);
            let (it_sel, it_leaves) =
                select_combination_counted(&st, &candidates, w, eps, &mut it_rng).unwrap();
            let (rec_sel, rec_leaves) =
                select_combination_counted_recursive(&st, &candidates, w, eps, &mut rec_rng)
                    .unwrap();
            assert_eq!(it_leaves, 27);
            assert_eq!(rec_leaves, 27);
            assert_eq!(it_sel, rec_sel, "seed {seed}");
            assert_eq!(it_rng.gen::<u64>(), rec_rng.gen::<u64>(), "seed {seed}");
        }
    }

    #[test]
    fn empty_candidate_sets_rejected() {
        let st = table();
        let mut r = StdRng::seed_from_u64(7);
        assert!(select_combination(
            &st,
            &[vec![0], vec![]],
            Weights::equal(),
            Epsilon::new(1.0).unwrap(),
            &mut r
        )
        .is_err());
        let mut r2 = StdRng::seed_from_u64(7);
        assert!(select_combination_counter(
            &st,
            &[vec![0], vec![]],
            Weights::equal(),
            Epsilon::new(1.0).unwrap(),
            2,
            &mut r2
        )
        .is_err());
    }

    fn three_cluster_table() -> ScoreTable {
        let a0 = AttrCounts::new(
            vec![vec![90.0, 10.0], vec![80.0, 120.0], vec![10.0, 40.0]],
            vec![180.0, 170.0],
        );
        let a1 = AttrCounts::new(
            vec![vec![30.0, 70.0], vec![10.0, 190.0], vec![45.0, 5.0]],
            vec![85.0, 265.0],
        );
        let a2 = AttrCounts::new(
            vec![vec![50.0, 50.0], vec![100.0, 100.0], vec![25.0, 25.0]],
            vec![175.0, 175.0],
        );
        ScoreTable::new(vec![a0, a1, a2])
    }

    /// Satellite: `CounterParallel` must be bit-identical to `CounterSerial`
    /// for every thread count — including thread counts exceeding the leaf
    /// count, candidate sets with single-candidate levels, and the degenerate
    /// 1-leaf space.
    #[test]
    fn counter_parallel_bit_identical_to_serial_across_thread_counts() {
        let two = table();
        let three = three_cluster_table();
        let cases: Vec<(&ScoreTable, Vec<Vec<usize>>)> = vec![
            (&three, vec![vec![0, 1, 2]; 3]),
            (&two, vec![vec![0, 1], vec![2, 0, 1]]),
            (&two, vec![vec![2, 0], vec![1]]), // single-candidate level
            (&two, vec![vec![1], vec![0]]),    // 1-leaf space
            (&three, vec![vec![2]; 3]),        // 1-leaf, three levels
        ];
        let w = Weights::equal();
        for (st, candidates) in &cases {
            let leaves: usize = candidates.iter().map(Vec::len).product();
            for eps in [0.3, 5.0, 1e6] {
                let eps = Epsilon::new(eps).unwrap();
                for seed in [1u64, 17, 2026] {
                    let mut serial_rng = StdRng::seed_from_u64(seed);
                    let (serial_sel, serial_leaves) =
                        select_combination_counter(st, candidates, w, eps, 1, &mut serial_rng)
                            .unwrap();
                    assert_eq!(serial_leaves, leaves as u64);
                    for threads in [2usize, 7, leaves + 3] {
                        let mut par_rng = StdRng::seed_from_u64(seed);
                        let (par_sel, par_leaves) = select_combination_counter(
                            st,
                            candidates,
                            w,
                            eps,
                            threads,
                            &mut par_rng,
                        )
                        .unwrap();
                        assert_eq!(
                            par_sel, serial_sel,
                            "threads={threads} seed={seed} diverged from serial"
                        );
                        assert_eq!(par_leaves, serial_leaves);
                        assert_eq!(
                            par_rng.gen::<u64>(),
                            serial_rng.clone().gen::<u64>(),
                            "kernels must consume identical RNG draws"
                        );
                    }
                }
            }
        }
    }

    /// Satellite: `Odometer::seek(i)` must reproduce — bit for bit — the
    /// state (choice vector, gain slices, prefix sums) the serial sweep
    /// reaches at leaf `i` by carrying from leaf 0, for random indices.
    #[test]
    fn odometer_seek_reproduces_serial_sweep_state() {
        let st = three_cluster_table();
        let w = Weights::equal();
        let candidates = vec![vec![0usize, 1], vec![0, 1, 2], vec![2, 0]];
        let cache = GlScoreCache::build(&st, &candidates, w);
        let ks: Vec<usize> = candidates.iter().map(Vec::len).collect();
        let total: u64 = ks.iter().map(|&k| k as u64).product();
        let k_last = *ks.last().unwrap() as u64;

        // Reference: walk every slice serially, recording the state at each
        // slice start.
        type OdometerState = (Vec<usize>, Vec<Vec<f64>>, Vec<f64>);
        let mut serial = Odometer::seek(&cache, &ks, 0);
        let mut states: Vec<OdometerState> = Vec::new();
        loop {
            states.push((
                serial.choice.clone(),
                serial.gains.clone(),
                serial.prefix_sum.clone(),
            ));
            if !serial.carry() {
                break;
            }
        }
        assert_eq!(states.len() as u64, total / k_last);

        let mut r = StdRng::seed_from_u64(404);
        for _ in 0..50 {
            let leaf = r.gen_range(0..total);
            let seeked = Odometer::seek(&cache, &ks, leaf);
            let (ref choice, ref gains, ref prefix) = states[(leaf / k_last) as usize];
            assert_eq!(
                &seeked.choice[..ks.len() - 1],
                &choice[..ks.len() - 1],
                "prefix digits at leaf {leaf}"
            );
            assert_eq!(
                seeked.choice[ks.len() - 1] as u64,
                leaf % k_last,
                "last digit at leaf {leaf}"
            );
            for (c, (sg, rg)) in seeked.gains.iter().zip(gains).enumerate() {
                for (i, (a, b)) in sg.iter().zip(rg).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "gains[{c}][{i}] differ at leaf {leaf}"
                    );
                }
            }
            for (c, (a, b)) in seeked.prefix_sum.iter().zip(prefix).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "prefix_sum[{c}] differs at leaf {leaf}"
                );
            }
        }
    }

    /// Satellite: the counter-based sampler realizes the exponential-
    /// mechanism distribution — same harness as the streaming kernel's
    /// distribution test, compared against the closed-form softmax.
    #[test]
    fn counter_kernel_distribution_matches_exponential_mechanism() {
        let st = table();
        let w = Weights::equal();
        let candidates = vec![vec![0usize, 1], vec![0, 1]];
        let eps = Epsilon::new(0.2).unwrap();
        let cache = GlScoreCache::build(&st, &candidates, w);
        let mut logits = Vec::new();
        for i in 0..2usize {
            for j in 0..2usize {
                logits.push(eps.get() / 2.0 * cache.glscore_cached(&[i, j]));
            }
        }
        let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = logits.iter().map(|&l| (l - max).exp()).collect();
        let z: f64 = exps.iter().sum();
        let probs: Vec<f64> = exps.iter().map(|&e| e / z).collect();

        for kernel in [
            Stage2Kernel::CounterSerial,
            Stage2Kernel::CounterParallel(3),
        ] {
            let n = 40_000;
            let mut hits = [0usize; 4];
            let mut r = StdRng::seed_from_u64(6);
            for _ in 0..n {
                let (sel, _) =
                    select_combination_with_kernel(&st, &candidates, w, eps, kernel, &mut r)
                        .unwrap();
                hits[sel[0] * 2 + sel[1]] += 1;
            }
            for (idx, &h) in hits.iter().enumerate() {
                let emp = h as f64 / n as f64;
                assert!(
                    (emp - probs[idx]).abs() < 0.015,
                    "{}: combo {idx}: empirical {emp} vs softmax {}",
                    kernel.label(),
                    probs[idx]
                );
            }
        }
    }

    /// At overwhelming ε the pruned counter sweep must still find the exact
    /// argmax — this exercises the branch-and-bound skip path hard (nearly
    /// every slice is skipped once the optimum has been seen).
    #[test]
    fn counter_kernel_matches_exact_at_high_epsilon() {
        let st = three_cluster_table();
        let w = Weights::equal();
        let candidates = vec![vec![0usize, 1, 2]; 3];
        let exact = select_combination_exact(&st, &candidates, w);
        for threads in [1usize, 4] {
            let mut r = StdRng::seed_from_u64(33);
            let (sel, leaves) = select_combination_counter(
                &st,
                &candidates,
                w,
                Epsilon::new(1e7).unwrap(),
                threads,
                &mut r,
            )
            .unwrap();
            assert_eq!(sel, exact, "threads={threads}");
            assert_eq!(leaves, 27);
        }
    }

    #[test]
    fn counter_kernels_consume_exactly_one_seed_draw() {
        let st = table();
        let w = Weights::equal();
        let candidates = vec![vec![0usize, 1, 2], vec![0, 1, 2]];
        for threads in [1usize, 4] {
            let mut kernel_rng = StdRng::seed_from_u64(91);
            let mut twin = StdRng::seed_from_u64(91);
            select_combination_counter(
                &st,
                &candidates,
                w,
                Epsilon::new(0.5).unwrap(),
                threads,
                &mut kernel_rng,
            )
            .unwrap();
            let _ = twin.gen::<u64>(); // the PRF seed
            assert_eq!(
                kernel_rng.gen::<u64>(),
                twin.gen::<u64>(),
                "counter kernel must consume exactly one u64 (threads={threads})"
            );
        }
    }

    #[test]
    fn kernel_dispatch_sequential_matches_streaming_reference() {
        let st = table();
        let w = Weights::equal();
        let candidates = vec![vec![0usize, 1, 2], vec![0, 1, 2]];
        let eps = Epsilon::new(0.7).unwrap();
        let mut a = StdRng::seed_from_u64(55);
        let mut b = StdRng::seed_from_u64(55);
        let via_kernel = select_combination_with_kernel(
            &st,
            &candidates,
            w,
            eps,
            Stage2Kernel::SequentialRng,
            &mut a,
        )
        .unwrap();
        let direct = select_combination_counted(&st, &candidates, w, eps, &mut b).unwrap();
        assert_eq!(via_kernel, direct);
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn stage2_kernel_parse_and_label_round_trip() {
        assert_eq!(
            Stage2Kernel::parse("seq").unwrap(),
            Stage2Kernel::SequentialRng
        );
        assert_eq!(
            Stage2Kernel::parse("sequential-rng").unwrap(),
            Stage2Kernel::SequentialRng
        );
        assert_eq!(
            Stage2Kernel::parse("counter").unwrap(),
            Stage2Kernel::CounterSerial
        );
        assert_eq!(
            Stage2Kernel::parse("counter-par").unwrap(),
            Stage2Kernel::CounterParallel(0)
        );
        assert_eq!(
            Stage2Kernel::parse("counter-par/4").unwrap(),
            Stage2Kernel::CounterParallel(4)
        );
        assert_eq!(
            Stage2Kernel::parse("counter-parallel/2").unwrap(),
            Stage2Kernel::CounterParallel(2)
        );
        for bad in ["", "gumbel", "seq/2", "counter-par/0", "counter-par/x"] {
            assert!(Stage2Kernel::parse(bad).is_err(), "{bad:?} should fail");
        }
        assert_eq!(Stage2Kernel::SequentialRng.label(), "sequential-rng");
        assert_eq!(Stage2Kernel::CounterSerial.label(), "counter-serial");
        assert_eq!(
            Stage2Kernel::CounterParallel(4).label(),
            "counter-parallel/4"
        );
        assert_eq!(
            Stage2Kernel::CounterParallel(0).label(),
            "counter-parallel/auto"
        );
    }

    fn small_dataset() -> (Dataset, Vec<usize>) {
        let schema = Schema::new(vec![
            Attribute::new("x", Domain::indexed(2)).unwrap(),
            Attribute::new("y", Domain::indexed(3)).unwrap(),
        ])
        .unwrap();
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..300 {
            if i % 2 == 0 {
                rows.push(vec![0, (i % 3) as u32]);
                labels.push(0);
            } else {
                rows.push(vec![1, 2]);
                labels.push(1);
            }
        }
        (Dataset::from_rows(schema, &rows).unwrap(), labels)
    }

    #[test]
    fn histogram_stage_spends_exactly_eps_hist() {
        let (data, labels) = small_dataset();
        let counts = ClusteredCounts::build(&data, &labels, 2);
        let mut acc = Accountant::new();
        let mut r = StdRng::seed_from_u64(8);
        let eps = Epsilon::new(0.4).unwrap();
        let expl = generate_histograms(
            data.schema(),
            &counts,
            &vec![0, 1],
            eps,
            &GeometricHistogram,
            false,
            &mut acc,
            &mut r,
        )
        .unwrap();
        assert_eq!(expl.per_cluster.len(), 2);
        // |A'| = 2 distinct attributes: 2 × ε/4 sequential + ε/2 parallel = ε.
        assert!(
            (acc.spent() - 0.4).abs() < 1e-9,
            "spent {} != 0.4",
            acc.spent()
        );
    }

    #[test]
    fn histogram_stage_repeated_attribute_shares_full_histogram() {
        let (data, labels) = small_dataset();
        let counts = ClusteredCounts::build(&data, &labels, 2);
        let mut acc = Accountant::new();
        let mut r = StdRng::seed_from_u64(9);
        let eps = Epsilon::new(0.4).unwrap();
        generate_histograms(
            data.schema(),
            &counts,
            &vec![0, 0],
            eps,
            &GeometricHistogram,
            false,
            &mut acc,
            &mut r,
        )
        .unwrap();
        // |A'| = 1: full histogram at ε/2 once + cluster histograms ε/2 = ε.
        assert!((acc.spent() - 0.4).abs() < 1e-9, "spent {}", acc.spent());
        assert_eq!(acc.sequential_charges().count(), 1);
    }

    #[test]
    fn parallel_histogram_release_is_bit_identical_to_sequential() {
        let (data, labels) = small_dataset();
        let counts = ClusteredCounts::build(&data, &labels, 2);
        let eps = Epsilon::new(0.4).unwrap();
        let release = |threads: usize, seed: u64| {
            let mut acc = Accountant::new();
            let mut r = StdRng::seed_from_u64(seed);
            let expl = generate_histograms_with(
                data.schema(),
                &counts,
                &vec![0, 1],
                eps,
                &GeometricHistogram,
                false,
                &mut acc,
                threads,
                &mut r,
            )
            .unwrap();
            (expl, acc.spent())
        };
        for seed in [8, 81, 82] {
            let (seq, seq_spent) = release(1, seed);
            for threads in [2, 4, 8] {
                let (par, par_spent) = release(threads, seed);
                assert_eq!(par_spent, seq_spent);
                for (p, s) in par.per_cluster.iter().zip(&seq.per_cluster) {
                    assert_eq!(p.attribute, s.attribute);
                    assert_eq!(p.hist_cluster, s.hist_cluster, "threads {threads}");
                    assert_eq!(p.hist_rest, s.hist_rest, "threads {threads}");
                }
            }
        }
    }

    #[test]
    fn noisy_histograms_are_near_exact_at_high_epsilon() {
        let (data, labels) = small_dataset();
        let counts = ClusteredCounts::build(&data, &labels, 2);
        let mut acc = Accountant::new();
        let mut r = StdRng::seed_from_u64(10);
        let noisy = generate_histograms(
            data.schema(),
            &counts,
            &vec![0, 1],
            Epsilon::new(1000.0).unwrap(),
            &GeometricHistogram,
            false,
            &mut acc,
            &mut r,
        )
        .unwrap();
        let exact = exact_histograms(data.schema(), &counts, &vec![0, 1]);
        for (n, e) in noisy.per_cluster.iter().zip(&exact.per_cluster) {
            for (a, b) in n.hist_cluster.iter().zip(&e.hist_cluster) {
                assert!((a - b).abs() <= 2.0, "cluster bin {a} vs exact {b}");
            }
            for (a, b) in n.hist_rest.iter().zip(&e.hist_rest) {
                assert!((a - b).abs() <= 4.0, "rest bin {a} vs exact {b}");
            }
        }
    }

    #[test]
    fn consistency_projection_makes_cluster_sums_match_full() {
        let (data, labels) = small_dataset();
        let counts = ClusteredCounts::build(&data, &labels, 2);
        let mut acc = Accountant::new();
        let mut r = StdRng::seed_from_u64(12);
        // Both clusters explained by the same attribute → projection applies.
        let expl = generate_histograms(
            data.schema(),
            &counts,
            &vec![0, 0],
            Epsilon::new(0.5).unwrap(),
            &GeometricHistogram,
            true,
            &mut acc,
            &mut r,
        )
        .unwrap();
        // After the projection, rest + cluster reconstructs the adjusted full
        // histogram for every cluster, and both clusters agree on it (before
        // non-negativity clamping the identity is exact; with these counts no
        // clamping triggers at ε = 0.5 almost surely — assert with slack).
        for e in &expl.per_cluster {
            let recon: Vec<f64> = e
                .hist_rest
                .iter()
                .zip(&e.hist_cluster)
                .map(|(&a, &b)| a + b)
                .collect();
            let other = &expl.per_cluster[1 - e.cluster];
            let recon2: Vec<f64> = other
                .hist_rest
                .iter()
                .zip(&other.hist_cluster)
                .map(|(&a, &b)| a + b)
                .collect();
            for (x, y) in recon.iter().zip(&recon2) {
                assert!(
                    (x - y).abs() < 1e-6,
                    "full-histogram views disagree: {x} vs {y}"
                );
            }
        }
        // Budget unchanged by post-processing.
        assert!((acc.spent() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn consistency_reduces_error_on_shared_attribute() {
        let (data, labels) = small_dataset();
        let counts = ClusteredCounts::build(&data, &labels, 2);
        let exact = exact_histograms(data.schema(), &counts, &vec![0, 0]);
        let error_of = |consistency: bool, seed: u64| -> f64 {
            let mut acc = Accountant::new();
            let mut r = StdRng::seed_from_u64(seed);
            let expl = generate_histograms(
                data.schema(),
                &counts,
                &vec![0, 0],
                Epsilon::new(0.3).unwrap(),
                &GeometricHistogram,
                consistency,
                &mut acc,
                &mut r,
            )
            .unwrap();
            expl.per_cluster
                .iter()
                .zip(&exact.per_cluster)
                .map(|(n, e)| {
                    n.hist_cluster
                        .iter()
                        .zip(&e.hist_cluster)
                        .map(|(&a, &b)| (a - b).powi(2))
                        .sum::<f64>()
                })
                .sum()
        };
        let runs = 300;
        let raw: f64 = (0..runs).map(|s| error_of(false, s)).sum();
        let adj: f64 = (0..runs).map(|s| error_of(true, s)).sum();
        assert!(
            adj < raw,
            "consistency should not hurt cluster-histogram MSE: {adj} vs {raw}"
        );
    }

    #[test]
    fn exact_histograms_match_contingency() {
        let (data, labels) = small_dataset();
        let counts = ClusteredCounts::build(&data, &labels, 2);
        let expl = exact_histograms(data.schema(), &counts, &vec![0, 0]);
        // Cluster 0 is all x=0 (150 tuples), rest all x=1.
        assert_eq!(expl.per_cluster[0].hist_cluster, vec![150.0, 0.0]);
        assert_eq!(expl.per_cluster[0].hist_rest, vec![0.0, 150.0]);
    }
}
