//! Textual descriptions of histogram explanations.
//!
//! The paper attaches an LLM-generated sentence to each histogram (Figure 3b:
//! "Values outside Cluster 1 are concentrated in the lower and mid-range (85%
//! below 50), while Cluster 1 contains mainly higher values (95% above 50)").
//! Per the substitution policy we generate the same kind of statement
//! deterministically: find the split of the (ordered) domain that maximizes
//! the mass contrast between the cluster and the rest, and report both sides.

use crate::explanation::SingleClusterExplanation;

/// A summary of where each distribution concentrates.
#[derive(Debug, Clone, PartialEq)]
pub struct ContrastSummary {
    /// Index of the first bin of the "upper" side of the best split.
    pub split_bin: usize,
    /// Label of the split boundary bin.
    pub split_label: String,
    /// Fraction of the rest-of-data mass strictly below the split.
    pub rest_below: f64,
    /// Fraction of the cluster mass at or above the split.
    pub cluster_above: f64,
}

/// Finds the domain split maximizing `rest_below + cluster_above` — the
/// sharpest "cluster sits on the other side" statement the histogram
/// supports. Returns `None` for histograms with fewer than two bins or with
/// no mass on either side.
pub fn best_contrast(e: &SingleClusterExplanation) -> Option<ContrastSummary> {
    let pc = e.cluster_proportions();
    let pr = e.rest_proportions();
    let n = pc.len();
    if n < 2 || pc.iter().sum::<f64>() <= 0.0 || pr.iter().sum::<f64>() <= 0.0 {
        return None;
    }
    let mut best: Option<ContrastSummary> = None;
    let mut rest_below = 0.0;
    let mut cluster_below = 0.0;
    for split in 1..n {
        rest_below += pr[split - 1];
        cluster_below += pc[split - 1];
        let cluster_above = 1.0 - cluster_below;
        let score = rest_below + cluster_above;
        let mirror = (1.0 - rest_below) + cluster_below;
        // Consider the split in both directions; keep the orientation with
        // the larger contrast (cluster high vs cluster low).
        let (rb, ca, s) = if score >= mirror {
            (rest_below, cluster_above, score)
        } else {
            (1.0 - rest_below, cluster_below, mirror)
        };
        let candidate = ContrastSummary {
            split_bin: split,
            split_label: e.bin_labels[split].clone(),
            rest_below: rb,
            cluster_above: ca,
        };
        if best
            .as_ref()
            .is_none_or(|b| s > b.rest_below + b.cluster_above)
        {
            best = Some(candidate);
        }
    }
    best
}

/// Renders the Figure-3b style sentence for one single-cluster explanation.
pub fn describe(e: &SingleClusterExplanation) -> String {
    match best_contrast(e) {
        Some(c) if c.rest_below + c.cluster_above > 1.2 => {
            format!(
                "The `{}` column values differ significantly. Values outside Cluster {} are \
                 concentrated below {} ({:.0}% of them), while Cluster {} concentrates on the \
                 other side ({:.0}% at or above {}).",
                e.attribute_name,
                e.cluster,
                c.split_label,
                c.rest_below * 100.0,
                e.cluster,
                c.cluster_above * 100.0,
                c.split_label,
            )
        }
        _ => {
            // No sharp split: report the modal values instead.
            let argmax = |h: &[f64]| {
                h.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            };
            let pc = e.cluster_proportions();
            let pr = e.rest_proportions();
            let mc = argmax(&pc);
            let mr = argmax(&pr);
            format!(
                "In `{}`, Cluster {} peaks at {} ({:.0}%) while the remaining data peaks at \
                 {} ({:.0}%).",
                e.attribute_name,
                e.cluster,
                e.bin_labels[mc],
                pc[mc] * 100.0,
                e.bin_labels[mr],
                pr[mr] * 100.0,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn explanation(cluster_hist: Vec<f64>, rest_hist: Vec<f64>) -> SingleClusterExplanation {
        let n = cluster_hist.len();
        SingleClusterExplanation {
            cluster: 1,
            attribute: 0,
            attribute_name: "lab_proc".into(),
            bin_labels: (0..n)
                .map(|i| format!("[{},{})", i * 10, (i + 1) * 10))
                .collect(),
            hist_rest: rest_hist,
            hist_cluster: cluster_hist,
        }
    }

    #[test]
    fn paper_example_shape_produces_high_contrast() {
        // Rest concentrated low, cluster concentrated high (Fig. 3 shape).
        let e = explanation(
            vec![0.0, 0.0, 1.0, 4.0, 20.0, 30.0, 25.0, 10.0],
            vec![10.0, 25.0, 30.0, 20.0, 10.0, 4.0, 1.0, 0.0],
        );
        let c = best_contrast(&e).unwrap();
        assert!(c.rest_below > 0.8, "rest below {}", c.rest_below);
        assert!(c.cluster_above > 0.9, "cluster above {}", c.cluster_above);
        let text = describe(&e);
        assert!(text.contains("lab_proc"));
        assert!(text.contains("differ significantly"));
        assert!(text.contains("Cluster 1"));
    }

    #[test]
    fn reversed_orientation_also_detected() {
        // Cluster low, rest high.
        let e = explanation(vec![30.0, 20.0, 2.0, 0.0], vec![1.0, 2.0, 20.0, 40.0]);
        let c = best_contrast(&e).unwrap();
        assert!(c.rest_below + c.cluster_above > 1.7);
    }

    #[test]
    fn flat_distributions_fall_back_to_modes() {
        let e = explanation(vec![10.0, 11.0, 10.0], vec![10.0, 10.0, 11.0]);
        let text = describe(&e);
        assert!(text.contains("peaks at"));
    }

    #[test]
    fn degenerate_histograms_are_safe() {
        let e = explanation(vec![0.0, 0.0], vec![0.0, 0.0]);
        assert!(best_contrast(&e).is_none());
        let _ = describe(&e); // must not panic
        let single = SingleClusterExplanation {
            cluster: 0,
            attribute: 0,
            attribute_name: "x".into(),
            bin_labels: vec!["only".into()],
            hist_rest: vec![5.0],
            hist_cluster: vec![3.0],
        };
        assert!(best_contrast(&single).is_none());
    }
}
