//! Evaluation measures (§6.1, "Evaluation measures").
//!
//! The paper evaluates all explainers with the **original, sensitive** quality
//! functions — `Quality = λ_Int·Int + λ_Suf·Suf + λ_Div·Div` over normalized
//! `[0, 1]` measures — and with a discrete **MAE** against the non-private
//! TabEE combination. Sensitive functions are fine here because evaluation is
//! offline analysis of the *selected attributes*, not a released quantity.

use crate::counts::ScoreTable;
use crate::quality::diversity::perm_diversity;
use crate::quality::interestingness::sensitive_tvd;
use crate::quality::score::Weights;
use crate::quality::sufficiency::suf_p;
use std::cell::RefCell;
use std::collections::HashMap;

/// The sensitive global `Quality` of an attribute combination: the paper's
/// evaluation score with all three measures normalized into `[0, 1]`.
pub fn quality(st: &ScoreTable, assignment: &[usize], w: Weights) -> f64 {
    QualityEvaluator::new(st, w).quality(assignment)
}

/// Discrete mean absolute error between a combination and the non-private
/// reference: the fraction of clusters whose attribute differs (§6.1).
///
/// # Panics
/// Panics if lengths differ or either is empty.
pub fn mae(assignment: &[usize], reference: &[usize]) -> f64 {
    assert_eq!(
        assignment.len(),
        reference.len(),
        "combinations must cover the same clusters"
    );
    assert!(!assignment.is_empty(), "empty combination");
    assignment
        .iter()
        .zip(reference)
        .filter(|(a, b)| a != b)
        .count() as f64
        / assignment.len() as f64
}

/// A reusable evaluator of the sensitive `Quality` score.
///
/// Precomputes per-(attribute, cluster) interestingness and sufficiency, and
/// memoizes the permutation diversity of every (attribute, cluster-group)
/// seen — making exhaustive `k^|C|` enumerations (TabEE / DP-TabEE Stage-2)
/// tractable, since the same small groups recur across combinations.
pub struct QualityEvaluator<'a> {
    st: &'a ScoreTable,
    w: Weights,
    /// `int[a][c]` = sensitive TVD interestingness.
    int: Vec<Vec<f64>>,
    /// `suf[a][c]` = `Suf_p` (summed into the global sensitive `Suf` later).
    suf: Vec<Vec<f64>>,
    /// Memoized permutation diversity keyed by `(attribute, cluster bitmask)`.
    div_memo: RefCell<HashMap<(usize, u64), f64>>,
}

impl<'a> QualityEvaluator<'a> {
    /// Builds the evaluator, precomputing single-cluster measures.
    ///
    /// # Panics
    /// Panics if there are more than 64 clusters (bitmask memo keys).
    pub fn new(st: &'a ScoreTable, w: Weights) -> Self {
        assert!(st.n_clusters() <= 64, "at most 64 clusters supported");
        let n_attrs = st.n_attributes();
        let n_clusters = st.n_clusters();
        let mut int = vec![vec![0.0; n_clusters]; n_attrs];
        let mut suf = vec![vec![0.0; n_clusters]; n_attrs];
        for a in 0..n_attrs {
            let t = st.attr(a);
            for c in 0..n_clusters {
                int[a][c] = sensitive_tvd(t, c);
                suf[a][c] = suf_p(t, c);
            }
        }
        QualityEvaluator {
            st,
            w,
            int,
            suf,
            div_memo: RefCell::new(HashMap::new()),
        }
    }

    /// Sensitive global interestingness: average TVD over clusters.
    pub fn int_global(&self, assignment: &[usize]) -> f64 {
        let n = assignment.len() as f64;
        assignment
            .iter()
            .enumerate()
            .map(|(c, &a)| self.int[a][c])
            .sum::<f64>()
            / n
    }

    /// Sensitive global sufficiency: `(1/|D|) Σ_c Suf_p(c, AC(c))`
    /// (Proposition 4.4.1 identity).
    pub fn suf_global(&self, assignment: &[usize]) -> f64 {
        let total = self.st.attr(assignment[0]).total();
        if total <= 0.0 {
            return 0.0;
        }
        assignment
            .iter()
            .enumerate()
            .map(|(c, &a)| self.suf[a][c])
            .sum::<f64>()
            / total
    }

    /// Sensitive global diversity, normalized by `|C|`, with memoized
    /// per-group permutation averages.
    pub fn div_global(&self, assignment: &[usize]) -> f64 {
        let n = assignment.len();
        if n == 0 {
            return 0.0;
        }
        let mut groups: Vec<(usize, u64, Vec<usize>)> = Vec::new();
        for (c, &a) in assignment.iter().enumerate() {
            if let Some(e) = groups.iter_mut().find(|(attr, _, _)| *attr == a) {
                e.1 |= 1u64 << c;
                e.2.push(c);
            } else {
                groups.push((a, 1u64 << c, vec![c]));
            }
        }
        let mut total = 0.0;
        for (a, mask, group) in groups {
            let mut memo = self.div_memo.borrow_mut();
            let v = *memo
                .entry((a, mask))
                .or_insert_with(|| perm_diversity(self.st.attr(a), &group));
            total += v;
        }
        total / n as f64
    }

    /// The combined sensitive `Quality` score.
    pub fn quality(&self, assignment: &[usize]) -> f64 {
        assert_eq!(assignment.len(), self.st.n_clusters());
        self.w.int * self.int_global(assignment)
            + self.w.suf * self.suf_global(assignment)
            + self.w.div * self.div_global(assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counts::AttrCounts;

    fn table() -> ScoreTable {
        // Attribute 0 separates both clusters perfectly; attribute 1 is flat.
        let a0 = AttrCounts::new(vec![vec![40.0, 0.0], vec![0.0, 60.0]], vec![40.0, 60.0]);
        let a1 = AttrCounts::new(vec![vec![20.0, 20.0], vec![30.0, 30.0]], vec![50.0, 50.0]);
        ScoreTable::new(vec![a0, a1])
    }

    #[test]
    fn quality_is_in_unit_interval_and_orders_sensibly() {
        let st = table();
        let w = Weights::equal();
        let good = quality(&st, &[0, 0], w);
        let bad = quality(&st, &[1, 1], w);
        assert!((0.0..=1.0).contains(&good), "good = {good}");
        assert!((0.0..=1.0).contains(&bad));
        assert!(good > bad);
    }

    #[test]
    fn perfect_separation_scores_one() {
        // Attribute 0 fully separates: Int = TVD = (0.6, 0.4 avg)?  Compute:
        // cluster 0 dist (1,0) vs marginal (0.4,0.6): TVD 0.6; cluster 1 TVD 0.4
        // → Int = 0.5. Suf = (40+60)/100 = 1. Div: distinct dists on same attr,
        // pairwise TVD 1 → group of 2 scores 1 → Div = 1/2 = 0.5.
        let st = table();
        let ev = QualityEvaluator::new(&st, Weights::equal());
        assert!((ev.int_global(&[0, 0]) - 0.5).abs() < 1e-9);
        assert!((ev.suf_global(&[0, 0]) - 1.0).abs() < 1e-9);
        assert!((ev.div_global(&[0, 0]) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn distinct_attributes_maximize_diversity() {
        let st = table();
        let ev = QualityEvaluator::new(&st, Weights::equal());
        assert!((ev.div_global(&[0, 1]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn evaluator_matches_standalone_quality() {
        let st = table();
        let w = Weights::new(0.2, 0.5, 0.3);
        let ev = QualityEvaluator::new(&st, w);
        for asg in [[0usize, 0], [0, 1], [1, 0], [1, 1]] {
            assert!((ev.quality(&asg) - quality(&st, &asg, w)).abs() < 1e-12);
        }
    }

    #[test]
    fn memoization_is_transparent() {
        let st = table();
        let ev = QualityEvaluator::new(&st, Weights::equal());
        let first = ev.div_global(&[0, 0]);
        let second = ev.div_global(&[0, 0]);
        assert_eq!(first, second);
        assert_eq!(ev.div_memo.borrow().len(), 1);
    }

    #[test]
    fn mae_counts_disagreements() {
        assert_eq!(mae(&[1, 2, 3], &[1, 2, 3]), 0.0);
        assert!((mae(&[1, 2, 3], &[1, 9, 9]) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(mae(&[5], &[6]), 1.0);
    }

    #[test]
    #[should_panic(expected = "same clusters")]
    fn mae_length_mismatch_panics() {
        mae(&[1], &[1, 2]);
    }
}
