//! Property-based verification of the paper's central claims: the
//! sensitivity-1 bounds of every low-sensitivity quality function
//! (Propositions 4.2, 4.4, 4.6, 4.8, 4.9) over *randomly generated
//! neighboring datasets*, and the ranking-preservation identities connecting
//! them to the sensitive originals.

use dpclustx::counts::ScoreTable;
use dpclustx::eval::QualityEvaluator;
use dpclustx::quality::diversity::{div_p, pair_d};
use dpclustx::quality::interestingness::{int_p, sensitive_tvd};
use dpclustx::quality::score::{glscore, sscore, GlScoreCache, Weights};
use dpclustx::quality::sufficiency::{sensitive_suf_global, suf_p};
use dpx_data::contingency::ClusteredCounts;
use dpx_data::schema::{Attribute, Domain, Schema};
use dpx_data::Dataset;
use proptest::prelude::*;

/// A random world: schema (2–3 attributes, domains 2–5), tuples with cluster
/// labels, and the neighbor obtained by appending one more labelled tuple.
#[derive(Debug, Clone)]
struct World {
    n_clusters: usize,
    st: ScoreTable,
    st_neighbor: ScoreTable,
}

fn world() -> impl Strategy<Value = World> {
    (
        prop::collection::vec(2usize..=5, 2..=3), // domains
        2usize..=3,                               // clusters
    )
        .prop_flat_map(|(domains, n_clusters)| {
            let row = domains
                .iter()
                .map(|&d| 0u32..(d as u32))
                .collect::<Vec<_>>();
            let rows = prop::collection::vec((row.clone(), 0usize..n_clusters), 1..40);
            let extra = (row, 0usize..n_clusters);
            (Just(domains), Just(n_clusters), rows, extra)
        })
        .prop_map(|(domains, n_clusters, rows, extra)| {
            let schema = Schema::new(
                domains
                    .iter()
                    .enumerate()
                    .map(|(i, &d)| Attribute::new(format!("a{i}"), Domain::indexed(d)).unwrap())
                    .collect(),
            )
            .unwrap();
            let tuples: Vec<Vec<u32>> = rows.iter().map(|(t, _)| t.clone()).collect();
            let labels: Vec<usize> = rows.iter().map(|(_, c)| *c).collect();
            let data = Dataset::from_rows(schema.clone(), &tuples).unwrap();
            let st = ScoreTable::from_clustered_counts(&ClusteredCounts::build(
                &data, &labels, n_clusters,
            ));
            let mut tuples2 = tuples;
            let mut labels2 = labels;
            tuples2.push(extra.0);
            labels2.push(extra.1);
            let data2 = Dataset::from_rows(schema, &tuples2).unwrap();
            let st_neighbor = ScoreTable::from_clustered_counts(&ClusteredCounts::build(
                &data2, &labels2, n_clusters,
            ));
            World {
                n_clusters,
                st,
                st_neighbor,
            }
        })
}

proptest! {
    /// Proposition 4.2: |Int_p(D) − Int_p(D')| ≤ 1 for any neighbor.
    #[test]
    fn int_p_sensitivity_bounded_by_one(w in world()) {
        for a in 0..w.st.n_attributes() {
            for c in 0..w.n_clusters {
                let d = (int_p(w.st.attr(a), c) - int_p(w.st_neighbor.attr(a), c)).abs();
                prop_assert!(d <= 1.0 + 1e-9, "attr {a} cluster {c}: Δ = {d}");
            }
        }
    }

    /// Proposition 4.4(2): |Suf_p(D) − Suf_p(D')| ≤ 1.
    #[test]
    fn suf_p_sensitivity_bounded_by_one(w in world()) {
        for a in 0..w.st.n_attributes() {
            for c in 0..w.n_clusters {
                let d = (suf_p(w.st.attr(a), c) - suf_p(w.st_neighbor.attr(a), c)).abs();
                prop_assert!(d <= 1.0 + 1e-9, "attr {a} cluster {c}: Δ = {d}");
            }
        }
    }

    /// Proposition 4.8: SScore_γ has sensitivity ≤ 1 and range [0, |D_c|].
    #[test]
    fn sscore_sensitivity_and_range(w in world(), g in 0.0f64..1.0) {
        let gamma = (g, 1.0 - g);
        for a in 0..w.st.n_attributes() {
            for c in 0..w.n_clusters {
                let s = sscore(&w.st, c, a, gamma);
                prop_assert!(s >= -1e-9);
                prop_assert!(s <= w.st.attr(a).cluster_size(c) + 1e-9);
                let d = (s - sscore(&w.st_neighbor, c, a, gamma)).abs();
                prop_assert!(d <= 1.0 + 1e-9, "attr {a} cluster {c}: Δ = {d}");
            }
        }
    }

    /// Proposition 4.6: pairwise d and Div_p have sensitivity ≤ 1.
    #[test]
    fn diversity_sensitivity_bounded_by_one(w in world()) {
        let n_attrs = w.st.n_attributes();
        for a in 0..n_attrs {
            for a2 in 0..n_attrs {
                for c in 0..w.n_clusters {
                    for c2 in (c + 1)..w.n_clusters {
                        let d = (pair_d(&w.st, c, c2, a, a2)
                            - pair_d(&w.st_neighbor, c, c2, a, a2)).abs();
                        prop_assert!(d <= 1.0 + 1e-9, "pair ({c},{c2}) attrs ({a},{a2}): Δ = {d}");
                    }
                }
            }
        }
        // Global Div_p over a fixed assignment.
        let assignment: Vec<usize> = (0..w.n_clusters).map(|c| c % n_attrs).collect();
        let d = (div_p(&w.st, &assignment) - div_p(&w.st_neighbor, &assignment)).abs();
        prop_assert!(d <= 1.0 + 1e-9, "Div_p Δ = {d}");
    }

    /// Proposition 4.9: GlScore_λ has sensitivity ≤ 1 for every assignment
    /// and every weight vector.
    #[test]
    fn glscore_sensitivity_bounded_by_one(w in world(), wi in 0.0f64..1.0, ws in 0.0f64..1.0) {
        let total = wi + ws + 1.0; // implicit div weight 1.0 before normalizing
        let weights = Weights::new(wi / total, ws / total, 1.0 / total);
        let n_attrs = w.st.n_attributes();
        // A handful of assignments: constant and staggered.
        let assignments: Vec<Vec<usize>> = (0..n_attrs)
            .map(|a| vec![a; w.n_clusters])
            .chain(std::iter::once(
                (0..w.n_clusters).map(|c| c % n_attrs).collect(),
            ))
            .collect();
        for asg in &assignments {
            let d = (glscore(&w.st, asg, weights) - glscore(&w.st_neighbor, asg, weights)).abs();
            prop_assert!(d <= 1.0 + 1e-9, "assignment {asg:?}: Δ = {d}");
        }
    }

    /// The identity below Definition 4.2: Int_p = |D_c| · TVD, hence both
    /// rank attributes identically per cluster.
    #[test]
    fn int_p_is_cluster_size_times_tvd(w in world()) {
        for a in 0..w.st.n_attributes() {
            for c in 0..w.n_clusters {
                let attr = w.st.attr(a);
                let lhs = int_p(attr, c);
                let rhs = attr.cluster_size(c) * sensitive_tvd(attr, c);
                prop_assert!((lhs - rhs).abs() < 1e-6, "attr {a} cluster {c}: {lhs} vs {rhs}");
            }
        }
    }

    /// Proposition 4.4(1): |D| · Suf(D, f, AC) = Σ_c Suf_p(c, AC(c)), where
    /// Suf is computed from the *original tuple-level definition* (Eq. 3/4 of
    /// the paper) as an independent reference implementation.
    #[test]
    fn suf_identity_matches_tuple_level_reference(
        (domains, rows) in prop::collection::vec(2usize..=4, 1..=2).prop_flat_map(|domains| {
            let row = domains.iter().map(|&d| 0u32..(d as u32)).collect::<Vec<_>>();
            let rows = prop::collection::vec((row, 0usize..2), 1..25);
            (Just(domains), rows)
        })
    ) {
        let n_clusters = 2;
        let schema = Schema::new(
            domains.iter().enumerate()
                .map(|(i, &d)| Attribute::new(format!("a{i}"), Domain::indexed(d)).unwrap())
                .collect(),
        ).unwrap();
        let tuples: Vec<Vec<u32>> = rows.iter().map(|(t, _)| t.clone()).collect();
        let labels: Vec<usize> = rows.iter().map(|(_, c)| *c).collect();
        let data = Dataset::from_rows(schema, &tuples).unwrap();
        let st = ScoreTable::from_clustered_counts(
            &ClusteredCounts::build(&data, &labels, n_clusters));

        // Explain both clusters with attribute 0.
        let attr = 0usize;

        // Reference: the tuple-level Suf of Eq. (3)/(4). For each tuple t,
        // m_s(t) = Σ_{t' in cluster(t)} r(t') / Σ_{t' in D} r(t'), with
        // r(t') = cnt_{A=t'[A]}(D_{f(t)}) / cnt_{A=t'[A]}(D); global Suf is
        // the average of m_s over tuples.
        let cnt = |value: u32, cluster: Option<usize>| -> f64 {
            tuples.iter().zip(&labels)
                .filter(|(t, &l)| t[attr] == value && cluster.is_none_or(|c| l == c))
                .count() as f64
        };
        let mut total_ms = 0.0;
        for (t, &c) in tuples.iter().zip(&labels) {
            let _ = t;
            let num: f64 = tuples.iter().zip(&labels)
                .filter(|(_, &l2)| l2 == c)
                .map(|(t2, _)| cnt(t2[attr], Some(c)) / cnt(t2[attr], None))
                .sum();
            let den: f64 = tuples.iter()
                .map(|t2| cnt(t2[attr], Some(c)) / cnt(t2[attr], None))
                .sum();
            if den > 0.0 {
                total_ms += num / den;
            }
        }
        let suf_reference = total_ms / tuples.len() as f64;

        // Implementation under test: identity-based global sufficiency.
        let t0 = st.attr(attr);
        let suf_ident = sensitive_suf_global(&[t0, t0], n_clusters);
        prop_assert!(
            (suf_reference - suf_ident).abs() < 1e-9,
            "reference {suf_reference} vs identity {suf_ident}"
        );
    }

    /// GlScoreCache must agree with direct glscore on every combination.
    #[test]
    fn glscore_cache_matches_direct(w in world()) {
        let n_attrs = w.st.n_attributes();
        let weights = Weights::equal();
        let candidates: Vec<Vec<usize>> = vec![(0..n_attrs).collect(); w.n_clusters];
        let cache = GlScoreCache::build(&w.st, &candidates, weights);
        // Exhaustive over the (small) combination space.
        let mut choice = vec![0usize; w.n_clusters];
        loop {
            let assignment: Vec<usize> = choice.clone();
            let a = cache.glscore_cached(&choice);
            let b = glscore(&w.st, &assignment, weights);
            prop_assert!((a - b).abs() < 1e-9, "{choice:?}: cached {a} vs direct {b}");
            let mut pos = w.n_clusters;
            let mut done = true;
            while pos > 0 {
                pos -= 1;
                choice[pos] += 1;
                if choice[pos] < n_attrs {
                    done = false;
                    break;
                }
                choice[pos] = 0;
            }
            if done {
                break;
            }
        }
    }

    /// Appendix B: the extended multi-explanation GlScore keeps sensitivity
    /// ≤ 1 over random neighbors (tested at ℓ = 2).
    #[test]
    fn glscore_multi_sensitivity_bounded_by_one(w in world()) {
        use dpclustx::multi::glscore_multi;
        let n_attrs = w.st.n_attributes();
        prop_assume!(n_attrs >= 2);
        let weights = Weights::equal();
        // ℓ = 2 assignments: first two attributes everywhere, and a staggered one.
        let uniform: Vec<Vec<usize>> = vec![vec![0, 1]; w.n_clusters];
        let staggered: Vec<Vec<usize>> = (0..w.n_clusters)
            .map(|c| vec![c % n_attrs, (c + 1) % n_attrs])
            .collect();
        for asg in [&uniform, &staggered] {
            // Skip degenerate staggered sets where a cluster repeats an attribute.
            if asg.iter().any(|s| s[0] == s[1]) {
                continue;
            }
            let d = (glscore_multi(&w.st, asg, weights)
                - glscore_multi(&w.st_neighbor, asg, weights))
            .abs();
            prop_assert!(d <= 1.0 + 1e-9, "multi assignment {asg:?}: Δ = {d}");
        }
    }

    /// Budget-capped sessions never overspend, for arbitrary request
    /// sequences.
    #[test]
    fn session_never_exceeds_cap(
        requests in prop::collection::vec((0u8..3, 1u32..40), 1..12),
        cap_centi in 10u32..200,
    ) {
        use dpclustx::framework::DpClustXConfig;
        use dpclustx::session::Session;
        use dpx_dp::budget::Epsilon;

        let schema = Schema::new(vec![
            Attribute::new("x", Domain::indexed(2)).unwrap(),
            Attribute::new("y", Domain::indexed(3)).unwrap(),
            Attribute::new("z", Domain::indexed(2)).unwrap(),
        ])
        .unwrap();
        let rows: Vec<Vec<u32>> = (0..120)
            .map(|i| vec![(i % 2) as u32, (i % 3) as u32, ((i / 2) % 2) as u32])
            .collect();
        let data = Dataset::from_rows(schema, &rows).unwrap();
        let cap = cap_centi as f64 / 100.0;
        let mut session = Session::new(data, Epsilon::new(cap).unwrap(), 7);
        for (kind, eps_centi) in requests {
            let eps = Epsilon::new(eps_centi as f64 / 100.0).unwrap();
            // Ignore request outcomes; the invariant is the spend bound.
            let _ = match kind {
                0 => session.cluster_dp_kmeans(2, eps).err(),
                1 => session.noisy_histogram(0, eps).err().map(|_| dpx_dp::DpError::EmptyCandidateSet),
                _ => session
                    .explain(DpClustXConfig {
                        k: 2,
                        eps_cand_set: eps.get() / 3.0,
                        eps_top_comb: eps.get() / 3.0,
                        eps_hist: Some(eps.get() / 3.0),
                        weights: Weights::equal(),
                        consistency: false,
                    })
                    .err()
                    .map(|_| dpx_dp::DpError::EmptyCandidateSet),
            };
            prop_assert!(
                session.spent() <= cap * (1.0 + 1e-9),
                "spent {} over cap {cap}",
                session.spent()
            );
        }
    }

    /// The evaluation Quality is always within [0, 1].
    #[test]
    fn quality_is_in_unit_interval(w in world()) {
        let ev = QualityEvaluator::new(&w.st, Weights::equal());
        let n_attrs = w.st.n_attributes();
        for a in 0..n_attrs {
            let asg = vec![a; w.n_clusters];
            let q = ev.quality(&asg);
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&q), "quality {q}");
        }
    }
}
