//! The §6.3 case study at example scale: Census data, 3 clusters, k-means,
//! DPClustX vs TabEE side by side with textual descriptions.
//!
//! In the paper both explanations reveal the same story — a cluster of
//! currently-not-working adults, a cluster of under-16s with no work data,
//! and a cluster of working individuals — even when the selected attributes
//! differ (they are correlated).
//!
//! ```text
//! cargo run --release --example census_case_study
//! ```

use dpclustx::stage2::exact_histograms;
use dpclustx_suite::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(90);
    let n_clusters = 3;

    let synth = synth::census::spec(n_clusters).generate(40_000, &mut rng);
    let data = synth.data;
    let model = ClusteringMethod::KMeans.fit(&data, n_clusters, &mut rng);
    let labels = model.assign_all(&data);

    let outcome = DpClustX::new(DpClustXConfig::default())
        .explain(&data, &labels, n_clusters, &mut rng)
        .expect("valid configuration");

    let counts = ClusteredCounts::build(&data, &labels, n_clusters);
    let st = ScoreTable::from_clustered_counts(&counts);
    let evaluator = QualityEvaluator::new(&st, Weights::equal());
    let reference = tabee::select(&st, 3, Weights::equal());
    let tabee_expl = exact_histograms(data.schema(), &counts, &reference);

    println!(
        "=== DPClustX (ε = {}) ===",
        DpClustXConfig::default().total_epsilon()
    );
    println!("attributes: {:?}\n", outcome.explanation.attribute_names());
    for e in &outcome.explanation.per_cluster {
        println!("{}", e.render());
        println!("  {}\n", text::describe(e));
    }

    println!("=== Non-private TabEE ===");
    println!("attributes: {:?}\n", tabee_expl.attribute_names());
    for e in &tabee_expl.per_cluster {
        println!("  {}", text::describe(e));
    }

    let q_dp = evaluator.quality(&outcome.assignment);
    let q_ref = evaluator.quality(&reference);
    println!(
        "\nMAE = {:.2}; Quality gap = {:+.2}% (DPClustX {q_dp:.4} vs TabEE {q_ref:.4})",
        mae(&outcome.assignment, &reference),
        if q_ref.abs() > 1e-12 {
            (q_dp - q_ref) / q_ref * 100.0
        } else {
            0.0
        }
    );
}
