//! An interactive analyst session under one hard privacy cap — the
//! demonstration scenario: cluster privately, explain, poke at histograms,
//! and watch the budget run out.
//!
//! ```text
//! cargo run --release --example analyst_session
//! ```

use dpclustx::session::Session;
use dpclustx_suite::prelude::*;
use dpx_dp::sparse_vector::SvtOutcome;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(5);
    let synth = synth::diabetes::spec(3).generate(25_000, &mut rng);
    let data = synth.data;
    let schema = data.schema().clone();

    // The organization grants this analyst a total budget of ε = 1.6.
    let mut session = Session::new(data, Epsilon::new(1.6).unwrap(), 42);
    println!(
        "session opened over {} tuples, cap ε = 1.6\n",
        session.n_rows()
    );

    // 1. Private clustering (ε = 1.0, the paper's setting).
    session
        .cluster_dp_kmeans(3, Epsilon::new(1.0).unwrap())
        .expect("within budget");
    println!(
        "① DP-k-means done               spent ε = {:.3}",
        session.spent()
    );

    // 2. Private explanation (ε = 0.3).
    let explanation = session
        .explain(DpClustXConfig::default())
        .expect("within budget");
    println!(
        "② DPClustX explanation done     spent ε = {:.3}  → attributes {:?}",
        session.spent(),
        explanation.attribute_names()
    );
    for e in &explanation.per_cluster {
        println!("   {}", text::describe(e));
    }

    // 3. A threshold probe via the sparse vector technique (ε = 0.2):
    //    "is any medication column dominated by 'Steady' (> 6000 records)?"
    let steady_probes: Vec<(usize, u32)> = schema
        .attributes()
        .iter()
        .enumerate()
        .filter(|(_, a)| a.domain.code_of("Steady").is_some())
        .map(|(i, a)| (i, a.domain.code_of("Steady").expect("checked")))
        .collect();
    let outcome = session
        .first_attribute_above(&steady_probes, 6_000.0, Epsilon::new(0.2).unwrap())
        .expect("within budget");
    match outcome {
        SvtOutcome::Above(i) => println!(
            "③ SVT probe                     spent ε = {:.3}  → first 'Steady'-heavy column: {}",
            session.spent(),
            schema.attribute(steady_probes[i].0).name
        ),
        SvtOutcome::AllBelow => println!(
            "③ SVT probe                     spent ε = {:.3}  → none above threshold",
            session.spent()
        ),
    }

    // 4. One more ad-hoc histogram (ε = 0.1)…
    let age = schema.index_of("age").expect("age exists");
    let hist = session
        .noisy_histogram(age, Epsilon::new(0.1).unwrap())
        .expect("within budget");
    println!(
        "④ Noisy age histogram           spent ε = {:.3}  → {:?}",
        session.spent(),
        hist.iter().map(|&v| v as i64).collect::<Vec<_>>()
    );

    // 5. …and the next request busts the cap: the session refuses.
    let denied = session.explain(DpClustXConfig::default());
    println!(
        "⑤ Second explanation request    → {}",
        match denied {
            Err(e) => format!("DENIED: {e}"),
            Ok(_) => "unexpectedly allowed!".into(),
        }
    );

    println!("\nfull audit trail:\n{}", session.audit());
}
