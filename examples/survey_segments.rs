//! Developer-survey segmentation with **multiple explanations per cluster**
//! (the Appendix B extension) and custom quality weights.
//!
//! A product team segments Stack Overflow respondents with a Gaussian
//! mixture, then asks for *two* histograms per segment, weighting
//! interestingness over diversity.
//!
//! ```text
//! cargo run --release --example survey_segments
//! ```

use dpclustx::multi::{generate_multi_histograms, select_multi_combination};
use dpclustx::stage1::select_candidates;
use dpclustx_suite::prelude::*;
use dpx_dp::histogram::GeometricHistogram;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let n_clusters = 3;
    let ell = 2; // explanations per cluster
    let weights = Weights::new(0.5, 0.3, 0.2); // favour interestingness

    let synth = synth::stackoverflow::spec(n_clusters).generate(20_000, &mut rng);
    let data = synth.data;
    let model = ClusteringMethod::Gmm.fit(&data, n_clusters, &mut rng);
    let labels = model.assign_all(&data);

    let counts = ClusteredCounts::build(&data, &labels, n_clusters);
    let st = ScoreTable::from_clustered_counts(&counts);

    // Stage 1 unchanged (Appendix B): top-k candidates per cluster, k ≥ ℓ.
    let eps_cand = Epsilon::new(0.1).expect("positive");
    let candidates = select_candidates(&st, weights.gamma(), eps_cand, 4, &mut rng)
        .expect("valid configuration");

    // Stage 2: exponential mechanism over binom(k, ℓ)^|C| subset combinations.
    let eps_comb = Epsilon::new(0.1).expect("positive");
    let assignment = select_multi_combination(&st, &candidates, ell, weights, eps_comb, &mut rng)
        .expect("enough candidates per cluster");

    // Histogram release: ℓ slots sharing ε_Hist.
    let mut accountant = Accountant::new();
    let eps_hist = Epsilon::new(0.2).expect("positive");
    let slots = generate_multi_histograms(
        data.schema(),
        &counts,
        &assignment,
        eps_hist,
        &GeometricHistogram,
        &mut accountant,
        &mut rng,
    )
    .expect("valid configuration");

    println!(
        "total ε = {} (0.1 + 0.1 + 0.2)\n",
        0.1 + 0.1 + accountant.spent()
    );
    for c in 0..n_clusters {
        println!("──── Segment {c} ({} explanations) ────", ell);
        for slot in &slots {
            let e = &slot.per_cluster[c];
            println!("{}", e.render());
            println!("  {}\n", text::describe(e));
        }
    }
}
