//! Quickstart: generate a small medical-records-style dataset, cluster it,
//! and produce a differentially private explanation of the clusters.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dpclustx_suite::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // 1. A sensitive dataset. Here: a synthetic stand-in for the Diabetes
    //    dataset (47 attributes, 3 latent patient groups).
    let synth = synth::diabetes::spec(3).generate(10_000, &mut rng);
    let data = synth.data;
    println!(
        "dataset: {} tuples × {} attributes",
        data.n_rows(),
        data.schema().arity()
    );

    // 2. A black-box clustering. Any total function dom(R) → C works; here,
    //    k-means over the paper's integer encoding of categorical values.
    let model = ClusteringMethod::KMeans.fit(&data, 3, &mut rng);
    let labels = model.assign_all(&data);

    // 3. Explain the clusters under differential privacy. The default
    //    configuration is the paper's: ε_CandSet = ε_TopComb = ε_Hist = 0.1
    //    (total ε = 0.3), k = 3 candidates per cluster, equal weights.
    let explainer = DpClustX::new(DpClustXConfig::default());
    let outcome = explainer
        .explain(&data, &labels, 3, &mut rng)
        .expect("valid configuration");

    println!(
        "\nselected attributes: {:?}",
        outcome.explanation.attribute_names()
    );
    println!("\nprivacy spend:\n{}", outcome.accountant.audit());

    // 4. Inspect the histogram-based explanation for each cluster, plus the
    //    generated textual description (the demo's Figure 3b).
    for e in &outcome.explanation.per_cluster {
        println!("{}", e.render());
        println!("  {}\n", text::describe(e));
    }

    // 5. How close is this to the non-private explanation? (Requires access
    //    to the raw data — this part is offline evaluation, not a release.)
    let counts = ClusteredCounts::build(&data, &labels, 3);
    let st = ScoreTable::from_clustered_counts(&counts);
    let reference = tabee::select(&st, 3, Weights::equal());
    println!(
        "non-private TabEE would select clusters' attributes {:?} (MAE {:.2})",
        reference
            .iter()
            .map(|&a| data.schema().attribute(a).name.as_str())
            .collect::<Vec<_>>(),
        mae(&outcome.assignment, &reference)
    );
}
