//! Healthcare scenario: the paper's running example (§1) end-to-end under a
//! **single composed privacy budget**.
//!
//! A hospital analyst clusters diabetic-patient records with DP-k-means
//! (ε_clust = 1) and explains the clusters with DPClustX (ε_exp = 0.3). By
//! sequential composition the whole session satisfies (ε_clust + ε_exp)-DP —
//! this example prints the full audit trail and compares the private
//! explanation against what a non-private analyst would have gotten.
//!
//! ```text
//! cargo run --release --example healthcare_audit
//! ```

use dpclustx_suite::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);
    let n_clusters = 3;

    // The sensitive dataset: synthetic Diabetes 130-US stand-in.
    let synth = synth::diabetes::spec(n_clusters).generate(30_000, &mut rng);
    let data = synth.data;

    // --- Step 1: DP clustering (ε_clust = 1, the paper's setting). ---
    let eps_clust = 1.0;
    let model = ClusteringMethod::DpKMeans { epsilon: eps_clust }.fit(&data, n_clusters, &mut rng);
    let labels = model.assign_all(&data);
    let sizes: Vec<usize> = (0..n_clusters)
        .map(|c| labels.iter().filter(|&&l| l == c).count())
        .collect();
    println!("DP-k-means (ε = {eps_clust}) cluster sizes: {sizes:?}");

    // --- Step 2: DP explanation (ε_exp = 0.3). ---
    let config = DpClustXConfig {
        k: 3,
        eps_cand_set: 0.1,
        eps_top_comb: 0.1,
        eps_hist: Some(0.1),
        weights: Weights::equal(),
        consistency: false,
    };
    let outcome = DpClustX::new(config)
        .explain(&data, &labels, n_clusters, &mut rng)
        .expect("valid configuration");

    println!("\nDPClustX audit (ε_exp):\n{}", outcome.accountant.audit());
    println!(
        "overall session privacy: ε_clust + ε_exp = {} (sequential composition)\n",
        eps_clust + config.total_epsilon()
    );

    for e in &outcome.explanation.per_cluster {
        println!("{}", e.render());
        println!("  {}\n", text::describe(e));
    }

    // --- Offline comparison against the non-private explanation. ---
    let counts = ClusteredCounts::build(&data, &labels, n_clusters);
    let st = ScoreTable::from_clustered_counts(&counts);
    let evaluator = QualityEvaluator::new(&st, Weights::equal());
    let reference = tabee::select(&st, 3, Weights::equal());
    let q_dp = evaluator.quality(&outcome.assignment);
    let q_ref = evaluator.quality(&reference);
    println!("Quality — DPClustX: {q_dp:.4}, non-private TabEE: {q_ref:.4}");
    println!("MAE vs TabEE: {:.2}", mae(&outcome.assignment, &reference));
}
