//! Two-dimensional explanations (the paper's future-work §8): explain
//! clusters with attribute *pairs* over Cartesian-product domains.
//!
//! The scenario plants a joint pattern no single attribute reveals: a cluster
//! defined by the *combination* of age bracket and number of medications.
//! 1-D DPClustX picks the best marginal attribute; the 2-D extension finds
//! the joint one.
//!
//! ```text
//! cargo run --release --example joint_patterns
//! ```

use dpclustx::twod::{all_pairs, explain_pairs};
use dpclustx_suite::prelude::*;
use dpx_dp::histogram::GeometricHistogram;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(33);

    // A dataset where cluster membership is the XOR-like interaction of two
    // attributes: young patients on many medications + old patients on few
    // form cluster 1; everyone else cluster 0. Marginally, both attributes
    // look identical across clusters.
    let schema = dpx_data::Schema::new(vec![
        dpx_data::Attribute::new(
            "age_bracket",
            dpx_data::schema::Domain::categorical(["young", "old"]),
        )
        .unwrap(),
        dpx_data::Attribute::new(
            "meds",
            dpx_data::schema::Domain::categorical(["few", "many"]),
        )
        .unwrap(),
        dpx_data::Attribute::new("ward", dpx_data::schema::Domain::indexed(4)).unwrap(),
    ])
    .unwrap();
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for _ in 0..20_000 {
        let age = rng.gen_range(0..2u32);
        let meds = rng.gen_range(0..2u32);
        rows.push(vec![age, meds, rng.gen_range(0..4u32)]);
        labels.push(usize::from(age != meds));
    }
    let data = Dataset::from_rows(schema, &rows).expect("valid rows");

    // 1-D explanation: no single attribute separates the clusters.
    let outcome_1d = DpClustX::new(DpClustXConfig::default())
        .explain(&data, &labels, 2, &mut rng)
        .expect("valid configuration");
    println!(
        "1-D selection: {:?}",
        outcome_1d.explanation.attribute_names()
    );
    for e in &outcome_1d.explanation.per_cluster {
        println!("  {}", text::describe(e));
    }

    // 2-D explanation over all attribute pairs.
    let out = explain_pairs(
        &data,
        &labels,
        2,
        &all_pairs(data.schema().arity()),
        DpClustXConfig::default(),
        &GeometricHistogram,
        &mut rng,
    )
    .expect("valid configuration");
    println!(
        "\n2-D selection: {:?} (total ε = {})",
        out.explanation().attribute_names(),
        out.outcome.accountant.spent()
    );
    for c in 0..2 {
        println!("\n{}", out.render_grid(c));
    }
    println!("The joint `age_bracket×meds` grid shows the interaction: cluster 1");
    println!("occupies the off-diagonal cells that no 1-D histogram can expose.");
}
